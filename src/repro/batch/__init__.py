"""Batched fleet execution: many grid cells per vectorized sweep.

The batched backend runs an entire experiment grid or seed-stability
sweep as a *fleet* — one lane per (benchmark, selector, scale, seed)
cell — advancing every trace-walking lane in lockstep over
structure-of-arrays state, numpy-backed when the ``repro[fast]`` extra
is installed and pure Python otherwise.  The serial fused pipeline
remains the bit-identity oracle: per-cell reports and store digests
are identical by construction and by test.  See ``docs/batching.md``.
"""

from repro.batch.backend import (
    HAVE_NUMPY,
    available_backends,
    get_backend,
)
from repro.batch.fleet import (
    BatchCell,
    FleetResult,
    build_fleet_program,
    run_fleet,
)

__all__ = [
    "HAVE_NUMPY",
    "available_backends",
    "get_backend",
    "BatchCell",
    "FleetResult",
    "build_fleet_program",
    "run_fleet",
]
