"""Array backends for the batched fleet kernel.

The kernel (:mod:`repro.batch.kernel`) keeps all cross-lane state in
structure-of-arrays columns: per-lane step counters, walk-table program
counters, branch-model site state and one SplitMix64 state word per
lane.  This module answers exactly two questions for it:

* which array substrate to use — ``numpy`` when importable (the
  ``repro[fast]`` extra), a plain Python ``list`` otherwise, so the
  stdlib-only install keeps every batched entry point working; and
* how to draw random numbers from SoA-resident RNG state **without
  perturbing the stream** the scalar pipeline would produce.

Bit-identity of the RNG is the load-bearing property.  The scalar
engine's :class:`~repro.behavior.rng.SplitMix64` maps its 64-bit
output onto ``[0, 1)`` by multiplying the Python int by ``2**-64``;
CPython converts the int to a double with round-to-nearest-even first.
``numpy``'s ``uint64 -> float64`` cast rounds the same way, and the
multiplier is an exact power of two, so the vectorized draw in
:func:`vector_random` and the scalar draw in :class:`LaneRng.random`
produce the *same float* for the same state word.  The identity suite
in ``tests/test_batch.py`` pins this against the scalar class.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.behavior.rng import SplitMix64, _INV_2_64, _MASK64
from repro.errors import ConfigError

try:  # pragma: no cover - exercised via both backend parametrizations
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is present in CI
    _numpy = None

#: ``numpy`` module when importable, else ``None`` (pure-Python mode).
HAVE_NUMPY = _numpy is not None

#: SplitMix64 constants, shared with :class:`~repro.behavior.rng.SplitMix64`.
GAMMA = 0x9E3779B97F4A7C15
MIX1 = 0xBF58476D1CE4E5B9
MIX2 = 0x94D049BB133111EB

# Lane modes (the lifecycle of docs/batching.md).
M_SCALAR = 0  #: interpreting, or walking a CFG region (stepped per lane)
M_VEC = 1  #: walking a trace table (advanced by the vector rounds)
M_DONE = 2  #: retired - halted, returned from main, or out of steps

# Walk-table decision kinds (arena ``a_kind`` column).
K_SCALAR = 0  #: evaluate the lane's own decision closure (side effects)
K_CONST = 1  #: constant (taken, target) tuple - outcome precomputed
K_BERN = 2  #: Bernoulli draw against a per-position probability
K_LOOP = 3  #: jitter-free loop-trip countdown in a site slot
K_PERIODIC = 4  #: periodic pattern indexed by a site-slot cursor
K_CALL = 5  #: call - push a constant return site on the SoA stack
K_RET = 6  #: return - pop the SoA stack, compare popped target ids
K_LOOPJ = 7  #: jittered loop-trip - vectorized randint on activation

# Decision outcomes (arena ``a_tcode`` / ``a_fcode`` columns).
O_ADV = 0  #: advance to the next path position
O_CYC = 1  #: taken branch back to the trace top
O_EXIT = 2  #: the transfer leaves the region (handled per lane)


def numpy_module():
    """The imported numpy module, or ``None``."""
    return _numpy


#: Environment override for backend resolution.  ``auto`` requests
#: resolve to its value, and :func:`available_backends` narrows to it —
#: which is how CI runs the whole fleet bit-identity suite once per
#: substrate (``REPRO_BATCH_BACKEND=python`` gates the pure-Python
#: fallback, not just imports it).  Explicit ``get_backend("numpy")`` /
#: ``("python")`` calls ignore the variable.
ENV_BACKEND = "REPRO_BATCH_BACKEND"


def _env_backend() -> Optional[str]:
    value = os.environ.get(ENV_BACKEND, "").strip().lower()
    if value in ("", "auto"):
        return None
    if value in ("numpy", "python"):
        return value
    raise ConfigError(
        f"{ENV_BACKEND}={value!r} is not a batch backend: expected "
        f"'auto', 'numpy' or 'python'"
    )


def available_backends() -> tuple:
    """Backends usable in this interpreter, preferred first.

    Honors ``REPRO_BATCH_BACKEND``: a forced substrate narrows the
    tuple to it, so backend-parametrized suites run exactly the forced
    substrate (forcing ``numpy`` without numpy installed raises at
    :func:`get_backend` time and is not narrowed here).
    """
    forced = _env_backend()
    if forced == "python":
        return ("python",)
    if forced == "numpy" and HAVE_NUMPY:
        return ("numpy",)
    return ("numpy", "python") if HAVE_NUMPY else ("python",)


def get_backend(name: str = "auto") -> str:
    """Resolve a backend request to ``"numpy"`` or ``"python"``.

    ``"auto"`` prefers numpy and silently falls back — unless
    ``REPRO_BATCH_BACKEND`` forces a substrate, which ``auto`` then
    resolves to.  Asking for ``"numpy"`` (explicitly or through the
    environment) without the ``repro[fast]`` extra installed is a
    :class:`~repro.errors.ConfigError`.
    """
    if name == "auto":
        forced = _env_backend()
        if forced is not None:
            name = forced
        else:
            return "numpy" if HAVE_NUMPY else "python"
    if name == "numpy":
        if not HAVE_NUMPY:
            raise ConfigError(
                "batch backend 'numpy' requested but numpy is not "
                "installed (pip install 'repro[fast]'), use "
                "backend='auto' or 'python'"
            )
        return "numpy"
    if name == "python":
        return "python"
    raise ConfigError(
        f"unknown batch backend {name!r}: expected 'auto', 'numpy' or "
        f"'python'"
    )


class LaneRng:
    """SplitMix64 over one slot of the fleet's shared state column.

    Duck-types :class:`~repro.behavior.rng.SplitMix64` (the decision
    closures and branch models only ever call these methods), but keeps
    its state word in ``states[index]`` — the same storage the
    vectorized draws of :func:`vector_random` update — so a lane's
    stream never forks between the scalar path (interpreting, CFG
    walks, scalar-kind trace decisions) and the vector path (batched
    Bernoulli decisions).  Every method replicates the scalar class's
    consumption pattern exactly.
    """

    __slots__ = ("states", "index", "_read")

    def __init__(self, states, index: int) -> None:
        self.states = states
        self.index = index
        # numpy's ``item()`` yields a Python int in one C call —
        # measurably cheaper than scalar ``__getitem__`` + int(); a
        # list's plain ``__getitem__`` already returns an int.
        self._read = getattr(states, "item", states.__getitem__)

    def next_u64(self) -> int:
        state = (self._read(self.index) + GAMMA) & _MASK64
        self.states[self.index] = state
        z = ((state ^ (state >> 30)) * MIX1) & _MASK64
        z = ((z ^ (z >> 27)) * MIX2) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        state = (self._read(self.index) + GAMMA) & _MASK64
        self.states[self.index] = state
        z = ((state ^ (state >> 30)) * MIX1) & _MASK64
        z = ((z ^ (z >> 27)) * MIX2) & _MASK64
        return (z ^ (z >> 31)) * _INV_2_64

    def randint(self, low: int, high: int) -> int:
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def bernoulli(self, probability: float) -> bool:
        return self.random() < probability

    def weighted_index(self, cumulative_weights: Sequence[float]) -> int:
        total = cumulative_weights[-1]
        point = self.random() * total
        for index, bound in enumerate(cumulative_weights):
            if point < bound:
                return index
        return len(cumulative_weights) - 1

    def fork(self) -> SplitMix64:
        return SplitMix64(self.next_u64())


def vector_random(states, lane_indices):
    """One uniform draw per selected lane, vectorized (numpy backend).

    Advances ``states[lane_indices]`` in place and returns a float64
    array in ``[0, 1)`` — the exact floats :meth:`LaneRng.random` would
    have produced lane by lane (see the module docstring for why the
    rounding matches).
    """
    np = _numpy
    gamma = np.uint64(GAMMA)
    mix1 = np.uint64(MIX1)
    mix2 = np.uint64(MIX2)
    state = states[lane_indices] + gamma
    states[lane_indices] = state
    z = (state ^ (state >> np.uint64(30))) * mix1
    z = (z ^ (z >> np.uint64(27))) * mix2
    z = z ^ (z >> np.uint64(31))
    return z.astype(np.float64) * _INV_2_64


def vector_next_u64(states, lane_indices):
    """One raw 64-bit draw per selected lane, vectorized.

    The integer counterpart of :func:`vector_random` — the exact words
    :meth:`LaneRng.next_u64` would have produced lane by lane (used for
    the jittered loop-trip ``randint``, which is ``low + word % span``).
    """
    np = _numpy
    state = states[lane_indices] + np.uint64(GAMMA)
    states[lane_indices] = state
    z = (state ^ (state >> np.uint64(30))) * np.uint64(MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(MIX2)
    return z ^ (z >> np.uint64(31))
