"""The fleet kernel: lockstep SoA execution of many simulation lanes.

One :class:`FleetKernel` advances every lane of a fleet (one lane per
grid cell) to completion.  The hot per-lane scalars live in
structure-of-arrays columns indexed by lane slot:

========== ======== =====================================================
column     dtype    meaning
========== ======== =====================================================
l_steps    int64    the lane's step counter (the fused loop's ``steps``)
l_max      int64    the lane's step budget (``max_steps``)
l_walk     int64    instructions walked in the current region stint
l_gpos     int64    global walk-table program counter (arena position)
l_mode     int8     M_SCALAR / M_VEC / M_DONE (see lane lifecycle)
l_cinst    int64    cache instructions banked by vectorized transitions
l_trans    int64    region transitions banked by vectorized transitions
rng_states uint64   the lane's SplitMix64 state word
========== ======== =====================================================

Every lane's installed trace tables are concatenated into a global
*arena*: one row per walk-table position, holding the position's
instruction count, static-run metadata, decision kind and parameters,
and walked-edge counters.  A lane walking a trace is just an index
``l_gpos`` into the arena; a vector round (:meth:`_vector_round`)
advances **all** trace-walking lanes at once — static-run hops, then
one decision each, grouped by decision kind and evaluated with numpy
array ops.  *Linked* region exits — the overwhelming majority on
trace-friendly workloads (10-100x the true cache exits) — also stay
vectorized: the arena mirrors every table's trace-to-trace link slots
as arena-base columns (``a_ltk``/``a_lfl``, kept in sync through
:attr:`~repro.cache.dispatch.DispatchTable.on_link_patch`), so a
linked transition is a fancy-indexed ``l_gpos`` assignment plus
pending-counter updates, folded into the ``Region`` objects before
anything can observe them.  Only genuinely divergent work drops to
per-lane Python — scalar decisions (call/return stack effects,
dynamic targets, unknown branch models) and unlinked exits (selector
callbacks may install/evict regions) — then rejoins the next round.

The pure-Python backend keeps the same lane lifecycle and per-lane
scalar code but replaces the vector rounds with a per-lane trace walk
(:meth:`repro.batch.lane.Lane.run_trace_scalar`); the arena is not
built at all.  Either way, every decision replicates the fused
reference loop bit for bit — ``tests/test_batch.py`` holds a fleet
lane equal to a serial ``simulate`` run for the same cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.batch.backend import (
    K_BERN,
    K_CALL,
    K_CONST,
    K_LOOP,
    K_LOOPJ,
    K_PERIODIC,
    K_RET,
    K_SCALAR,
    M_SCALAR,
    M_VEC,
    O_ADV,
    O_CYC,
    O_EXIT,
    numpy_module,
    vector_next_u64,
    vector_random,
)
from repro.batch.lane import Lane
from repro.behavior.rng import _MASK64
from repro.errors import ReproError

#: Outcome sentinel for scalar-kind decisions (handled per lane, never
#: matched by the vectorized O_ADV/O_CYC/O_EXIT apply passes).
_O_DEFER = 3

#: Outcome sentinel for a RETURN that leaves the region: the popped
#: target is dynamic, so the exit goes per-lane with the popped id.
_O_RETX = 4

#: Default interp/CFG steps granted per lane per kernel round.  Large
#: enough to amortize the per-round bookkeeping across the fleet,
#: small enough that interpreting lanes rejoin the vector rounds
#: promptly after a region install.
DEFAULT_QUOTA = 512

#: Below this many trace-walking lanes, a vector round's fixed numpy
#: overhead exceeds per-lane Python stepping — the run loop falls back
#: to :meth:`Lane.run_trace_scalar` so a fleet's last stragglers do
#: not pay array-dispatch cost per simulated step.
SCALAR_CUTOVER = 3

#: Vector iterations per round.  Active lanes advance up to this many
#: hop-and-decide cycles before the round's Python complement runs;
#: lanes whose next action needs Python (budget exhaustion, scalar-kind
#: decisions, unlinked exits) drop out of the active set and wait.
#: Iterating inside the round amortizes the fixed cost of a numpy
#: sweep — a few dozen small array kernels — over several decisions
#: per lane instead of exactly one.
VEC_ITERS = 8


class FleetKernel:
    """Advance a fleet of lanes to completion over shared SoA state."""

    def __init__(
        self,
        cells,
        programs: Dict[Tuple[str, float], object],
        config,
        backend: str,
        max_steps: Optional[int] = None,
        quota: int = DEFAULT_QUOTA,
    ) -> None:
        self.backend = backend
        self.vectorized = backend == "numpy"
        self.quota = quota
        self.rounds = 0
        #: Lane whose Python-side code is (or was last) executing; the
        #: vector sweeps themselves cannot raise ``ReproError``, so an
        #: escaping error is always attributable to this lane.
        self._err_lane: Optional[Lane] = None
        n = len(cells)

        np = numpy_module() if self.vectorized else None
        self._np = np
        if self.vectorized:
            self.l_steps = np.zeros(n, dtype=np.int64)
            self.l_max = np.zeros(n, dtype=np.int64)
            self.l_walk = np.zeros(n, dtype=np.int64)
            self.l_gpos = np.zeros(n, dtype=np.int64)
            self.l_mode = np.full(n, M_SCALAR, dtype=np.int8)
            self.l_cinst = np.zeros(n, dtype=np.int64)
            self.l_trans = np.zeros(n, dtype=np.int64)
            self.l_depth = np.zeros(n, dtype=np.int64)
            self.l_dlim = np.zeros(n, dtype=np.int64)
            #: SoA call stack — ``stk[lane, depth]`` holds a pushed
            #: return site's block id; allocated on the first
            #: call/return decider (:meth:`ensure_stack`).
            self.stk = None
            self.rng_states = np.zeros(n, dtype=np.uint64)
            # Branch-model site slots (loop countdowns, periodic
            # cursors) and the flattened periodic patterns, shared
            # between the vector rounds and the lanes' closures.
            self.site = np.zeros(64, dtype=np.int64)
            self.pat_arena = np.zeros(64, dtype=bool)
            self._init_arena(np)
        else:
            self.l_steps = [0] * n
            self.l_max = [0] * n
            self.l_walk = [0] * n
            self.l_gpos = [0] * n
            self.l_mode = [M_SCALAR] * n
            self.rng_states = [0] * n
            self.site: List[int] = []
            self.pat_arena = None
        self._site_len = 0

        for i, cell in enumerate(cells):
            self.rng_states[i] = cell.seed & _MASK64

        self.lanes: List[Lane] = []
        for i, cell in enumerate(cells):
            program = programs[(cell.benchmark, cell.scale)]
            lane = Lane(self, i, cell, program, config, max_steps)
            self.l_max[i] = lane.max_steps
            if self.vectorized:
                self.l_dlim[i] = lane.engine.max_call_depth
            self.lanes.append(lane)
        self.remaining = n

    # -- arena management (numpy backend) ---------------------------------
    _ARENA_I64 = ("a_cnt", "a_run_len", "a_run_insts", "a_base", "a_tbl",
                  "a_pi", "a_slot", "a_pat", "a_adv", "a_cyc", "a_run",
                  "a_ltk", "a_lfl", "a_xtk", "a_xfl")
    _ARENA_I8 = ("a_kind", "a_tcode", "a_fcode")
    #: Per-table pending counters (indexed by ``arena_tidx``): vector
    #: rounds bank region-counter updates here instead of touching
    #: ``Region`` objects per transition; :meth:`fold_table_pending`
    #: folds them before anything else can observe the region.
    _TBL_I64 = ("a_tblcyc", "t_ec", "t_xc", "t_insts")

    def _init_arena(self, np, cap: int = 256) -> None:
        for name in self._ARENA_I64:
            setattr(self, name, np.zeros(cap, dtype=np.int64))
        for name in self._ARENA_I8:
            setattr(self, name, np.zeros(cap, dtype=np.int8))
        self.a_pf = np.zeros(cap, dtype=np.float64)
        for name in self._TBL_I64:
            setattr(self, name, np.zeros(64, dtype=np.int64))
        self._arena_len = 0
        self._arena_cap = cap
        self._table_count = 0
        #: Trace tables by ``arena_tidx`` — lets the Python complement
        #: derive a lane's current table from ``a_tbl[l_gpos]`` after
        #: vectorized linked transitions moved it.
        self.tables: List[object] = []
        #: ``id(link list) -> (is_taken_column, arena base)`` — resolves
        #: an ``on_link_patch`` callback's site to its mirror cell in
        #: ``a_ltk``/``a_lfl``.  The lists are kept alive by their
        #: table (itself kept by ``dispatch.trace_tables``), so ids
        #: cannot be recycled.
        self._link_cols: Dict[int, Tuple[bool, int]] = {}

    @staticmethod
    def _grown(np, array, cap: int):
        fresh = np.zeros(cap, dtype=array.dtype)
        fresh[: array.shape[0]] = array
        return fresh

    def _arena_reserve(self, n: int) -> int:
        np = self._np
        need = self._arena_len + n
        if need > self._arena_cap:
            cap = self._arena_cap
            while cap < need:
                cap *= 2
            for name in self._ARENA_I64 + self._ARENA_I8 + ("a_pf",):
                setattr(self, name, self._grown(np, getattr(self, name), cap))
            self._arena_cap = cap
        base = self._arena_len
        self._arena_len = need
        return base

    def ensure_stack(self, max_depth: int) -> None:
        """Allocate (or deepen) the SoA call stack for every lane."""
        np = self._np
        n = self.l_steps.shape[0]
        if self.stk is None:
            self.stk = np.zeros((n, max_depth), dtype=np.int32)
        elif self.stk.shape[1] < max_depth:
            fresh = np.zeros((n, max_depth), dtype=np.int32)
            fresh[:, : self.stk.shape[1]] = self.stk
            self.stk = fresh

    def alloc_site(self) -> int:
        """Reserve one zero-initialized branch-model state slot."""
        slot = self._site_len
        self._site_len += 1
        if self.vectorized:
            if slot >= self.site.shape[0]:
                self.site = self._grown(self._np, self.site,
                                        self.site.shape[0] * 2)
        else:
            self.site.append(0)
        return slot

    def alloc_pattern(self, pattern: Tuple[bool, ...]) -> int:
        """Intern a periodic pattern into the flat pattern arena."""
        if not self.vectorized:
            return -1
        np = self._np
        n = len(pattern)
        base = getattr(self, "_pat_len", 0)
        need = base + n
        cap = self.pat_arena.shape[0]
        if need > cap:
            while cap < need:
                cap *= 2
            self.pat_arena = self._grown(np, self.pat_arena, cap)
        self.pat_arena[base:need] = pattern
        self._pat_len = need
        return base

    def register_table(self, lane: Lane, table) -> None:
        """Append a freshly compiled trace table to the global arena.

        Called from :class:`~repro.batch.lane.LaneDispatch` on every
        trace compile (install or ``table_for``).  Per position the
        decision kind is classified from the lane's descriptors
        (:meth:`Lane._make_decider`), and the two outcome codes are
        precomputed from the table topology with the reference walker's
        exact check order — advance to the next path position first,
        then taken-cycle-back to the top, else exit.
        """
        if not self.vectorized:
            return
        n = table.path_len
        base = self._arena_reserve(n)
        tidx = self._table_count
        self._table_count += 1
        if tidx >= self.a_tblcyc.shape[0]:
            for name in self._TBL_I64:
                setattr(self, name, self._grown(
                    self._np, getattr(self, name),
                    getattr(self, name).shape[0] * 2))
        table.arena_base = base
        table.arena_tidx = tidx
        self.tables.append(table)
        # Mirror the table's patchable link slots as arena columns so
        # the vector rounds can chase trace-to-trace links without
        # Python: seed from current residency (compile just wired the
        # slots), then stay in sync through ``on_link_patch``.
        self._link_cols[id(table.link_taken)] = (True, base)
        self._link_cols[id(table.link_fall)] = (False, base)
        a_ltk = self.a_ltk
        a_lfl = self.a_lfl
        for i in range(n):
            lt = table.link_taken[i]
            a_ltk[base + i] = (
                lt.arena_base if lt is not None and lt.is_trace else -1
            )
            lf = table.link_fall[i]
            a_lfl[base + i] = (
                lf.arena_base if lf is not None and lf.is_trace else -1
            )

        path = table.path
        path0 = table.path0
        deciders = table.deciders
        counts = table.counts
        run_len = table.run_len
        run_insts = table.run_insts
        vec_desc = lane.vec_desc
        a_cnt = self.a_cnt
        a_run_len = self.a_run_len
        a_run_insts = self.a_run_insts
        a_base = self.a_base
        a_tbl = self.a_tbl
        a_kind = self.a_kind
        a_tcode = self.a_tcode
        a_fcode = self.a_fcode
        a_pf = self.a_pf
        a_pi = self.a_pi
        a_slot = self.a_slot
        a_pat = self.a_pat
        for i in range(n):
            j = base + i
            a_cnt[j] = counts[i]
            a_run_len[j] = run_len[i]
            a_run_insts[j] = run_insts[i]
            a_base[j] = base
            a_tbl[j] = tidx
            nxt = path[i + 1] if i + 1 < n else None
            decide = deciders[i]
            if decide.__class__ is tuple:
                taken, target = decide
                a_kind[j] = K_CONST
                a_pi[j] = 1 if taken else 0
                if nxt is not None and target is nxt:
                    a_tcode[j] = O_ADV
                elif taken and target is path0:
                    a_tcode[j] = O_CYC
                else:
                    a_tcode[j] = O_EXIT
                continue
            desc = vec_desc[path[i].block_id]
            if desc is None:
                a_kind[j] = K_SCALAR
                continue
            kind, pf, pi, slot, pat_base = desc
            a_kind[j] = kind
            a_pf[j] = pf
            a_pi[j] = pi
            a_slot[j] = slot
            a_pat[j] = pat_base
            if kind == K_RET:
                # A RETURN's outcome is decided by comparing the popped
                # block id against per-position topology, not by the
                # tcode/fcode columns: a_pi holds the next path
                # position's id (-1 past the end), a_slot the top's.
                a_pi[j] = nxt.block_id if nxt is not None else -1
                a_slot[j] = path0.block_id
                continue
            term = path[i].terminator
            taken_target = term.taken_target
            fall_target = path[i].fallthrough
            if nxt is not None and taken_target is nxt:
                a_tcode[j] = O_ADV
            elif taken_target is path0:
                a_tcode[j] = O_CYC
            else:
                a_tcode[j] = O_EXIT
            if nxt is not None and fall_target is nxt:
                a_fcode[j] = O_ADV
            else:
                a_fcode[j] = O_EXIT

    def link_patched(self, site, table) -> None:
        """``on_link_patch`` hook: mirror a link-slot patch in the arena.

        Called by a lane's dispatch after every install/retire patch;
        sites living in CFG records (not mirrored) resolve to nothing.
        A slot mirrors the linked table's arena base when the link is a
        trace-to-trace jump the vector rounds can take, -1 otherwise
        (unlinked, or linked to a CFG table — that transition must
        rebind the lane to scalar CFG walking, so it stays in Python).
        """
        info = self._link_cols.get(id(site.container))
        if info is None:
            return
        is_taken, base = info
        if table is not None and table.is_trace:
            mirrored = table.arena_base
        else:
            mirrored = -1
        column = self.a_ltk if is_taken else self.a_lfl
        column[base + site.key] = mirrored

    def fold_table_pending(self, table) -> None:
        """Fold the table's pending vector counts into its region.

        Vector rounds bank cycle-backs, entries, exits and executed
        instructions in per-table counters instead of touching
        ``Region`` objects; this folds the pending counts into the
        region — called before any selector callback or metric read
        can observe it.
        """
        if not self.vectorized:
            return
        tidx = table.arena_tidx
        if tidx < 0:
            return
        region = table.region
        pending = int(self.a_tblcyc[tidx])
        if pending:
            region.cycle_backs += pending
            self.a_tblcyc[tidx] = 0
        pending = int(self.t_ec[tidx])
        if pending:
            region.entry_count += pending
            self.t_ec[tidx] = 0
        pending = int(self.t_xc[tidx])
        if pending:
            region.exit_count += pending
            self.t_xc[tidx] = 0
        pending = int(self.t_insts[tidx])
        if pending:
            region.executed_instructions += pending
            self.t_insts[tidx] = 0

    def transfer_arena(self, table, edge_profile: Dict) -> None:
        """Move the table's arena walked-edge counters into its lists.

        The vector rounds count advances, cycle-backs, static-run hits
        and linked-exit departures in arena columns; at lane finish
        those merge into the table's own ``adv``/``cyc``/``run_hits``
        lists (which the scalar paths increment directly) so
        ``fold_edges`` sees the exact total the fused loop would have
        recorded, and the exit edges fold straight into the lane's
        shared ``edge_profile`` (the exit edge is fully determined by
        the position and direction; dict equality does not see
        insertion order).
        """
        if not self.vectorized:
            return
        base = table.arena_base
        if base < 0:
            return
        np = self._np
        end = base + table.path_len
        for column, target in (
            (self.a_adv[base:end], table.adv),
            (self.a_cyc[base:end], table.cyc),
            (self.a_run[base:end], table.run_hits),
        ):
            if column.any():
                for i in np.nonzero(column)[0]:
                    target[int(i)] += int(column[i])
                column[:] = 0
        path = table.path
        get = edge_profile.get
        column = self.a_xtk[base:end]
        if column.any():
            for i in np.nonzero(column)[0]:
                block = path[int(i)]
                edge = (block, block.terminator.taken_target)
                edge_profile[edge] = get(edge, 0) + int(column[i])
            column[:] = 0
        column = self.a_xfl[base:end]
        if column.any():
            for i in np.nonzero(column)[0]:
                block = path[int(i)]
                edge = (block, block.fallthrough)
                edge_profile[edge] = get(edge, 0) + int(column[i])
            column[:] = 0

    def lane_done(self, lane: Lane) -> None:
        self.remaining -= 1

    # -- the run loop ------------------------------------------------------
    def run(self) -> int:
        """Advance every lane to completion; returns the round count.

        An escaping :class:`ReproError` is enriched with the failing
        lane's ``(benchmark, selector, step)`` — the same context the
        serial pipeline attaches in ``Simulator.run`` — so a fleet
        abort is diagnosable like a serial one.  ``step`` is the lane's
        cache clock at failure; both pipelines advance the clock lazily
        (only observers read it), so it can trail the serial context by
        the distance to the last advancement point.
        """
        try:
            return self._run_rounds()
        except ReproError as exc:
            lane = self._err_lane
            if lane is not None:
                exc.with_context(
                    benchmark=lane.program.name,
                    selector=lane.cell.selector,
                    step=lane.cache.now,
                )
            raise

    def _run_rounds(self) -> int:
        quota = self.quota
        lanes = self.lanes
        rounds = 0
        if self.vectorized:
            while self.remaining:
                rounds += 1
                n_vec = int((self.l_mode == M_VEC).sum())
                if n_vec >= SCALAR_CUTOVER:
                    self._vector_round()
                elif n_vec:
                    for lane in lanes:
                        if lane.mode == M_VEC:
                            self._err_lane = lane
                            lane.run_trace_scalar(quota)
                for lane in lanes:
                    if lane.mode == M_SCALAR:
                        self._err_lane = lane
                        lane.run_scalar(quota)
        else:
            while self.remaining:
                rounds += 1
                for lane in lanes:
                    if lane.mode == M_SCALAR:
                        self._err_lane = lane
                        lane.run_scalar(quota)
                    if lane.mode == M_VEC:
                        self._err_lane = lane
                        lane.run_trace_scalar(quota)
        self.rounds = rounds
        return rounds

    def _vector_round(self) -> None:
        """Up to ``VEC_ITERS`` lockstep sweeps over trace-walking lanes.

        Each iteration mirrors exactly one pass of the fused loop's
        trace section per active lane: consume the static run at the
        lane's position (or pend its budget-clipped prefix), re-check
        the step budget, evaluate one decision, then apply advances,
        cycle-backs and linked region-to-region transitions in place.
        Lanes whose next action needs Python — budget exhaustion,
        scalar-kind or stack-limit decisions, unlinked exits — leave
        the active set and queue their pending work; the queued
        complement runs once, after the loop, when every vectorized
        write has landed.  A selector callback inside the complement
        may install a region and reallocate the arena, which is why the
        complement must come last: the iteration loop's hoisted arena
        references are valid precisely because nothing reallocates
        before it finishes.
        """
        np = self._np
        l_steps = self.l_steps
        l_max = self.l_max
        l_walk = self.l_walk
        l_gpos = self.l_gpos
        l_depth = self.l_depth
        l_dlim = self.l_dlim
        l_cinst = self.l_cinst
        l_trans = self.l_trans
        rng_states = self.rng_states
        site = self.site
        pat_arena = self.pat_arena
        stk = self.stk
        a_run_len = self.a_run_len
        a_run_insts = self.a_run_insts
        a_run = self.a_run
        a_cnt = self.a_cnt
        a_kind = self.a_kind
        a_tcode = self.a_tcode
        a_fcode = self.a_fcode
        a_pf = self.a_pf
        a_pi = self.a_pi
        a_slot = self.a_slot
        a_pat = self.a_pat
        a_adv = self.a_adv
        a_cyc = self.a_cyc
        a_base = self.a_base
        a_tbl = self.a_tbl
        a_tblcyc = self.a_tblcyc
        a_ltk = self.a_ltk
        a_lfl = self.a_lfl
        a_xtk = self.a_xtk
        a_xfl = self.a_xfl
        t_ec = self.t_ec
        t_xc = self.t_xc
        t_insts = self.t_insts

        act = np.nonzero(self.l_mode == M_VEC)[0]
        pend_clip: List[int] = []  # lane -> _partial_span
        pend_fin: List[int] = []  # lane -> _finish
        pend_defer: List[tuple] = []  # (lane, gpos, steps)
        pend_exit: List[tuple] = []  # (lane, gpos, taken, steps)
        pend_ret: List[tuple] = []  # (lane, gpos, target_id, steps)

        n0 = act.size
        for _ in range(VEC_ITERS):
            # Stop early once most lanes have diverged: a sweep's fixed
            # cost is per iteration, so iterating over a shrunken
            # active set buys little — run the queued complement and
            # let everyone rejoin next round.
            if act.size < SCALAR_CUTOVER or 4 * act.size < n0:
                break
            gp = l_gpos[act]
            span = a_run_len[gp]
            clip = span > (l_max[act] - l_steps[act])
            if clip.any():
                pend_clip.extend(act[clip].tolist())
                keep = ~clip
                act = act[keep]
                gp = gp[keep]
                span = span[keep]
            hop = span > 0
            if hop.any():
                hop_lanes = act[hop]
                hop_pos = gp[hop]
                hop_span = span[hop]
                l_steps[hop_lanes] += hop_span
                l_walk[hop_lanes] += a_run_insts[hop_pos]
                a_run[hop_pos] += 1
                new_pos = hop_pos + hop_span
                l_gpos[hop_lanes] = new_pos
                gp[hop] = new_pos

            # Budget re-check between hop and decision (the fused
            # loop's ``while steps < max_steps`` head).
            done = l_steps[act] >= l_max[act]
            if done.any():
                pend_fin.extend(act[done].tolist())
                keep = ~done
                act = act[keep]
                gp = gp[keep]
            if not act.size:
                break

            l_steps[act] += 1
            l_walk[act] += a_cnt[gp]
            kind = a_kind[gp]
            outcome = np.full(act.size, _O_DEFER, dtype=np.int8)
            taken = np.zeros(act.size, dtype=bool)

            mask = kind == K_CONST
            if mask.any():
                g = gp[mask]
                outcome[mask] = a_tcode[g]
                taken[mask] = a_pi[g] != 0
            mask = kind == K_BERN
            if mask.any():
                g = gp[mask]
                draw = vector_random(rng_states, act[mask])
                t = draw < a_pf[g]
                outcome[mask] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mask] = t
            mask = kind == K_LOOP
            if mask.any():
                g = gp[mask]
                slots = a_slot[g]
                left = site[slots]
                left = np.where(left == 0, a_pi[g], left) - 1
                t = left > 0
                site[slots] = np.where(t, left, 0)
                outcome[mask] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mask] = t
            mask = kind == K_PERIODIC
            if mask.any():
                g = gp[mask]
                slots = a_slot[g]
                cursor = site[slots]
                site[slots] = (cursor + 1) % a_pi[g]
                t = pat_arena[a_pat[g] + cursor]
                outcome[mask] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mask] = t
            mask = kind == K_LOOPJ
            if mask.any():
                mi = np.nonzero(mask)[0]
                g = gp[mi]
                slots = a_slot[g]
                left = site[slots]
                need = left == 0
                if need.any():
                    # Activation start: draw the trip count — one
                    # SplitMix64 word each, ``lo + word % span``.
                    draws = vector_next_u64(rng_states, act[mi[need]])
                    gn = g[need]
                    jspan = a_pat[gn].astype(np.uint64)
                    left[need] = a_pi[gn] + (
                        draws % jspan).astype(np.int64)
                left = left - 1
                t = left > 0
                site[slots] = np.where(t, left, 0)
                outcome[mi] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mi] = t
            mask = kind == K_CALL
            if mask.any():
                mi = np.nonzero(mask)[0]
                g = gp[mi]
                ln = act[mi]
                d = l_depth[ln]
                ok = d < l_dlim[ln]
                # Overflow lanes stay deferred; the lane's closure
                # raises the canonical error.
                oki = mi[ok]
                if oki.size:
                    lnk = ln[ok]
                    gk = g[ok]
                    stk[lnk, d[ok]] = a_pi[gk]
                    l_depth[lnk] = d[ok] + 1
                    outcome[oki] = a_tcode[gk]
                    taken[oki] = True
            mask = kind == K_RET
            if mask.any():
                mi = np.nonzero(mask)[0]
                g = gp[mi]
                ln = act[mi]
                d = l_depth[ln]
                has = d > 0
                # Empty-stack returns (from main) stay deferred; the
                # lane's closure sees depth 0 and ends the program.
                hi = mi[has]
                if hi.size:
                    gh = g[has]
                    lnh = ln[has]
                    dh = d[has] - 1
                    tgt = stk[lnh, dh].astype(np.int64)
                    l_depth[lnh] = dh
                    adv = tgt == a_pi[gh]
                    cyc = ~adv & (tgt == a_slot[gh])
                    outcome[hi] = np.where(
                        adv, O_ADV, np.where(cyc, O_CYC, _O_RETX))
                    taken[hi] = True
                    retx = ~adv & ~cyc
                    if retx.any():
                        rl = lnh[retx]
                        pend_ret.extend(zip(
                            rl.tolist(), gh[retx].tolist(),
                            tgt[retx].tolist(), l_steps[rl].tolist()))

            adv_m = outcome == O_ADV
            if adv_m.any():
                g = gp[adv_m]
                a_adv[g] += 1
                l_gpos[act[adv_m]] = g + 1
            cyc_m = outcome == O_CYC
            if cyc_m.any():
                g = gp[cyc_m]
                a_cyc[g] += 1
                a_tblcyc[a_tbl[g]] += 1
                l_gpos[act[cyc_m]] = a_base[g]
            cont = adv_m | cyc_m

            defer = outcome == _O_DEFER
            if defer.any():
                dl = act[defer]
                pend_defer.extend(zip(
                    dl.tolist(), gp[defer].tolist(),
                    l_steps[dl].tolist()))

            exit_js = np.nonzero(outcome == O_EXIT)[0]
            if exit_js.size:
                # Linked exits — direct region-to-region jumps — stay
                # vectorized: bank the exited stint in the per-table
                # pending counters, count the departure edge, and move
                # the lane to the linked table's arena base.  (All
                # fancy indices here are unique: a lane decides once
                # per iteration and tables are never shared across
                # lanes.)
                ge = gp[exit_js]
                tkn = taken[exit_js]
                link = np.where(tkn, a_ltk[ge], a_lfl[ge])
                linked_m = link >= 0
                if linked_m.any():
                    lg = ge[linked_m]
                    lane_ids = act[exit_js[linked_m]]
                    lb = link[linked_m]
                    t_old = a_tbl[lg]
                    w = l_walk[lane_ids]
                    t_xc[t_old] += 1
                    t_insts[t_old] += w
                    l_cinst[lane_ids] += w
                    l_walk[lane_ids] = 0
                    tk = tkn[linked_m]
                    a_xtk[lg[tk]] += 1
                    a_xfl[lg[~tk]] += 1
                    t_ec[a_tbl[lb]] += 1
                    l_trans[lane_ids] += 1
                    l_gpos[lane_ids] = lb
                    cont[exit_js[linked_m]] = True
                    exit_js = exit_js[~linked_m]
                if exit_js.size:
                    el = act[exit_js]
                    pend_exit.extend(zip(
                        el.tolist(), gp[exit_js].tolist(),
                        taken[exit_js].tolist(),
                        l_steps[el].tolist()))
            act = act[cont]

        # Per-lane Python complement (divergent work), after every
        # vectorized write above has landed.  A lane appears at most
        # once across the queues: pending a lane removed it from the
        # active set, so nothing below observes stale column state.
        lanes = self.lanes
        for li in pend_clip:
            self._err_lane = lanes[li]
            lanes[li]._partial_span()
        for li in pend_fin:
            self._err_lane = lanes[li]
            lanes[li]._finish()
        for li, gpos, steps in pend_defer:
            self._err_lane = lanes[li]
            lanes[li]._trace_decide_scalar(gpos, steps)
        for li, gpos, tk, steps in pend_exit:
            self._err_lane = lanes[li]
            lanes[li]._trace_exit_vec(gpos, tk, steps)
        for li, gpos, tid, steps in pend_ret:
            self._err_lane = lanes[li]
            lanes[li]._trace_ret_exit(gpos, tid, steps)
