"""The fleet kernel: lockstep SoA execution of many simulation lanes.

One :class:`FleetKernel` advances every lane of a fleet (one lane per
grid cell) to completion.  The hot per-lane scalars live in
structure-of-arrays columns indexed by lane slot:

========== ======== =====================================================
column     dtype    meaning
========== ======== =====================================================
l_steps    int64    the lane's step counter (the fused loop's ``steps``)
l_max      int64    the lane's step budget (``max_steps``)
l_walk     int64    instructions walked in the current region stint
l_gpos     int64    global walk-table program counter (arena position)
l_mode     int8     M_SCALAR / M_VEC / M_DONE (see lane lifecycle)
l_cinst    int64    cache instructions banked by vectorized transitions
l_trans    int64    region transitions banked by vectorized transitions
rng_states uint64   the lane's SplitMix64 state word
========== ======== =====================================================

Every lane's installed trace tables are concatenated into a global
*arena*: one row per walk-table position, holding the position's
instruction count, static-run metadata, decision kind and parameters,
and walked-edge counters.  A lane walking a trace is just an index
``l_gpos`` into the arena; a vector round (:meth:`_vector_round`)
advances **all** trace-walking lanes at once — static-run hops, then
one decision each, grouped by decision kind and evaluated with numpy
array ops.  *Linked* region exits — the overwhelming majority on
trace-friendly workloads (10-100x the true cache exits) — also stay
vectorized: the arena mirrors every table's trace-to-trace link slots
as arena-base columns (``a_ltk``/``a_lfl``, kept in sync through
:attr:`~repro.cache.dispatch.DispatchTable.on_link_patch`), so a
linked transition is a fancy-indexed ``l_gpos`` assignment plus
pending-counter updates, folded into the ``Region`` objects before
anything can observe them.  Only genuinely divergent work drops to
per-lane Python — scalar decisions (call/return stack effects,
dynamic targets, unknown branch models) and unlinked exits (selector
callbacks may install/evict regions) — then rejoins the next round.

The pure-Python backend keeps the same lane lifecycle and per-lane
scalar code but replaces the vector rounds with a per-lane trace walk
(:meth:`repro.batch.lane.Lane.run_trace_scalar`); the arena is not
built at all.  Either way, every decision replicates the fused
reference loop bit for bit — ``tests/test_batch.py`` holds a fleet
lane equal to a serial ``simulate`` run for the same cell.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.batch.backend import (
    K_BERN,
    K_CALL,
    K_CONST,
    K_LOOP,
    K_LOOPJ,
    K_PERIODIC,
    K_RET,
    K_SCALAR,
    M_DONE,
    M_SCALAR,
    M_VEC,
    O_ADV,
    O_CYC,
    O_EXIT,
    numpy_module,
    vector_next_u64,
    vector_random,
)
from repro.batch.lane import Lane
from repro.behavior.models import NeverTaken
from repro.behavior.rng import _MASK64
from repro.cache.dispatch import REC_LINK_FALL, REC_LINK_TAKEN
from repro.errors import ReproError
from repro.isa.opcodes import BranchKind

#: Outcome sentinel for scalar-kind decisions (handled per lane, never
#: matched by the vectorized O_ADV/O_CYC/O_EXIT apply passes).
_O_DEFER = 3

#: Outcome sentinel for a RETURN that leaves the region: the popped
#: target is dynamic, so the exit goes per-lane with the popped id.
_O_RETX = 4

#: Outcome code stamped on every CFG arena position: the transfer's
#: destination is not positional (advance/cycle) but a per-direction
#: precomputed successor (``a_tnext``/``a_fnext``, -1 = leaves the
#: region) — applied by the vector round's CFG pass.
_O_CFG = 5

#: CFG constant-run chain cap — bounds registration cost and keeps one
#: hop's step count small relative to any step budget.
_CFG_RUN_CAP = 256

#: Default interp/CFG steps granted per lane per kernel round.  Large
#: enough to amortize the per-round bookkeeping across the fleet,
#: small enough that interpreting lanes rejoin the vector rounds
#: promptly after a region install.
DEFAULT_QUOTA = 512

#: Below this many trace-walking lanes, a vector round's fixed numpy
#: overhead exceeds per-lane Python stepping — the run loop falls back
#: to :meth:`Lane.run_trace_scalar` so a fleet's last stragglers do
#: not pay array-dispatch cost per simulated step.  48 is empirical:
#: sweeps over chain, SPEC and mixed fleets put the crossover between
#: ~24 (homogeneous, run-dominated tables) and ~96 (divergent mixed
#: fleets); 48 is within noise of the best setting for each shape.
SCALAR_CUTOVER = 48

#: Vector iterations per round.  Active lanes advance up to this many
#: hop-and-decide cycles before the round's Python complement runs;
#: lanes whose next action needs Python (budget exhaustion, scalar-kind
#: decisions, unlinked exits) drop out of the active set and wait.
#: Iterating inside the round amortizes the fixed cost of a numpy
#: sweep — a few dozen small array kernels — over several decisions
#: per lane instead of exactly one.
VEC_ITERS = 8

#: Lane-compaction cadence (in kernel rounds).  Every this-many rounds
#: the kernel checks whether the vector-mode lanes have fragmented —
#: interleaved with scalar/done lanes — and, if so, stably re-sorts
#: the lane slots by int-coded mode so the vector sweeps gather from a
#: dense, cache-friendly index range instead of a scattered one.
COMPACT_EVERY = 16


class FleetKernel:
    """Advance a fleet of lanes to completion over shared SoA state.

    The kernel is a *streaming scheduler*: it holds at most
    ``max_lanes`` live lanes (SoA columns are sized to that), feeds
    them from a cell queue, and re-seeds a slot in place the moment its
    lane settles (:meth:`lane_done` → :meth:`_admit`) so the active set
    stays above ``SCALAR_CUTOVER`` until the queue drains instead of
    decaying into the scalar tail.  Settling is incremental — the
    ``on_settle`` callback receives each finished lane's report, the
    lane object is dropped, and its shared-state footprint (arena
    spans, table indices, link-mirror entries, branch-model site slots,
    its program when no other live lane shares it) is recycled — so
    memory is bounded by ``max_lanes``, not by the total cell count.
    Lanes never interact, so admission order, ``max_lanes`` and refill
    timing are pure scheduling: per-cell results are bit-identical for
    every queue schedule (the hypothesis property suite proves it).
    """

    def __init__(
        self,
        cells,
        program_for: Callable[[str, float], object],
        config,
        backend: str,
        max_steps: Optional[int] = None,
        quota: int = DEFAULT_QUOTA,
        compaction: bool = True,
        max_lanes: Optional[int] = None,
        on_error: str = "raise",
        on_settle: Optional[Callable] = None,
        on_admit: Optional[Callable] = None,
    ) -> None:
        self.backend = backend
        self.vectorized = backend == "numpy"
        self.quota = quota
        #: Lane compaction is a pure scheduling knob (lanes are
        #: independent, so slot order cannot change results) — but it
        #: is toggleable so the property suite can prove exactly that.
        self.compaction = compaction and self.vectorized
        self.compactions = 0
        self.rounds = 0
        self.config = config
        self._max_steps = max_steps
        #: Program factory + refcounted cache: lanes of one
        #: (benchmark, scale) key share one immutable ``Program``;
        #: streaming runs release it once no live lane walks it.
        self._program_for = program_for
        self._programs: Dict[Tuple[str, float], list] = {}
        #: Per-program interp constant-decision span tables, keyed by
        #: the stable (benchmark, scale) coordinate — never by
        #: ``id(program)``, which the allocator may recycle once a
        #: streaming run releases a program (see :meth:`interp_spans`).
        self._interp_spans: Dict[Tuple[str, float], tuple] = {}
        #: Lane whose Python-side code is (or was last) executing; the
        #: vector sweeps themselves cannot raise ``ReproError``, so an
        #: escaping error is always attributable to this lane.
        self._err_lane: Optional[Lane] = None
        #: ``on_error="continue"`` contains a lane's ``ReproError``:
        #: the cell settles as failed (the error reaches ``on_settle``)
        #: and its slot refills; the default re-raises, aborting the
        #: fleet like a serial run would abort its cell.
        self.contain_errors = on_error == "continue"
        self.on_settle = on_settle
        self.on_admit = on_admit
        self.errors = 0
        self.refills = 0
        self.settled = 0
        self.active = 0

        cells = tuple(cells)
        total = len(cells)
        self.total = total
        n = total if max_lanes is None else max(1, min(int(max_lanes), total))
        self.max_lanes = n
        #: Streaming = more cells than slots: slots are re-seeded from
        #: the queue as lanes settle, and idle shared state is
        #: recycled aggressively.
        self.streaming = n < total
        self.queue = deque(cells[n:])

        np = numpy_module() if self.vectorized else None
        self._np = np
        if self.vectorized:
            self.l_steps = np.zeros(n, dtype=np.int64)
            self.l_max = np.zeros(n, dtype=np.int64)
            self.l_walk = np.zeros(n, dtype=np.int64)
            self.l_gpos = np.zeros(n, dtype=np.int64)
            self.l_mode = np.full(n, M_SCALAR, dtype=np.int8)
            self.l_cinst = np.zeros(n, dtype=np.int64)
            self.l_trans = np.zeros(n, dtype=np.int64)
            self.l_depth = np.zeros(n, dtype=np.int64)
            self.l_dlim = np.zeros(n, dtype=np.int64)
            #: SoA call stack — ``stk[lane, depth]`` holds a pushed
            #: return site's block id; allocated on the first
            #: call/return decider (:meth:`ensure_stack`).
            self.stk = None
            self.rng_states = np.zeros(n, dtype=np.uint64)
            # Branch-model site slots (loop countdowns, periodic
            # cursors) and the flattened periodic patterns, shared
            # between the vector rounds and the lanes' closures.
            self.site = np.zeros(64, dtype=np.int64)
            self.pat_arena = np.zeros(64, dtype=bool)
            self._init_arena(np)
        else:
            self.l_steps = [0] * n
            self.l_max = [0] * n
            self.l_walk = [0] * n
            self.l_gpos = [0] * n
            self.l_mode = [M_SCALAR] * n
            self.rng_states = [0] * n
            self.site: List[int] = []
            self.pat_arena = None
        self._site_len = 0
        #: Site slots of settled lanes, reusable by admitted ones
        #: (zeroed at release — 0 is every model's idle encoding).
        self._site_free: List[int] = []
        #: Periodic patterns interned by value: the arena cells are
        #: write-once and read-only afterwards, so lanes of any cell
        #: mix can share one copy per distinct pattern.
        self._pat_cache: Dict[Tuple[bool, ...], int] = {}

        self.lanes: List[Optional[Lane]] = [None] * n
        self.remaining = total
        for i in range(n):
            self._admit(i, cells[i], initial=True)

    # -- slot lifecycle (admission / settling) -----------------------------
    def _admit(self, idx: int, cell, initial: bool = False) -> None:
        """Seed (or re-seed) slot ``idx`` with a fresh lane for ``cell``.

        Resets every per-lane column the previous occupant may have
        left behind — step counters, walk position, call depth, the
        RNG state word — then builds the lane exactly as construction
        does.  Stale SoA stack entries need no scrub: reads are gated
        on ``l_depth``, which restarts at zero.  Runs inside the round
        loop (from :meth:`lane_done`): the freed slot cannot appear in
        any pending queue (a settling lane was that slot's only
        claimant this round), and mode-index snapshots taken later in
        the round pick the fresh lane up for its first scalar pass.
        """
        program = self._acquire_program(cell)
        self.l_steps[idx] = 0
        self.l_walk[idx] = 0
        self.l_gpos[idx] = 0
        self.l_mode[idx] = M_SCALAR
        self.rng_states[idx] = cell.seed & _MASK64
        if self.vectorized:
            self.l_cinst[idx] = 0
            self.l_trans[idx] = 0
            self.l_depth[idx] = 0
        lane = Lane(self, idx, cell, program, self.config, self._max_steps)
        self.l_max[idx] = lane.max_steps
        if self.vectorized:
            self.l_dlim[idx] = lane.engine.max_call_depth
        self.lanes[idx] = lane
        self.active += 1
        if not initial:
            self.refills += 1
        if self.on_admit is not None:
            self.on_admit(cell, idx, initial)

    def _acquire_program(self, cell):
        key = (cell.benchmark, cell.scale)
        entry = self._programs.get(key)
        if entry is None:
            entry = self._programs[key] = [
                self._program_for(cell.benchmark, cell.scale), 0]
        entry[1] += 1
        return entry[0]

    def _release_program(self, cell) -> None:
        key = (cell.benchmark, cell.scale)
        entry = self._programs.get(key)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0 and self.streaming:
            # No live lane walks this program and more cells are
            # queued: drop it so memory tracks the active set.  The
            # interp-span memo goes with it — a later rebuild is a
            # *different* instance, and spans hold block objects of
            # the instance they were built from.
            del self._programs[key]
            self._interp_spans.pop(key, None)

    # -- arena management (numpy backend) ---------------------------------
    #: ``a_tnext``/``a_fnext`` are CFG-only: the absolute arena
    #: position an internal taken/fall transfer lands on (-1 = the
    #: transfer leaves the region); ``a_tcyc``/``a_fcyc`` flag the
    #: internal transfer that cycles back to the region entry.
    _ARENA_I64 = ("a_cnt", "a_run_len", "a_run_insts", "a_rdst", "a_base",
                  "a_tbl", "a_pi", "a_slot", "a_pat", "a_adv", "a_cyc",
                  "a_run", "a_ltk", "a_lfl", "a_xtk", "a_xfl", "a_tnext",
                  "a_fnext")
    #: ``a_cfg`` flags CFG rows (1) vs trace rows (0) so the round can
    #: split its pending queues by table shape at queue time — the
    #: complement then dispatches each group once instead of
    #: re-deriving the shape per lane.
    _ARENA_I8 = ("a_kind", "a_tcode", "a_fcode", "a_tcyc", "a_fcyc", "a_cfg")
    #: Per-table pending counters (indexed by ``arena_tidx``): vector
    #: rounds bank region-counter updates here instead of touching
    #: ``Region`` objects per transition; :meth:`fold_table_pending`
    #: folds them before anything else can observe the region.
    _TBL_I64 = ("a_tblcyc", "t_ec", "t_xc", "t_insts")

    def _init_arena(self, np, cap: int = 256) -> None:
        for name in self._ARENA_I64:
            setattr(self, name, np.zeros(cap, dtype=np.int64))
        for name in self._ARENA_I8:
            setattr(self, name, np.zeros(cap, dtype=np.int8))
        self.a_pf = np.zeros(cap, dtype=np.float64)
        for name in self._TBL_I64:
            setattr(self, name, np.zeros(64, dtype=np.int64))
        self._arena_len = 0
        self._arena_cap = cap
        self._table_count = 0
        #: ``arena_tidx -> {row_offset: ((row, taken), ...)}`` — a CFG
        #: table's constant-decision runs, for expanding the banked
        #: ``a_run`` hit counts into walked edges at transfer time.
        self._cfg_run_edges: Dict[int, dict] = {}
        #: Walk tables (trace and CFG) by ``arena_tidx`` — lets the
        #: Python complement derive a lane's current table from
        #: ``a_tbl[l_gpos]`` after vectorized linked transitions moved
        #: it.
        self.tables: List[object] = []
        #: ``id(site container) -> (mode, base)`` — resolves an
        #: ``on_link_patch`` callback's site to its mirror cell in
        #: ``a_ltk``/``a_lfl``.  Mode 0/1: a trace table's
        #: ``link_taken``/``link_fall`` list, ``base`` its arena base
        #: (the site key is the path position).  Mode 2: a CFG record,
        #: ``base`` the record's absolute arena position (the site key
        #: picks the column).  A container is kept alive by its table
        #: while the owning lane lives; when a streamed lane settles,
        #: its entries are dropped (via ``_tbl_link_ids``) *before* the
        #: tables become garbage, so a recycled container id can never
        #: alias a dead mirror cell.
        self._link_cols: Dict[int, Tuple[int, int]] = {}
        #: ``arena_tidx -> [container ids]`` — the ``_link_cols`` keys
        #: each table registered, for exact removal at release.
        self._tbl_link_ids: Dict[int, List[int]] = {}
        #: Recycled arena spans by exact length, and recycled table
        #: indices — settled lanes' tables return their storage here,
        #: pre-zeroed, so a streaming run's arena footprint tracks the
        #: *live* lane set instead of growing with every admission.
        self._span_free: Dict[int, List[int]] = {}
        self._tidx_free: List[int] = []

    @staticmethod
    def _grown(np, array, cap: int):
        fresh = np.zeros(cap, dtype=array.dtype)
        fresh[: array.shape[0]] = array
        return fresh

    def _arena_reserve(self, n: int) -> int:
        # Exact-fit reuse first: spans freed by settled lanes were
        # zeroed at release, so a recycled span is indistinguishable
        # from fresh storage.
        spans = self._span_free.get(n)
        if spans:
            return spans.pop()
        np = self._np
        need = self._arena_len + n
        if need > self._arena_cap:
            cap = self._arena_cap
            while cap < need:
                cap *= 2
            for name in self._ARENA_I64 + self._ARENA_I8 + ("a_pf",):
                setattr(self, name, self._grown(np, getattr(self, name), cap))
            self._arena_cap = cap
        base = self._arena_len
        self._arena_len = need
        return base

    def _alloc_tidx(self, table) -> int:
        """Bind ``table`` to a table index (recycled when available)."""
        free = self._tidx_free
        if free:
            tidx = free.pop()
            self.tables[tidx] = table
            return tidx
        tidx = self._table_count
        self._table_count += 1
        if tidx >= self.a_tblcyc.shape[0]:
            for name in self._TBL_I64:
                setattr(self, name, self._grown(
                    self._np, getattr(self, name),
                    getattr(self, name).shape[0] * 2))
        self.tables.append(table)
        return tidx

    def ensure_stack(self, max_depth: int) -> None:
        """Allocate (or deepen) the SoA call stack for every lane."""
        np = self._np
        n = self.l_steps.shape[0]
        if self.stk is None:
            self.stk = np.zeros((n, max_depth), dtype=np.int32)
        elif self.stk.shape[1] < max_depth:
            fresh = np.zeros((n, max_depth), dtype=np.int32)
            fresh[:, : self.stk.shape[1]] = self.stk
            self.stk = fresh

    def alloc_site(self) -> int:
        """Reserve one zero-initialized branch-model state slot.

        Settled lanes return their slots through ``_site_free`` (zeroed
        at release), so a streaming run's site table is bounded by the
        live lanes' demand, not the total cell count.
        """
        free = self._site_free
        if free:
            return free.pop()
        slot = self._site_len
        self._site_len += 1
        if self.vectorized:
            if slot >= self.site.shape[0]:
                self.site = self._grown(self._np, self.site,
                                        self.site.shape[0] * 2)
        else:
            self.site.append(0)
        return slot

    def alloc_pattern(self, pattern: Tuple[bool, ...]) -> int:
        """Intern a periodic pattern into the flat pattern arena.

        Interned by value: the cells are written once and only ever
        read afterwards, so every lane using the same pattern shares
        one copy — the arena cannot grow with admissions.
        """
        if not self.vectorized:
            return -1
        cached = self._pat_cache.get(pattern)
        if cached is not None:
            return cached
        np = self._np
        n = len(pattern)
        base = getattr(self, "_pat_len", 0)
        need = base + n
        cap = self.pat_arena.shape[0]
        if need > cap:
            while cap < need:
                cap *= 2
            self.pat_arena = self._grown(np, self.pat_arena, cap)
        self.pat_arena[base:need] = pattern
        self._pat_len = need
        self._pat_cache[pattern] = base
        return base

    def register_table(self, lane: Lane, table) -> None:
        """Append a freshly compiled trace table to the global arena.

        Called from :class:`~repro.batch.lane.LaneDispatch` on every
        trace compile (install or ``table_for``).  Per position the
        decision kind is classified from the lane's descriptors
        (:meth:`Lane._make_decider`), and the two outcome codes are
        precomputed from the table topology with the reference walker's
        exact check order — advance to the next path position first,
        then taken-cycle-back to the top, else exit.
        """
        if not self.vectorized:
            return
        n = table.path_len
        base = self._arena_reserve(n)
        tidx = self._alloc_tidx(table)
        table.arena_base = base
        table.arena_tidx = tidx
        table.arena_entry = base
        # Mirror the table's patchable link slots as arena columns so
        # the vector rounds can chase region-to-region links without
        # Python: seed from current residency (compile just wired the
        # slots), then stay in sync through ``on_link_patch``.  Both
        # trace and CFG targets mirror (every compiled table has an
        # arena entry position), so linked transitions never force a
        # lane off the vector path.
        self._link_cols[id(table.link_taken)] = (0, base)
        self._link_cols[id(table.link_fall)] = (1, base)
        self._tbl_link_ids[tidx] = [id(table.link_taken),
                                    id(table.link_fall)]
        a_ltk = self.a_ltk
        a_lfl = self.a_lfl
        for i in range(n):
            lt = table.link_taken[i]
            a_ltk[base + i] = lt.arena_entry if lt is not None else -1
            lf = table.link_fall[i]
            a_lfl[base + i] = lf.arena_entry if lf is not None else -1

        path = table.path
        path0 = table.path0
        deciders = table.deciders
        counts = table.counts
        run_len = table.run_len
        run_insts = table.run_insts
        vec_desc = lane.vec_desc
        a_cnt = self.a_cnt
        a_run_len = self.a_run_len
        a_run_insts = self.a_run_insts
        a_rdst = self.a_rdst
        a_base = self.a_base
        a_tbl = self.a_tbl
        a_kind = self.a_kind
        a_tcode = self.a_tcode
        a_fcode = self.a_fcode
        a_pf = self.a_pf
        a_pi = self.a_pi
        a_slot = self.a_slot
        a_pat = self.a_pat
        for i in range(n):
            j = base + i
            a_cnt[j] = counts[i]
            a_run_len[j] = run_len[i]
            a_run_insts[j] = run_insts[i]
            a_rdst[j] = j + run_len[i]
            a_base[j] = base
            a_tbl[j] = tidx
            nxt = path[i + 1] if i + 1 < n else None
            decide = deciders[i]
            if decide.__class__ is tuple:
                taken, target = decide
                a_kind[j] = K_CONST
                a_pi[j] = 1 if taken else 0
                if nxt is not None and target is nxt:
                    a_tcode[j] = O_ADV
                elif taken and target is path0:
                    a_tcode[j] = O_CYC
                else:
                    a_tcode[j] = O_EXIT
                continue
            desc = vec_desc[path[i].block_id]
            if desc is None:
                a_kind[j] = K_SCALAR
                continue
            kind, pf, pi, slot, pat_base = desc
            a_kind[j] = kind
            a_pf[j] = pf
            a_pi[j] = pi
            a_slot[j] = slot
            a_pat[j] = pat_base
            if kind == K_RET:
                # A RETURN's outcome is decided by comparing the popped
                # block id against per-position topology, not by the
                # tcode/fcode columns: a_pi holds the next path
                # position's id (-1 past the end), a_slot the top's.
                a_pi[j] = nxt.block_id if nxt is not None else -1
                a_slot[j] = path0.block_id
                continue
            term = path[i].terminator
            taken_target = term.taken_target
            fall_target = path[i].fallthrough
            if nxt is not None and taken_target is nxt:
                a_tcode[j] = O_ADV
            elif taken_target is path0:
                a_tcode[j] = O_CYC
            else:
                a_tcode[j] = O_EXIT
            if nxt is not None and fall_target is nxt:
                a_fcode[j] = O_ADV
            else:
                a_fcode[j] = O_EXIT

    def register_cfg_table(self, lane: Lane, table) -> None:
        """Append a freshly compiled CFG table to the global arena.

        One arena row per block, in ``block_list`` order.  CFG rows
        reuse the trace rows' decision kinds (the decision itself does
        not care about region shape) but stamp ``_O_CFG`` as both
        outcome codes: the destination of a CFG transfer is not
        positional but a per-direction precomputed successor —
        ``a_tnext``/``a_fnext`` hold the absolute arena position of an
        *internal* taken/fall target (-1 when the transfer leaves the
        region), replicating the reference walker's stays-internal
        check, and ``a_tcyc``/``a_fcyc`` flag the internal transfer
        that lands on the region entry (a cycle-back).  Dynamic-target
        blocks and RETURNs classify scalar: their successor depends on
        run state (an observed-edge set membership, a popped stack
        frame), so they defer to the lane's own closure.
        """
        if not self.vectorized:
            return
        block_list = table.block_list
        n = len(block_list)
        base = self._arena_reserve(n)
        tidx = self._alloc_tidx(table)
        table.arena_base = base
        table.arena_tidx = tidx
        table.arena_entry = base + table.entry_pos
        link_ids = self._tbl_link_ids[tidx] = []

        index_of = table.index_of
        blocks = table.blocks
        entry = table.entry
        records = table.records
        vec_desc = lane.vec_desc
        a_cnt = self.a_cnt
        a_base = self.a_base
        a_tbl = self.a_tbl
        a_kind = self.a_kind
        a_tcode = self.a_tcode
        a_fcode = self.a_fcode
        a_pf = self.a_pf
        a_pi = self.a_pi
        a_slot = self.a_slot
        a_pat = self.a_pat
        a_tnext = self.a_tnext
        a_fnext = self.a_fnext
        a_tcyc = self.a_tcyc
        a_fcyc = self.a_fcyc
        a_ltk = self.a_ltk
        a_lfl = self.a_lfl
        a_cfg = self.a_cfg
        for i, block in enumerate(block_list):
            j = base + i
            rec = records[block]
            a_cnt[j] = rec[1]
            a_base[j] = base
            a_tbl[j] = tidx
            a_tnext[j] = -1
            a_fnext[j] = -1
            a_cfg[j] = 1
            lt = rec[REC_LINK_TAKEN]
            a_ltk[j] = lt.arena_entry if lt is not None else -1
            lf = rec[REC_LINK_FALL]
            a_lfl[j] = lf.arena_entry if lf is not None else -1
            if rec[7]:  # REC_DYNAMIC: successor needs the dynamic target
                a_kind[j] = K_SCALAR
                continue
            self._link_cols[id(rec)] = (2, j)
            link_ids.append(id(rec))
            term = block.terminator
            tt = term.taken_target
            if tt is not None and tt in blocks:
                a_tnext[j] = base + index_of[tt]
                if tt is entry:
                    a_tcyc[j] = 1
            fall = block.fallthrough
            if fall is not None and fall in blocks:
                a_fnext[j] = base + index_of[fall]
                if fall is entry:
                    a_fcyc[j] = 1
            decide = rec[0]  # REC_DECIDE
            if decide.__class__ is tuple:
                a_kind[j] = K_CONST
                a_pi[j] = 1 if decide[0] else 0
                a_tcode[j] = _O_CFG
                a_fcode[j] = _O_CFG
                continue
            desc = vec_desc[block.block_id]
            if desc is None or desc[0] == K_RET:
                # K_RET pops a dynamic return site — for a trace the
                # outcome reduces to two id compares against fixed
                # positions, but a CFG's stays-internal check is a set
                # membership over the popped block, so it goes scalar.
                a_kind[j] = K_SCALAR
                continue
            kind, pf, pi, slot, pat_base = desc
            a_kind[j] = kind
            a_pf[j] = pf
            a_pi[j] = pi
            a_slot[j] = slot
            a_pat[j] = pat_base
            a_tcode[j] = _O_CFG
            a_fcode[j] = _O_CFG

        # Second pass: constant-decision chains become static runs, the
        # CFG analogue of a trace's ``run_len`` — a maximal sequence of
        # K_CONST rows whose fixed direction stays internal without
        # cycling back to the entry.  A vector hop consumes the whole
        # chain in one iteration (``a_rdst`` holds the landing row);
        # the walked edges bank as one ``a_run`` hit per chain head and
        # expand at transfer time (``_cfg_run_edges``).  Cycle-back and
        # external edges end a chain *before* the row that takes them,
        # so hops never touch region counters.
        a_run_len = self.a_run_len
        a_run_insts = self.a_run_insts
        a_rdst = self.a_rdst
        run_edges: Dict[int, tuple] = {}
        for i in range(n):
            j = base + i
            if a_kind[j] != K_CONST or a_tcode[j] != _O_CFG:
                continue
            steps = 0
            insts = 0
            edges = []
            row = j
            seen = set()
            while (a_kind[row] == K_CONST and a_tcode[row] == _O_CFG
                   and row not in seen and steps < _CFG_RUN_CAP):
                taken = a_pi[row] != 0
                nxt = a_tnext[row] if taken else a_fnext[row]
                cyc = a_tcyc[row] if taken else a_fcyc[row]
                if nxt < 0 or cyc:
                    break
                seen.add(row)
                steps += 1
                insts += int(a_cnt[row])
                edges.append((int(row - base), bool(taken)))
                row = int(nxt)
            if steps:
                a_run_len[j] = steps
                a_run_insts[j] = insts
                a_rdst[j] = row
                run_edges[i] = tuple(edges)
        if run_edges:
            self._cfg_run_edges[tidx] = run_edges

    def link_patched(self, site, table) -> None:
        """``on_link_patch`` hook: mirror a link-slot patch in the arena.

        Called by a lane's dispatch after every install/retire patch.
        A slot mirrors the linked table's arena *entry* position (trace
        or CFG — both are vector-walkable), -1 when unlinked; the site
        resolves through ``_link_cols``' mode scheme — trace tables
        mirror per path position (the site key), CFG records per
        direction column (the site key picks taken vs fall).
        """
        info = self._link_cols.get(id(site.container))
        if info is None:
            return
        mode, base = info
        mirrored = table.arena_entry if table is not None else -1
        if mode == 2:
            column = self.a_ltk if site.key == REC_LINK_TAKEN else self.a_lfl
            column[base] = mirrored
        else:
            column = self.a_ltk if mode == 0 else self.a_lfl
            column[base + site.key] = mirrored

    def fold_table_pending(self, table) -> None:
        """Fold the table's pending vector counts into its region.

        Vector rounds bank cycle-backs, entries, exits and executed
        instructions in per-table counters instead of touching
        ``Region`` objects; this folds the pending counts into the
        region — called before any selector callback or metric read
        can observe it.
        """
        if not self.vectorized:
            return
        tidx = table.arena_tidx
        if tidx < 0:
            return
        region = table.region
        pending = int(self.a_tblcyc[tidx])
        if pending:
            region.cycle_backs += pending
            self.a_tblcyc[tidx] = 0
        pending = int(self.t_ec[tidx])
        if pending:
            region.entry_count += pending
            self.t_ec[tidx] = 0
        pending = int(self.t_xc[tidx])
        if pending:
            region.exit_count += pending
            self.t_xc[tidx] = 0
        pending = int(self.t_insts[tidx])
        if pending:
            region.executed_instructions += pending
            self.t_insts[tidx] = 0

    def transfer_arena(self, table, edge_profile: Dict) -> None:
        """Move the table's arena walked-edge counters into its lists.

        The vector rounds count advances, cycle-backs, static-run hits
        and linked-exit departures in arena columns; at lane finish
        those merge into the table's own ``adv``/``cyc``/``run_hits``
        lists (which the scalar paths increment directly) so
        ``fold_edges`` sees the exact total the fused loop would have
        recorded, and the exit edges fold straight into the lane's
        shared ``edge_profile`` (the exit edge is fully determined by
        the position and direction; dict equality does not see
        insertion order).
        """
        if not self.vectorized:
            return
        base = table.arena_base
        if base < 0:
            return
        np = self._np
        if table.is_trace:
            blocks_seq = table.path
            end = base + table.path_len
            for column, target in (
                (self.a_adv[base:end], table.adv),
                (self.a_cyc[base:end], table.cyc),
                (self.a_run[base:end], table.run_hits),
            ):
                if column.any():
                    for i in np.nonzero(column)[0]:
                        target[int(i)] += int(column[i])
                    column[:] = 0
        else:
            # CFG rows bank every walked edge — internal moves and
            # linked departures alike — in the two direction columns
            # (the walked edge is the same (block, direction-target)
            # pair either way); there are no positional advance/cycle
            # counters to merge.  Constant-run hops bank one ``a_run``
            # hit per chain head instead, expanded here through the
            # chain's recorded edge list.
            blocks_seq = table.block_list
            end = base + len(blocks_seq)
            run_edges = self._cfg_run_edges.get(table.arena_tidx)
            if run_edges:
                column = self.a_run[base:end]
                if column.any():
                    for i in np.nonzero(column)[0]:
                        hits = int(column[i])
                        for row, tk in run_edges[int(i)]:
                            block = blocks_seq[row]
                            edge = (block, block.terminator.taken_target
                                    if tk else block.fallthrough)
                            edge_profile[edge] = (
                                edge_profile.get(edge, 0) + hits)
                    column[:] = 0
        get = edge_profile.get
        column = self.a_xtk[base:end]
        if column.any():
            for i in np.nonzero(column)[0]:
                block = blocks_seq[int(i)]
                edge = (block, block.terminator.taken_target)
                edge_profile[edge] = get(edge, 0) + int(column[i])
            column[:] = 0
        column = self.a_xfl[base:end]
        if column.any():
            for i in np.nonzero(column)[0]:
                block = blocks_seq[int(i)]
                edge = (block, block.fallthrough)
                edge_profile[edge] = get(edge, 0) + int(column[i])
            column[:] = 0

    def lane_done(self, lane: Lane) -> None:
        """Settle a finished lane and refill its slot from the queue.

        Called at the very end of :meth:`Lane._finish` — the lane's
        report and result are built, every banked counter is folded,
        and nothing touches its columns afterwards, so the slot can be
        re-seeded immediately.  Mode-index snapshots taken later in
        the same round pick the fresh lane up for its first scalar
        pass, keeping the vector population wide.
        """
        self.remaining -= 1
        self.settled += 1
        self.active -= 1
        if self.on_settle is not None:
            self.on_settle(lane, None)
        self._release_lane(lane)
        idx = lane.idx
        self.lanes[idx] = None
        if self.queue:
            self._admit(idx, self.queue.popleft())

    def _fail_lane(self, lane: Lane, exc: ReproError) -> None:
        """Contain a lane error (``on_error="continue"``).

        The cell settles as failed — the enriched error reaches
        ``on_settle`` in place of a report — its shared state is
        released (banked counts are discarded, matching the serial
        pipeline, which aborts the cell before reporting), and the
        slot refills so the rest of the fleet streams on.
        """
        exc.with_context(
            benchmark=lane.program.name,
            selector=lane.cell.selector,
            step=lane.cache.now,
        )
        lane.mode = M_DONE
        self.l_mode[lane.idx] = M_DONE
        self.errors += 1
        self.remaining -= 1
        self.settled += 1
        self.active -= 1
        if self.on_settle is not None:
            self.on_settle(lane, exc)
        self._release_lane(lane)
        idx = lane.idx
        self.lanes[idx] = None
        if self.queue:
            self._admit(idx, self.queue.popleft())

    def _release_lane(self, lane: Lane) -> None:
        """Recycle a settled lane's shared-state footprint.

        Branch-model site slots rejoin the free pool (zeroed — 0 is
        every model's idle encoding), the lane's program reference
        drops (streaming runs release idle programs entirely), and on
        the numpy backend every table the lane compiled — resident or
        long evicted — returns its arena span and table index to the
        free lists.  Spans are zeroed here rather than at reuse so a
        recycled span is indistinguishable from fresh storage, and the
        link-mirror entries keyed by container id are removed while
        the containers are still alive — after this the ids may be
        recycled by the allocator without aliasing a mirror cell.
        """
        self._release_program(lane.cell)
        sites = lane.sites
        if sites:
            site = self.site
            for slot in sites:
                site[slot] = 0
            self._site_free.extend(sites)
        if not self.vectorized:
            return
        for table in lane.dispatch.trace_tables:
            self._release_table(table, table.path_len)
        for table in lane.dispatch.cfg_tables:
            self._release_table(table, len(table.block_list))

    def _release_table(self, table, n: int) -> None:
        base = table.arena_base
        if base < 0:
            return
        tidx = table.arena_tidx
        end = base + n
        for name in self._ARENA_I64 + self._ARENA_I8:
            getattr(self, name)[base:end] = 0
        self.a_pf[base:end] = 0.0
        for name in self._TBL_I64:
            getattr(self, name)[tidx] = 0
        for lid in self._tbl_link_ids.pop(tidx, ()):
            self._link_cols.pop(lid, None)
        self._cfg_run_edges.pop(tidx, None)
        self.tables[tidx] = None
        self._tidx_free.append(tidx)
        self._span_free.setdefault(n, []).append(base)
        table.arena_base = -1
        table.arena_tidx = -1
        table.arena_entry = -1

    # -- the run loop ------------------------------------------------------
    def run(self) -> int:
        """Advance every lane to completion; returns the round count.

        An escaping :class:`ReproError` is enriched with the failing
        lane's ``(benchmark, selector, step)`` — the same context the
        serial pipeline attaches in ``Simulator.run`` — so a fleet
        abort is diagnosable like a serial one.  ``step`` is the lane's
        cache clock at failure; both pipelines advance the clock lazily
        (only observers read it), so it can trail the serial context by
        the distance to the last advancement point.
        """
        try:
            return self._run_rounds()
        except ReproError as exc:
            lane = self._err_lane
            if lane is not None:
                exc.with_context(
                    benchmark=lane.program.name,
                    selector=lane.cell.selector,
                    step=lane.cache.now,
                )
            raise

    def _run_rounds(self) -> int:
        quota = self.quota
        lanes = self.lanes
        contain = self.contain_errors
        rounds = 0
        if self.vectorized:
            np = self._np
            while self.remaining:
                rounds += 1
                vec_idx = np.nonzero(self.l_mode == M_VEC)[0]
                # The emptiness check matters when the cutover is 0
                # (forced-vector runs): an all-interp round has no
                # vector lanes to sweep or compact.
                if vec_idx.size and vec_idx.size >= SCALAR_CUTOVER:
                    if (self.compaction and rounds % COMPACT_EVERY == 0
                            and int(vec_idx[-1]) - int(vec_idx[0]) + 1
                            > 2 * vec_idx.size):
                        self._compact()
                    self._vector_round()
                else:
                    # Lanes only ever change their own mode, so a
                    # snapshot of the slot indices stays valid across
                    # the sweep (a settled slot's successor starts in
                    # scalar mode and is picked up below).
                    for li in vec_idx.tolist():
                        lane = lanes[li]
                        self._err_lane = lane
                        try:
                            lane.run_trace_scalar(quota)
                        except ReproError as exc:
                            if not contain:
                                raise
                            self._fail_lane(lane, exc)
                # This snapshot runs *after* the vector round, so lanes
                # admitted while it settled finishers take their first
                # interp pass in the same round — the refill keeps the
                # active set wide with no idle round in between.
                for li in np.nonzero(self.l_mode == M_SCALAR)[0].tolist():
                    lane = lanes[li]
                    self._err_lane = lane
                    try:
                        lane.run_scalar(quota)
                    except ReproError as exc:
                        if not contain:
                            raise
                        self._fail_lane(lane, exc)
        else:
            while self.remaining:
                rounds += 1
                for li in range(len(lanes)):
                    lane = lanes[li]
                    if lane is None:
                        continue
                    try:
                        if lane.mode == M_SCALAR:
                            self._err_lane = lane
                            lane.run_scalar(quota)
                        if lane.mode == M_VEC:
                            self._err_lane = lane
                            lane.run_trace_scalar(quota)
                    except ReproError as exc:
                        if not contain:
                            raise
                        self._fail_lane(lane, exc)
        self.rounds = rounds
        return rounds

    def _compact(self) -> None:
        """Stably re-sort lane slots by mode for dense vector sweeps.

        Long-running divergent fleets fragment: vector-mode lanes end
        up interleaved with interpreting and retired ones, so every
        sweep gathers from a scattered index range.  Re-sorting the
        slots by int-coded mode (scalar, vector, done) restores a dense
        active set.  Lanes are mutually independent and this runs only
        at a round boundary (no pending vector work), so slot order is
        pure scheduling — results are bit-identical either way, which
        the property suite proves by toggling ``compaction``.  Every
        per-lane column moves; the arrays are permuted in place so the
        ``LaneRng`` adapters' ``states`` reference stays valid, and
        each lane's ``idx``/``rng.index`` is re-pointed (the decision
        closures read them dynamically).
        """
        np = self._np
        order = np.argsort(self.l_mode, kind="stable")
        if bool((order == np.arange(order.size)).all()):
            return
        for name in ("l_steps", "l_max", "l_walk", "l_gpos", "l_mode",
                     "l_cinst", "l_trans", "l_depth", "l_dlim",
                     "rng_states"):
            array = getattr(self, name)
            array[:] = array[order]
        if self.stk is not None:
            self.stk[:] = self.stk[order]
        lanes = self.lanes
        # In-place permutation: the run loop holds a reference to this
        # list across rounds.  Settled slots with a drained queue hold
        # None — their mode is M_DONE, so they sort behind every live
        # lane and nothing re-points them.
        lanes[:] = [lanes[int(j)] for j in order]
        for i, lane in enumerate(lanes):
            if lane is None:
                continue
            lane.idx = i
            lane.rng.index = i
        self.compactions += 1

    def interp_spans(self, key: Tuple[str, float], program) -> list:
        """The program's interp span table, memoized across its lanes.

        Keyed by the cell's stable ``(benchmark, scale)`` coordinate —
        streaming runs release programs once no live lane shares them,
        so an ``id(program)`` key could be recycled by the allocator
        and silently serve a dead program's span table.  The memo
        stores the instance it was built from: spans hold that
        instance's block objects, so a rebuilt program (same key, new
        instance) must rebuild its spans too.
        """
        entry = self._interp_spans.get(key)
        if entry is None or entry[0] is not program:
            entry = (program, _build_interp_spans(program))
            self._interp_spans[key] = entry
        return entry[1]

    def _vector_round(self) -> None:
        """Up to ``VEC_ITERS`` lockstep sweeps over trace-walking lanes.

        Each iteration mirrors exactly one pass of the fused loop's
        trace section per active lane: consume the static run at the
        lane's position (or pend its budget-clipped prefix), re-check
        the step budget, evaluate one decision, then apply advances,
        cycle-backs and linked region-to-region transitions in place.
        Lanes whose next action needs Python — budget exhaustion,
        scalar-kind or stack-limit decisions, unlinked exits — leave
        the active set and queue their pending work; the queued
        complement runs once, after the loop, when every vectorized
        write has landed.  A selector callback inside the complement
        may install a region and reallocate the arena, which is why the
        complement must come last: the iteration loop's hoisted arena
        references are valid precisely because nothing reallocates
        before it finishes.
        """
        np = self._np
        l_steps = self.l_steps
        l_max = self.l_max
        l_walk = self.l_walk
        l_gpos = self.l_gpos
        l_depth = self.l_depth
        l_dlim = self.l_dlim
        l_cinst = self.l_cinst
        l_trans = self.l_trans
        rng_states = self.rng_states
        site = self.site
        pat_arena = self.pat_arena
        stk = self.stk
        a_run_len = self.a_run_len
        a_run_insts = self.a_run_insts
        a_rdst = self.a_rdst
        a_run = self.a_run
        a_cnt = self.a_cnt
        a_kind = self.a_kind
        a_tcode = self.a_tcode
        a_fcode = self.a_fcode
        a_pf = self.a_pf
        a_pi = self.a_pi
        a_slot = self.a_slot
        a_pat = self.a_pat
        a_adv = self.a_adv
        a_cyc = self.a_cyc
        a_base = self.a_base
        a_tbl = self.a_tbl
        a_tblcyc = self.a_tblcyc
        a_ltk = self.a_ltk
        a_lfl = self.a_lfl
        a_xtk = self.a_xtk
        a_xfl = self.a_xfl
        a_tnext = self.a_tnext
        a_fnext = self.a_fnext
        a_tcyc = self.a_tcyc
        a_fcyc = self.a_fcyc
        a_cfg = self.a_cfg
        t_ec = self.t_ec
        t_xc = self.t_xc
        t_insts = self.t_insts

        act = np.nonzero(self.l_mode == M_VEC)[0]
        # Pending queues, pre-grouped by the complement handler they
        # need: deferred decisions and unlinked exits split trace vs
        # CFG *at queue time* (one ``a_cfg`` gather per batch), so the
        # complement below runs one homogeneous loop per kind with the
        # per-lane shape dispatch already hoisted out.
        pend_clip: List[int] = []  # lane -> _partial_span
        pend_fin: List[int] = []  # lane -> _finish
        pend_defer_t: List[tuple] = []  # (lane, gpos, steps), trace rows
        pend_defer_c: List[tuple] = []  # (lane, gpos, steps), CFG rows
        pend_exit_t: List[tuple] = []  # (lane, gpos, taken, steps), trace
        pend_exit_c: List[tuple] = []  # (lane, gpos, taken, steps), CFG
        pend_ret: List[tuple] = []  # (lane, gpos, target_id, steps)

        n0 = act.size
        for _ in range(VEC_ITERS):
            # Stop early once most lanes have diverged: a sweep's fixed
            # cost is per iteration, so iterating over a shrunken
            # active set buys little — run the queued complement and
            # let everyone rejoin next round.
            if act.size < SCALAR_CUTOVER or 4 * act.size < n0:
                break
            gp = l_gpos[act]
            span = a_run_len[gp]
            clip = span > (l_max[act] - l_steps[act])
            if clip.any():
                pend_clip.extend(act[clip].tolist())
                keep = ~clip
                act = act[keep]
                gp = gp[keep]
                span = span[keep]
            hop = span > 0
            if hop.any():
                hop_lanes = act[hop]
                hop_pos = gp[hop]
                hop_span = span[hop]
                l_steps[hop_lanes] += hop_span
                l_walk[hop_lanes] += a_run_insts[hop_pos]
                a_run[hop_pos] += 1
                # ``a_rdst`` unifies the two run shapes: trace rows
                # land positionally (j + run_len), CFG rows on their
                # constant chain's precomputed landing row.
                new_pos = a_rdst[hop_pos]
                l_gpos[hop_lanes] = new_pos
                gp[hop] = new_pos

            # Budget re-check between hop and decision (the fused
            # loop's ``while steps < max_steps`` head).
            done = l_steps[act] >= l_max[act]
            if done.any():
                pend_fin.extend(act[done].tolist())
                keep = ~done
                act = act[keep]
                gp = gp[keep]
            if not act.size:
                break

            l_steps[act] += 1
            l_walk[act] += a_cnt[gp]
            kind = a_kind[gp]
            outcome = np.full(act.size, _O_DEFER, dtype=np.int8)
            taken = np.zeros(act.size, dtype=bool)

            # One bincount replaces eight mask.any() reductions: only
            # kinds actually present pay for a mask build + gather.
            kcnt = np.bincount(kind, minlength=8)
            if kcnt[K_CONST]:
                mask = kind == K_CONST
                g = gp[mask]
                outcome[mask] = a_tcode[g]
                taken[mask] = a_pi[g] != 0
            if kcnt[K_BERN]:
                mask = kind == K_BERN
                g = gp[mask]
                draw = vector_random(rng_states, act[mask])
                t = draw < a_pf[g]
                outcome[mask] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mask] = t
            if kcnt[K_LOOP]:
                mask = kind == K_LOOP
                g = gp[mask]
                slots = a_slot[g]
                left = site[slots]
                left = np.where(left == 0, a_pi[g], left) - 1
                t = left > 0
                site[slots] = np.where(t, left, 0)
                outcome[mask] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mask] = t
            if kcnt[K_PERIODIC]:
                mask = kind == K_PERIODIC
                g = gp[mask]
                slots = a_slot[g]
                cursor = site[slots]
                site[slots] = (cursor + 1) % a_pi[g]
                t = pat_arena[a_pat[g] + cursor]
                outcome[mask] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mask] = t
            if kcnt[K_LOOPJ]:
                mask = kind == K_LOOPJ
                mi = np.nonzero(mask)[0]
                g = gp[mi]
                slots = a_slot[g]
                left = site[slots]
                need = left == 0
                if need.any():
                    # Activation start: draw the trip count — one
                    # SplitMix64 word each, ``lo + word % span``.
                    draws = vector_next_u64(rng_states, act[mi[need]])
                    gn = g[need]
                    jspan = a_pat[gn].astype(np.uint64)
                    left[need] = a_pi[gn] + (
                        draws % jspan).astype(np.int64)
                left = left - 1
                t = left > 0
                site[slots] = np.where(t, left, 0)
                outcome[mi] = np.where(t, a_tcode[g], a_fcode[g])
                taken[mi] = t
            if kcnt[K_CALL]:
                mask = kind == K_CALL
                mi = np.nonzero(mask)[0]
                g = gp[mi]
                ln = act[mi]
                d = l_depth[ln]
                ok = d < l_dlim[ln]
                # Overflow lanes stay deferred; the lane's closure
                # raises the canonical error.
                oki = mi[ok]
                if oki.size:
                    lnk = ln[ok]
                    gk = g[ok]
                    stk[lnk, d[ok]] = a_pi[gk]
                    l_depth[lnk] = d[ok] + 1
                    outcome[oki] = a_tcode[gk]
                    taken[oki] = True
            if kcnt[K_RET]:
                mask = kind == K_RET
                mi = np.nonzero(mask)[0]
                g = gp[mi]
                ln = act[mi]
                d = l_depth[ln]
                has = d > 0
                # Empty-stack returns (from main) stay deferred; the
                # lane's closure sees depth 0 and ends the program.
                hi = mi[has]
                if hi.size:
                    gh = g[has]
                    lnh = ln[has]
                    dh = d[has] - 1
                    tgt = stk[lnh, dh].astype(np.int64)
                    l_depth[lnh] = dh
                    adv = tgt == a_pi[gh]
                    cyc = ~adv & (tgt == a_slot[gh])
                    outcome[hi] = np.where(
                        adv, O_ADV, np.where(cyc, O_CYC, _O_RETX))
                    taken[hi] = True
                    retx = ~adv & ~cyc
                    if retx.any():
                        rl = lnh[retx]
                        pend_ret.extend(zip(
                            rl.tolist(), gh[retx].tolist(),
                            tgt[retx].tolist(), l_steps[rl].tolist()))

            ocnt = np.bincount(outcome, minlength=6)
            if ocnt[O_ADV]:
                adv_m = outcome == O_ADV
                g = gp[adv_m]
                a_adv[g] += 1
                l_gpos[act[adv_m]] = g + 1
            if ocnt[O_CYC]:
                cyc_m = outcome == O_CYC
                g = gp[cyc_m]
                a_cyc[g] += 1
                a_tblcyc[a_tbl[g]] += 1
                l_gpos[act[cyc_m]] = a_base[g]
            # O_ADV(0) and O_CYC(1) continue; everything else drops out
            # unless a pass below re-admits it.
            cont = outcome <= O_CYC

            cfg_ext = False
            if ocnt[_O_CFG]:
                cfg_m = outcome == _O_CFG
                # CFG successor pass: internal transfers move to the
                # precomputed per-direction arena position, bank the
                # walked edge (and the entry cycle-back, when flagged);
                # external transfers demote to O_EXIT and fall through
                # to the shared exit pass below — a CFG departure chases
                # links and banks stint counters exactly like a trace's.
                ci = np.nonzero(cfg_m)[0]
                g = gp[cfg_m]
                tk = taken[cfg_m]
                nxt = np.where(tk, a_tnext[g], a_fnext[g])
                internal = nxt >= 0
                if internal.any():
                    gi = g[internal]
                    tki = tk[internal]
                    a_xtk[gi[tki]] += 1
                    a_xfl[gi[~tki]] += 1
                    cyc_flags = np.where(
                        tki, a_tcyc[gi], a_fcyc[gi]).astype(np.int64)
                    a_tblcyc[a_tbl[gi]] += cyc_flags
                    l_gpos[act[ci[internal]]] = nxt[internal]
                    cont[ci[internal]] = True
                external = ~internal
                if external.any():
                    outcome[ci[external]] = O_EXIT
                    cfg_ext = True

            if ocnt[_O_DEFER]:
                defer = outcome == _O_DEFER
                dl = act[defer]
                gd = gp[defer]
                is_cfg = a_cfg[gd] != 0
                if is_cfg.any():
                    cl = dl[is_cfg]
                    pend_defer_c.extend(zip(
                        cl.tolist(), gd[is_cfg].tolist(),
                        l_steps[cl].tolist()))
                    tr = ~is_cfg
                    tl = dl[tr]
                    if tl.size:
                        pend_defer_t.extend(zip(
                            tl.tolist(), gd[tr].tolist(),
                            l_steps[tl].tolist()))
                else:
                    pend_defer_t.extend(zip(
                        dl.tolist(), gd.tolist(), l_steps[dl].tolist()))

            # Fresh scan, not ``ocnt[O_EXIT]`` alone: the CFG pass just
            # rewrote external transfers to O_EXIT in place.
            exit_js = (np.nonzero(outcome == O_EXIT)[0]
                       if ocnt[O_EXIT] or cfg_ext
                       else np.empty(0, dtype=np.int64))
            if exit_js.size:
                # Linked exits — direct region-to-region jumps — stay
                # vectorized: bank the exited stint in the per-table
                # pending counters, count the departure edge, and move
                # the lane to the linked table's arena base.  (All
                # fancy indices here are unique: a lane decides once
                # per iteration and tables are never shared across
                # lanes.)
                ge = gp[exit_js]
                tkn = taken[exit_js]
                link = np.where(tkn, a_ltk[ge], a_lfl[ge])
                linked_m = link >= 0
                if linked_m.any():
                    lg = ge[linked_m]
                    lane_ids = act[exit_js[linked_m]]
                    lb = link[linked_m]
                    t_old = a_tbl[lg]
                    w = l_walk[lane_ids]
                    t_xc[t_old] += 1
                    t_insts[t_old] += w
                    l_cinst[lane_ids] += w
                    l_walk[lane_ids] = 0
                    tk = tkn[linked_m]
                    a_xtk[lg[tk]] += 1
                    a_xfl[lg[~tk]] += 1
                    t_ec[a_tbl[lb]] += 1
                    l_trans[lane_ids] += 1
                    l_gpos[lane_ids] = lb
                    cont[exit_js[linked_m]] = True
                    exit_js = exit_js[~linked_m]
                if exit_js.size:
                    el = act[exit_js]
                    ge2 = gp[exit_js]
                    tke = taken[exit_js]
                    stp = l_steps[el]
                    is_cfg = a_cfg[ge2] != 0
                    if is_cfg.any():
                        pend_exit_c.extend(zip(
                            el[is_cfg].tolist(), ge2[is_cfg].tolist(),
                            tke[is_cfg].tolist(), stp[is_cfg].tolist()))
                        tr = ~is_cfg
                        if tr.any():
                            pend_exit_t.extend(zip(
                                el[tr].tolist(), ge2[tr].tolist(),
                                tke[tr].tolist(), stp[tr].tolist()))
                    else:
                        pend_exit_t.extend(zip(
                            el.tolist(), ge2.tolist(), tke.tolist(),
                            stp.tolist()))
            act = act[cont]

        # Per-lane Python complement (divergent work), after every
        # vectorized write above has landed.  A lane appears at most
        # once across the queues: pending a lane removed it from the
        # active set, so nothing below observes stale column state —
        # and a settling lane's slot can be re-seeded immediately (the
        # fresh lane is in no queue).  Each queue is homogeneous, so
        # the handler dispatch is hoisted out of the per-lane loop; a
        # diverged lane costs one grouped pass per round, not a fully
        # general scalar step.  Order across queues is fixed but
        # inter-lane order is immaterial — lanes are independent.
        lanes = self.lanes
        contain = self.contain_errors
        for li in pend_clip:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._partial_span()
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)
        for li in pend_fin:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._finish()
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)
        for li, gpos, steps in pend_defer_t:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._trace_decide_scalar(gpos, steps)
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)
        for li, gpos, steps in pend_defer_c:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._cfg_decide_scalar(gpos, steps)
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)
        for li, gpos, tk, steps in pend_exit_t:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._trace_exit_vec(gpos, tk, steps)
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)
        for li, gpos, tk, steps in pend_exit_c:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._cfg_exit_vec(gpos, tk, steps)
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)
        for li, gpos, tid, steps in pend_ret:
            lane = lanes[li]
            self._err_lane = lane
            try:
                lane._trace_ret_exit(gpos, tid, steps)
            except ReproError as exc:
                if not contain:
                    raise
                self._fail_lane(lane, exc)


#: Interp-span chain cap: bounds construction cost and keeps a single
#: span application's step count small relative to any step budget.
_SPAN_CAP = 256


def _build_interp_spans(program) -> List[Optional[tuple]]:
    """Constant-decision interp spans, indexed by head block id.

    A span is a maximal chain of *never-taken constant* blocks — plain
    fallthroughs, or conditionals whose model is exactly
    :class:`~repro.behavior.models.NeverTaken` — with a live
    fallthrough target.  Interpreting such a block does fixed work with
    a statically known outcome: record the fallthrough edge, bump the
    interp counters, move on.  Crucially the branch is *not taken*, so
    the interpreter's cache-entry check and selector taken-callbacks
    never run; the only per-step observer is ``observe_interpreted``,
    which the lane gates on selector quiescence before applying a span
    (see ``Lane.run_scalar``).  Taken constants (jumps, always-taken
    conditionals) end a span: their targets are cache-entry candidates,
    which depend on run-time residency.

    Entries are ``(steps, insts, edges, final_block)`` — chain length,
    summed instruction count, the walked ``(block, fallthrough)``
    edges, and the first non-eligible block, where scalar stepping
    resumes.  Chains shorter than 2 stay ``None`` (the scalar step is
    already cheap).  All fields are lane-independent, so one table
    serves every lane of the program.
    """
    blocks = program.blocks
    spans: List[Optional[tuple]] = [None] * len(blocks)

    def eligible(block) -> bool:
        if block.fallthrough is None:
            return False
        term = block.terminator
        kind = term.kind
        if kind is BranchKind.FALLTHROUGH:
            return True
        return kind is BranchKind.COND and type(term.model) is NeverTaken

    for head in blocks:
        if not eligible(head):
            continue
        steps = 0
        insts = 0
        edges = []
        seen = set()
        block = head
        while (eligible(block) and block not in seen
               and steps < _SPAN_CAP):
            seen.add(block)
            nxt = block.fallthrough
            steps += 1
            insts += block.bundle.count
            edges.append((block, nxt))
            block = nxt
        if steps >= 2:
            spans[head.block_id] = (steps, insts, tuple(edges), block)
    return spans
