"""One fleet lane: a grid cell executing inside the batched kernel.

A :class:`Lane` owns everything the serial pipeline builds per run —
program, code cache, selector, dispatch table, call stack, decision
closures, edge profile, run statistics — while the *hot columns* (step
counter, step budget, walk-table program counter, current-stint
instruction count, branch-model site slots, the SplitMix64 state word)
live in the kernel's structure-of-arrays storage, indexed by the
lane's fleet slot.  The kernel advances every lane in trace-walk mode
with vectorized sweeps; this module supplies the scalar complement:

* interpreting and CFG-region walking (:meth:`Lane.run_scalar`), a
  per-lane transcription of the fused loop's interp/CFG sections in
  :meth:`repro.system.simulator.Simulator._run_fused`;
* trace decisions the vector rounds cannot batch — call/return stack
  effects, indirect branches, jittered or unknown branch models
  (:meth:`Lane._trace_decide_scalar`);
* region exits — link-slot chasing, selector callbacks, immediate
  re-entry (:meth:`Lane._leave`), shared by both execution modes.

Every method mirrors the fused loop decision-for-decision: same hook
resolution (``_raw_hook``), same ``cache.now`` advancement points, same
edge-recording order, same counter flush discipline.  The bit-identity
suite in ``tests/test_batch.py`` holds a fleet lane equal to a serial
``simulate`` run for the same cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.batch.backend import (
    K_BERN,
    K_CALL,
    K_LOOP,
    K_LOOPJ,
    K_PERIODIC,
    K_RET,
    LaneRng,
    M_DONE,
    M_SCALAR,
    M_VEC,
)
from repro.behavior.models import Bernoulli, DecisionContext, LoopTrip, Periodic
from repro.cache.codecache import make_cache
from repro.cache.dispatch import DispatchTable
from repro.errors import ExecutionError, SelectionError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import Step
from repro.execution.stack import CallStack
from repro.isa.opcodes import BranchKind
from repro.metrics.summary import MetricReport
from repro.obs.observer import NULL_OBSERVER
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.selection.base import RegionSelector
from repro.selection.net import NETSelector
from repro.selection.registry import make_selector
from repro.system.results import RunResult, RunStats
from repro.system.simulator import _raw_hook


def _never_idle() -> bool:
    """Quiescence predicate for selectors with unknown interp hooks."""
    return False


class LaneDispatch(DispatchTable):
    """Dispatch table that registers walk tables with the kernel arena.

    Compilation (install, or ``table_for`` on a selector-returned
    region) routes through :meth:`compile`; every fresh table — trace
    *and* CFG — is handed to the kernel so its columns join the global
    SoA arena and the vector rounds can walk it.
    """

    def __init__(self, program: Program, decider_for, lane: "Lane") -> None:
        super().__init__(program, decider_for)
        self._lane = lane
        if lane.kernel.vectorized:
            self.on_link_patch = lane.kernel.link_patched

    def compile(self, region):
        table = super().compile(region)
        if table.is_trace:
            self._lane.kernel.register_table(self._lane, table)
        else:
            self._lane.kernel.register_cfg_table(self._lane, table)
        return table

    def retire(self, region):
        # Fold the table's pending vector counts *before* the region
        # loses residency: a bounded cache snapshots region stats at
        # the eviction moment (metrics, ``cache_evicted`` events), and
        # counts folded after that would resurrect the retired region's
        # totals.  Folding zeroes the pending slots, so the fold at
        # lane finish sees nothing to double-count.
        table = self.tables_by_entry[region.entry.block_id]
        if table is not None and table.region is region:
            self._lane.kernel.fold_table_pending(table)
        super().retire(region)


class Lane:
    """One cell's full execution context, advanced by the fleet kernel."""

    __slots__ = (
        "kernel", "idx", "cell", "program", "program_key", "config",
        "max_steps", "cache", "selector", "engine", "stack", "ctx", "rng",
        "deciders", "vec_desc", "dispatch", "tables_by_entry", "sites",
        "stats", "edge_profile", "edge_get",
        "observe_interpreted", "on_cache_enter", "on_interpreted_taken",
        "on_cache_exit", "on_taken_raw", "on_enter_raw",
        "interp_idle", "ispan_hits",
        "block", "region", "cur_table", "cur_base", "cur_end", "trace_pos",
        "cur_records", "cur_blocks", "cur_entry",
        "interp_steps", "interp_insts", "cache_insts",
        "mode", "result", "report",
    )

    def __init__(self, kernel, idx: int, cell, program: Program,
                 config, max_steps: Optional[int]) -> None:
        self.kernel = kernel
        self.idx = idx
        self.cell = cell
        self.program = program
        #: Stable program identity for kernel-side memos — streaming
        #: runs release programs mid-run, so ``id(program)`` may be
        #: recycled but this coordinate never lies.
        self.program_key = (cell.benchmark, cell.scale)
        self.config = config
        #: Kernel site slots this lane allocated — recycled at settle.
        self.sites: List[int] = []

        # The same per-run build the serial Simulator performs, with the
        # null observer (fleet observability happens at batch
        # granularity, not per step).
        self.cache = make_cache(
            config.cache_capacity_bytes, config.cache_eviction_policy
        )
        self.cache.observer = NULL_OBSERVER
        self.cache.bind_program(program)
        self.selector: RegionSelector = make_selector(
            cell.selector, self.cache, config, program
        )
        self.selector.obs = NULL_OBSERVER

        self.engine = ExecutionEngine(program, seed=cell.seed,
                                      max_steps=max_steps)
        self.max_steps = self.engine.max_steps
        # Decision state: the stack and context the engine's closure
        # factory binds, with the RNG swapped for the SoA-backed adapter
        # over this lane's state word (seeded exactly like
        # ``SplitMix64(seed)`` — the kernel wrote ``seed & MASK64``).
        self.stack = CallStack(self.engine.max_call_depth)
        self.rng = LaneRng(kernel.rng_states, idx)
        self.ctx = DecisionContext(rng=self.rng, site_state={}, step=0)

        nblocks = len(program.blocks)
        self.deciders: List[object] = [None] * nblocks
        #: Vector-eligibility descriptor per block id:
        #: ``(kind, pf, pi, slot, pat_base)`` or ``None`` (scalar).
        self.vec_desc: List[Optional[tuple]] = [None] * nblocks
        self.dispatch = LaneDispatch(program, self._decider_for, self)
        self.cache.bind_dispatch(self.dispatch)
        self.tables_by_entry = self.dispatch.tables_by_entry

        self.stats = RunStats()
        self.edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int] = {}
        self.edge_get = self.edge_profile.get

        # Selector hooks, resolved exactly as the fused loop does: the
        # base-class no-ops are skipped entirely, and the raw
        # (allocation-free) variants are used when trustworthy.
        selector = self.selector
        base = RegionSelector
        bound_observe = selector.observe_interpreted
        self.observe_interpreted = (
            None
            if getattr(bound_observe, "__func__", None)
            is base.observe_interpreted
            else bound_observe
        )
        bound_enter = selector.on_cache_enter
        self.on_cache_enter = (
            None
            if getattr(bound_enter, "__func__", None) is base.on_cache_enter
            else bound_enter
        )
        self.on_interpreted_taken = selector.on_interpreted_taken
        self.on_cache_exit = selector.on_cache_exit
        self.on_taken_raw = _raw_hook(selector, "on_interpreted_taken")
        self.on_enter_raw = _raw_hook(selector, "on_cache_enter")

        # Interp span batching (see ``_build_interp_spans``) is legal
        # only while no observer would see the individual steps:
        # ``interp_idle`` is None when the selector has no interpreted
        # hook at all (always idle — the LEI family), a quiescence
        # predicate when the hook is exactly NET's recorder-gated one
        # (idle while nothing records), else a constant False (BOA and
        # other subclasses keep real per-step state).
        if self.observe_interpreted is None:
            self.interp_idle = None
        elif (getattr(self.observe_interpreted, "__func__", None)
                is NETSelector.observe_interpreted):
            self.interp_idle = selector.interp_quiescent
        else:
            self.interp_idle = _never_idle
        #: Applied-span counts by head block id; the walked edges fold
        #: into ``edge_profile`` at finish (order-insensitive sums).
        self.ispan_hits: Dict[int, int] = {}

        self.block: Optional[BasicBlock] = program.entry
        self.region = None
        self.cur_table = None
        self.cur_base = 0
        self.cur_end = 0
        self.trace_pos = 0
        self.cur_records: Dict[BasicBlock, list] = {}
        self.cur_blocks = frozenset()
        self.cur_entry: Optional[BasicBlock] = None

        self.interp_steps = 0
        self.interp_insts = 0
        self.cache_insts = 0

        self.mode = M_SCALAR
        self.result: Optional[RunResult] = None
        self.report: Optional[MetricReport] = None

    # -- decision closures -------------------------------------------------
    def _decider_for(self, block: BasicBlock):
        """Interned per-block decider (shared interp/walk memo)."""
        bid = block.block_id
        decide = self.deciders[bid]
        if decide is None:
            decide = self.deciders[bid] = self._make_decider(block)
        return decide

    def _make_decider(self, block: BasicBlock):
        """Build the block's decider, SoA-backed where vectorizable.

        The stock models the vector rounds can batch — ``Bernoulli``,
        jitter-free ``LoopTrip``, ``Periodic`` — get closures whose
        state lives in kernel storage (the shared RNG column, a site
        slot), so the interpret path and the vector path read and write
        the *same* state.  Everything else (constants, call/return
        stack effects, indirect branches, jittered/unknown models)
        delegates to the engine's own closure factory, bound to this
        lane's stack and SoA-backed context; those positions evaluate
        scalar in every execution mode, so closure-cell state is safe.
        Exact-type checks only, mirroring ``ExecutionEngine._decider_for``.
        """
        term = block.terminator
        kernel = self.kernel
        if term.kind is BranchKind.COND:
            model = term.model
            model_type = type(model)
            taken_result = (True, term.taken_target)
            fall_result = (False, block.fallthrough)
            if model_type is Bernoulli:
                p = model.probability
                self.vec_desc[block.block_id] = (K_BERN, p, 0, -1, -1)

                def decide_bernoulli(step, _random=self.rng.random, _p=p,
                                     _taken=taken_result, _fall=fall_result):
                    return _taken if _random() < _p else _fall

                return decide_bernoulli
            if model_type is LoopTrip and model.jitter == 0:
                trips = model.trips
                slot = kernel.alloc_site()
                self.sites.append(slot)
                self.vec_desc[block.block_id] = (K_LOOP, 0.0, trips, slot, -1)

                # Slot value 0 encodes the reference's "between
                # activations" None state; live countdowns are 1..trips-1.
                def decide_loop(step, _k=kernel, _slot=slot, _trips=trips,
                                _taken=taken_result, _fall=fall_result):
                    site = _k.site
                    remaining = site[_slot]
                    if remaining == 0:
                        remaining = _trips
                    remaining -= 1
                    if remaining <= 0:
                        site[_slot] = 0
                        return _fall
                    site[_slot] = remaining
                    return _taken

                return decide_loop
            if model_type is LoopTrip:
                # Jittered: the trip count is drawn per activation —
                # ``randint`` is one SplitMix64 word plus a modulo, so
                # the vector rounds draw it batched (K_LOOPJ) and this
                # closure draws it scalar, both from the lane's shared
                # state word.  Same 0-as-None slot encoding as above.
                lo = model.trips - model.jitter
                hi = model.trips + model.jitter
                slot = kernel.alloc_site()
                self.sites.append(slot)
                self.vec_desc[block.block_id] = (
                    K_LOOPJ, 0.0, lo, slot, hi - lo + 1
                )

                def decide_loop_jitter(step, _k=kernel, _slot=slot,
                                       _randint=self.rng.randint,
                                       _lo=lo, _hi=hi,
                                       _taken=taken_result,
                                       _fall=fall_result):
                    site = _k.site
                    remaining = site[_slot]
                    if remaining == 0:
                        remaining = _randint(_lo, _hi)
                    remaining -= 1
                    if remaining <= 0:
                        site[_slot] = 0
                        return _fall
                    site[_slot] = remaining
                    return _taken

                return decide_loop_jitter
            if model_type is Periodic:
                pattern = tuple(bool(x) for x in model.pattern)
                n = len(pattern)
                slot = kernel.alloc_site()
                self.sites.append(slot)
                pat_base = kernel.alloc_pattern(pattern)
                self.vec_desc[block.block_id] = (
                    K_PERIODIC, 0.0, n, slot, pat_base
                )

                def decide_periodic(step, _k=kernel, _slot=slot,
                                    _pattern=pattern, _n=n,
                                    _taken=taken_result, _fall=fall_result):
                    site = _k.site
                    cursor = site[_slot]
                    site[_slot] = (cursor + 1) % _n
                    return _taken if _pattern[cursor] else _fall

                return decide_periodic
        if kernel.vectorized:
            # Call/return stack effects vectorize too: the pushed
            # return site is a per-position constant (its block id goes
            # in the SoA stack), and a pop is an id compare against the
            # next path position.  These closures are the scalar
            # complement over the same kernel columns — the stack never
            # forks between execution modes.  The lane's ``CallStack``
            # stays empty; only its canonical overflow error survives.
            if term.kind is BranchKind.CALL:
                site_block = block.fallthrough
                assert site_block is not None
                result = (True, term.taken_target)
                kernel.ensure_stack(self.engine.max_call_depth)
                self.vec_desc[block.block_id] = (
                    K_CALL, 0.0, site_block.block_id, -1, -1
                )

                # The lane's slot can move under compaction, so the
                # closure reads ``idx`` through the lane each call
                # instead of capturing its current value.
                def decide_call(step, _k=kernel, _lane=self,
                                _limit=self.engine.max_call_depth,
                                _pid=site_block.block_id, _r=result):
                    i = _lane.idx
                    depth = _k.l_depth.item(i)
                    if depth >= _limit:
                        raise ExecutionError(
                            f"call stack overflow (depth {_limit}); "
                            "does a recursive workload lack a base case?"
                        )
                    _k.stk[i, depth] = _pid
                    _k.l_depth[i] = depth + 1
                    return _r

                return decide_call
            if term.kind is BranchKind.RETURN:
                kernel.ensure_stack(self.engine.max_call_depth)
                self.vec_desc[block.block_id] = (K_RET, 0.0, 0, -1, -1)
                blocks = self.dispatch.interner.blocks

                def decide_ret(step, _k=kernel, _lane=self,
                               _blocks=blocks):
                    i = _lane.idx
                    depth = _k.l_depth.item(i)
                    if depth == 0:
                        # Returning from main: target None ends the
                        # program (CallStack.pop's contract).
                        return (True, None)
                    _k.l_depth[i] = depth - 1
                    return (True, _blocks[_k.stk.item(i, depth - 1)])

                return decide_ret
        return self.engine._decider_for(block, self.stack, self.ctx)

    # -- scalar stepping (interpreting / CFG walk) -------------------------
    def run_scalar(self, quota: int) -> None:
        """Advance up to ``quota`` interp/CFG steps (one kernel round).

        One tight loop over both scalar contexts — interpreting and
        CFG-region walking — transcribed from the fused reference
        loop's interp and CFG sections, with the hot counters held in
        locals and flushed to the kernel arrays only at region
        transitions and round boundaries (per-step array indexing is
        what the SoA layout exists to avoid).
        """
        kernel = self.kernel
        i = self.idx
        max_steps = self.max_steps
        steps = int(kernel.l_steps[i])
        walk = int(kernel.l_walk[i])
        block = self.block
        region = self.region
        deciders = self.deciders
        tables_by_entry = self.tables_by_entry
        edge_profile = self.edge_profile
        edge_get = self.edge_get
        cache = self.cache
        cur_records = self.cur_records
        cur_blocks = self.cur_blocks
        cur_entry = self.cur_entry
        interp_steps = self.interp_steps
        interp_insts = self.interp_insts
        observe_interpreted = self.observe_interpreted
        on_cache_enter = self.on_cache_enter
        on_interpreted_taken = self.on_interpreted_taken
        on_taken_raw = self.on_taken_raw
        on_enter_raw = self.on_enter_raw
        dispatch = self.dispatch
        interp_spans = kernel.interp_spans(self.program_key, self.program)
        interp_idle = self.interp_idle
        ispan_hits = self.ispan_hits

        while quota > 0:
            quota -= 1
            if block is None or steps >= max_steps:
                kernel.l_steps[i] = steps
                kernel.l_walk[i] = walk
                self.block = block
                self.interp_steps = interp_steps
                self.interp_insts = interp_insts
                self._finish()
                return

            if region is None:
                # ---- constant-decision span (batched interp) ------------
                span = interp_spans[block.block_id]
                if span is not None and (interp_idle is None
                                         or interp_idle()):
                    span_steps = span[0]
                    if steps + span_steps <= max_steps:
                        # Never-taken constants: no cache-entry check,
                        # no taken-callbacks, and the interpreted-step
                        # observer is absent or provably idle — the
                        # whole chain advances as one bookkeeping
                        # update.  The walked edges bank by span head
                        # and fold at finish; the clock lands exactly
                        # where stepping would have left it.
                        steps += span_steps
                        interp_steps += span_steps
                        interp_insts += span[1]
                        head_id = block.block_id
                        ispan_hits[head_id] = (
                            ispan_hits.get(head_id, 0) + 1
                        )
                        if observe_interpreted is not None:
                            cache.now = steps
                        block = span[3]
                        continue
                # ---- one interpreted step -------------------------------
                steps += 1
                decide = deciders[block.block_id]
                if decide is None:
                    decide = deciders[block.block_id] = (
                        self._make_decider(block)
                    )
                if decide.__class__ is tuple:
                    taken, target = decide
                else:
                    taken, target = decide(steps)
                count = block.bundle.count

                if target is not None:
                    edge = (block, target)
                    prior = edge_get(edge)
                    edge_profile[edge] = 1 if prior is None else prior + 1
                if observe_interpreted is not None:
                    cache.now = steps
                    step = Step(block, taken, target)
                    observe_interpreted(step)
                else:
                    step = None
                interp_steps += 1
                interp_insts += count
                if taken and target is not None:
                    cache.now = steps
                    entered_table = tables_by_entry[target.block_id]
                    if entered_table is not None:
                        if on_enter_raw is not None and step is None:
                            on_enter_raw(block, taken, target)
                        elif on_cache_enter is not None:
                            if step is None:
                                step = Step(block, taken, target)
                            on_cache_enter(step)
                    else:
                        if on_taken_raw is not None and step is None:
                            entered = on_taken_raw(block, taken, target)
                        else:
                            if step is None:
                                step = Step(block, taken, target)
                            entered = on_interpreted_taken(step)
                        if entered is not None:
                            if entered.entry is not target:
                                raise SelectionError(
                                    f"selector {self.selector.name} "
                                    f"returned a region entered at "
                                    f"{entered.entry.full_label} for a "
                                    f"branch to {target.full_label}"
                                )
                            entered_table = dispatch.table_for(entered)
                    if entered_table is not None:
                        kernel.l_steps[i] = steps
                        kernel.l_walk[i] = walk
                        self.interp_steps = interp_steps
                        self.interp_insts = interp_insts
                        self._enter_table(entered_table, transition=False)
                        self.block = target
                        if self.mode != M_SCALAR:
                            return
                        # CFG region: reload the walk context and stay
                        # in this loop.
                        walk = 0
                        region = self.region
                        cur_records = self.cur_records
                        cur_blocks = self.cur_blocks
                        cur_entry = self.cur_entry
                block = target
                continue

            # ---- one CFG-region walk step -------------------------------
            rec = cur_records[block]
            steps += 1
            decide = rec[0]  # REC_DECIDE
            if decide.__class__ is tuple:
                taken, target = decide
            else:
                taken, target = decide(steps)
            walk += rec[1]  # REC_COUNT
            if target is not None and (
                    (target in rec[2])  # REC_STAY
                    if taken else (target in cur_blocks)):
                edge = (block, target)
                prior = edge_get(edge)
                edge_profile[edge] = 1 if prior is None else prior + 1
                if target is cur_entry:
                    region.cycle_backs += 1
                block = target
                continue
            # The transfer leaves the region.
            if rec[7]:  # REC_DYNAMIC
                linked = (tables_by_entry[target.block_id]
                          if target is not None else None)
            elif taken:
                linked = rec[5]  # REC_LINK_TAKEN
            else:
                linked = rec[6]  # REC_LINK_FALL
            kernel.l_steps[i] = steps
            kernel.l_walk[i] = walk
            self.block = block
            self._leave(block, taken, target, linked, steps)
            block = self.block
            if self.mode != M_SCALAR:
                self.interp_steps = interp_steps
                self.interp_insts = interp_insts
                return
            walk = int(kernel.l_walk[i])
            region = self.region
            if region is not None:
                cur_records = self.cur_records
                cur_blocks = self.cur_blocks
                cur_entry = self.cur_entry

        kernel.l_steps[i] = steps
        kernel.l_walk[i] = walk
        self.block = block
        self.interp_steps = interp_steps
        self.interp_insts = interp_insts

    # -- trace walking: scalar complement of the vector rounds -------------
    def _sync_vec(self, gpos: int):
        """Derive the lane's current table from its arena position.

        Vectorized linked transitions move a lane between tables
        without touching the lane object; any Python touchpoint on a
        trace-walking lane re-derives ``cur_table``/``cur_base``/
        ``region`` from ``a_tbl[gpos]`` first.
        """
        if self.cur_base <= gpos < self.cur_end:
            return self.cur_table
        kernel = self.kernel
        table = kernel.tables[int(kernel.a_tbl[gpos])]
        if table is not self.cur_table:
            self.cur_table = table
            self.region = table.region
        self.cur_base = table.arena_base
        self.cur_end = self.cur_base + (
            table.path_len if table.is_trace else len(table.block_list))
        return table

    def _trace_decide_scalar(self, gpos: int, steps: int) -> None:
        """One scalar-kind trace decision (numpy backend).

        The vector round has already charged the step and the position's
        instruction count; this evaluates the lane's own closure (stack
        effects, indirect targets, unknown models consume RNG here) and
        applies the outcome exactly as the fused loop's trace section.
        """
        table = self._sync_vec(gpos)
        pos = gpos - self.cur_base
        kernel = self.kernel
        decide = table.deciders[pos]
        if decide.__class__ is tuple:
            taken, target = decide
        else:
            taken, target = decide(steps)
        next_position = pos + 1
        if next_position < table.path_len and target is table.path[next_position]:
            table.adv[pos] += 1
            kernel.l_gpos[self.idx] = gpos + 1
            self.block = target
            return
        if taken and target is table.path0:
            table.cyc[pos] += 1
            self.region.cycle_backs += 1
            kernel.l_gpos[self.idx] = self.cur_base
            self.block = target
            return
        self._trace_leave(table, pos, taken, target, steps)

    def _cfg_decide_scalar(self, gpos: int, steps: int) -> None:
        """One scalar-kind CFG decision (numpy backend).

        The CFG counterpart of :meth:`_trace_decide_scalar` — dynamic
        targets, RETURN pops and unknown models evaluate the lane's own
        closure here, then apply the reference walker's stays-internal
        check verbatim (observed-edge set for dynamic blocks, the block
        set otherwise).  Internal moves record their edge directly (the
        vector pass banks them by arena row instead; the profile is an
        order-insensitive sum either way).
        """
        table = self._sync_vec(gpos)
        pos = gpos - self.cur_base
        block = table.block_list[pos]
        rec = table.records[block]
        decide = rec[0]  # REC_DECIDE
        if decide.__class__ is tuple:
            taken, target = decide
        else:
            taken, target = decide(steps)
        if target is not None and (
                (target in rec[2])  # REC_STAY
                if taken else (target in table.blocks)):
            edge = (block, target)
            prior = self.edge_get(edge)
            self.edge_profile[edge] = 1 if prior is None else prior + 1
            if target is table.entry:
                self.region.cycle_backs += 1
            self.kernel.l_gpos[self.idx] = (
                self.cur_base + table.index_of[target]
            )
            self.block = target
            return
        self._cfg_leave(table, block, rec, taken, target, steps)

    def _cfg_leave(self, table, block, rec, taken: bool, target,
                   steps: int) -> None:
        """Resolve a CFG exit's link slot and leave the region."""
        if rec[7]:  # REC_DYNAMIC
            linked = (self.tables_by_entry[target.block_id]
                      if target is not None else None)
        elif taken:
            linked = rec[5]  # REC_LINK_TAKEN
        else:
            linked = rec[6]  # REC_LINK_FALL
        self._leave(block, taken, target, linked, steps)

    def _trace_exit_vec(self, gpos: int, taken: bool, steps: int) -> None:
        """Apply a vector-evaluated decision that leaves the region.

        The decision itself (and any RNG consumption) already happened
        in the vector round; only the branch *direction* is needed to
        recover the target — never re-evaluate the closure.  Only
        *unlinked* exits land here (the round takes linked ones
        vectorized), so a selector callback follows in ``_leave``.
        CFG rows take the parallel :meth:`_cfg_exit_vec` path (the
        kernel pre-splits the pend queue by row shape).
        """
        table = self._sync_vec(gpos)
        pos = gpos - self.cur_base
        decide = table.deciders[pos]
        if decide.__class__ is tuple:
            taken, target = decide
        else:
            block = table.path[pos]
            target = (block.terminator.taken_target if taken
                      else block.fallthrough)
        self._trace_leave(table, pos, taken, target, steps)

    def _cfg_exit_vec(self, gpos: int, taken: bool, steps: int) -> None:
        """Apply a vector-evaluated CFG decision that leaves the region.

        The round demotes a CFG row's external transfer to the shared
        exit outcome; vector-walkable CFG kinds are never dynamic, so
        the branch direction recovers the target without re-evaluating
        the closure.
        """
        table = self._sync_vec(gpos)
        pos = gpos - self.cur_base
        block = table.block_list[pos]
        target = (block.terminator.taken_target if taken
                  else block.fallthrough)
        self._cfg_leave(table, block, table.records[block], taken,
                        target, steps)

    def _trace_ret_exit(self, gpos: int, target_id: int, steps: int) -> None:
        """Apply a vector-evaluated RETURN that leaves the region.

        The vector round already popped the SoA stack; the popped
        return site arrives as a block id (a RETURN's target is
        dynamic — it cannot be recomputed from the terminator).
        """
        table = self._sync_vec(gpos)
        pos = gpos - self.cur_base
        target = self.dispatch.interner.blocks[target_id]
        self._trace_leave(table, pos, True, target, steps)

    def _trace_leave(self, table, pos: int, taken: bool, target, steps: int
                     ) -> None:
        """Resolve a trace exit's link slot and leave the region."""
        if target is None:
            linked = None
        elif table.dyn_exit[pos]:
            linked = self.tables_by_entry[target.block_id]
        elif taken:
            linked = table.link_taken[pos]
        else:
            linked = table.link_fall[pos]
        self._leave(table.path[pos], taken, target, linked, steps)

    def run_trace_scalar(self, quota: int) -> None:
        """Walk trace and CFG tables per lane, in Python.

        The fused loop's cache sections verbatim — static-run hops, one
        decision per iteration, and *inline* linked region-to-region
        transitions — bounded by ``quota`` decisions per kernel round.
        This is the python backend's only trace walker, and the numpy
        backend's straggler path: when too few lanes remain in vector
        mode for a vector round to pay for itself, the kernel steps
        them here at fused-loop speed.  The hot counters live in locals
        across region transitions (a linked jump costs a table-local
        rebind, exactly like the reference loop — not a kernel round
        trip); they flush to the kernel columns only at the round
        boundary, at unlinked exits (selector callbacks may install or
        evict), and at lane retirement.
        """
        kernel = self.kernel
        i = self.idx
        vectorized = kernel.vectorized
        if vectorized:
            gpos = int(kernel.l_gpos[i])
            table = self._sync_vec(gpos)
            pos = gpos - self.cur_base
        else:
            table = self.cur_table
            pos = self.trace_pos
        region = self.region
        steps = int(kernel.l_steps[i])
        walk = int(kernel.l_walk[i])
        max_steps = self.max_steps
        stats = self.stats
        edge_profile = self.edge_profile
        edge_get = self.edge_get
        tables_by_entry = self.tables_by_entry
        block = self.block
        while True:
            if not table.is_trace and not vectorized:
                # The python backend walks CFG regions in scalar mode
                # (run_scalar's CFG section): an inline transition that
                # lands on a CFG table hands the lane over.
                self.cur_records = table.records
                self.cur_blocks = table.blocks
                self.cur_entry = table.entry
                self._set_mode(M_SCALAR)
                break
            left = False
            taken = False
            target = None
            if table.is_trace:
                path = table.path
                path_len = table.path_len
                path0 = table.path0
                deciders = table.deciders
                counts = table.counts
                run_len = table.run_len
                run_insts = table.run_insts
                run_hits = table.run_hits
                adv = table.adv
                cyc = table.cyc
                while quota > 0:
                    quota -= 1
                    if steps >= max_steps:
                        break
                    span = run_len[pos]
                    if span:
                        remaining = max_steps - steps
                        if span <= remaining:
                            batch_insts = run_insts[pos]
                            run_hits[pos] += 1
                        else:
                            span = remaining
                            batch_insts = 0
                            for j in range(pos, pos + span):
                                batch_insts += counts[j]
                                adv[j] += 1
                        steps += span
                        walk += batch_insts
                        pos += span
                        continue
                    steps += 1
                    decide = deciders[pos]
                    if decide.__class__ is tuple:
                        taken, target = decide
                    else:
                        taken, target = decide(steps)
                    walk += counts[pos]
                    next_position = pos + 1
                    if (next_position < path_len
                            and target is path[next_position]):
                        adv[pos] += 1
                        pos = next_position
                        continue
                    if taken and target is path0:
                        cyc[pos] += 1
                        region.cycle_backs += 1
                        pos = 0
                        continue
                    left = True
                    break
                block = path[pos]
                if not left:
                    break
                if target is None:
                    linked = None
                elif table.dyn_exit[pos]:
                    linked = tables_by_entry[target.block_id]
                elif taken:
                    linked = table.link_taken[pos]
                else:
                    linked = table.link_fall[pos]
            else:
                records = table.records
                blocks = table.blocks
                entry = table.entry
                block = table.block_list[pos]
                rec = None
                while quota > 0:
                    quota -= 1
                    if steps >= max_steps:
                        break
                    rec = records[block]
                    steps += 1
                    decide = rec[0]  # REC_DECIDE
                    if decide.__class__ is tuple:
                        taken, target = decide
                    else:
                        taken, target = decide(steps)
                    walk += rec[1]  # REC_COUNT
                    if target is not None and (
                            (target in rec[2])  # REC_STAY
                            if taken else (target in blocks)):
                        edge = (block, target)
                        prior = edge_get(edge)
                        edge_profile[edge] = (
                            1 if prior is None else prior + 1)
                        if target is entry:
                            region.cycle_backs += 1
                        block = target
                        continue
                    left = True
                    break
                pos = table.index_of[block]
                if not left:
                    break
                if rec[7]:  # REC_DYNAMIC
                    linked = (tables_by_entry[target.block_id]
                              if target is not None else None)
                elif taken:
                    linked = rec[5]  # REC_LINK_TAKEN
                else:
                    linked = rec[6]  # REC_LINK_FALL

            if linked is not None:
                # Linked exit stub, inline: the fused loop's direct
                # region-to-region jump.  Nothing can observe the
                # departed region here (selector callbacks only run at
                # unlinked exits, and eviction folds pending counts in
                # ``LaneDispatch.retire``), so banked vector counts
                # need no fold on this path.
                edge = (block, target)
                prior = edge_get(edge)
                edge_profile[edge] = 1 if prior is None else prior + 1
                region.exit_count += 1
                region.executed_instructions += walk
                self.cache_insts += walk
                walk = 0
                stats.region_transitions += 1
                region = linked.region
                self.region = region
                self.cur_table = linked
                region.entry_count += 1
                pos = 0 if linked.is_trace else linked.entry_pos
                if vectorized:
                    self.cur_base = linked.arena_base
                    self.cur_end = self.cur_base + (
                        linked.path_len if linked.is_trace
                        else len(linked.block_list))
                table = linked
                block = target
                continue
            # Unlinked exit (or program end): flush and take the shared
            # slow path — selector callbacks may install or evict.
            kernel.l_steps[i] = steps
            kernel.l_walk[i] = walk
            if vectorized:
                kernel.l_gpos[i] = self.cur_base + pos
            else:
                self.trace_pos = pos
            self.block = block
            self._leave(block, taken, target, None, steps)
            if self.mode != M_VEC:
                return
            # (LEI) immediate re-entry into a fresh region: rebind and
            # keep walking the remaining quota.
            region = self.region
            table = self.cur_table
            walk = 0
            block = self.block
            if vectorized:
                pos = int(kernel.l_gpos[i]) - self.cur_base
            else:
                pos = self.trace_pos
            if quota <= 0:
                break

        kernel.l_steps[i] = steps
        kernel.l_walk[i] = walk
        if vectorized:
            kernel.l_gpos[i] = self.cur_base + pos
        else:
            self.trace_pos = pos
        self.block = block
        if steps >= max_steps:
            self._finish()

    def _partial_span(self) -> None:
        """Consume a budget-clipped static run, then retire (numpy).

        The step budget ends inside the span: consume only what fits,
        recording the walked edges position by position — the fused
        loop's clamp path.
        """
        kernel = self.kernel
        i = self.idx
        gpos = int(kernel.l_gpos[i])
        table = self._sync_vec(gpos)
        steps = int(kernel.l_steps[i])
        span = self.max_steps - steps
        pos = gpos - self.cur_base
        if table.is_trace:
            counts = table.counts
            adv = table.adv
            batch_insts = 0
            for j in range(pos, pos + span):
                batch_insts += counts[j]
                adv[j] += 1
            kernel.l_steps[i] = steps + span
            kernel.l_walk[i] += batch_insts
            kernel.l_gpos[i] += span
            self.block = table.path[pos + span]
            self._finish()
            return
        # CFG constant-run clip: replay the chain step by step.  Chain
        # edges are constant-decided, internal and non-cycling by
        # construction, so only walked edges and instruction counts
        # accrue — no region counters, no cycle checks.
        records = table.records
        block = table.block_list[pos]
        edge_profile = self.edge_profile
        edge_get = self.edge_get
        walk = 0
        for _ in range(span):
            rec = records[block]
            taken, target = rec[0]
            walk += rec[1]
            edge = (block, target)
            prior = edge_get(edge)
            edge_profile[edge] = 1 if prior is None else prior + 1
            block = target
        kernel.l_steps[i] = steps + span
        kernel.l_walk[i] += walk
        kernel.l_gpos[i] = self.cur_base + table.index_of[block]
        self.block = block
        self._finish()

    # -- region transitions ------------------------------------------------
    def _leave(self, block: BasicBlock, taken: bool, target,
               linked_table, steps: int) -> None:
        """The fused loop's 'transfer leaves the region' section."""
        kernel = self.kernel
        i = self.idx
        region = self.region
        if self.cur_table is not None:
            # Vector rounds bank region-counter updates per table; the
            # counts must be exact before any selector callback can
            # observe the region.
            kernel.fold_table_pending(self.cur_table)
        if target is not None:
            edge = (block, target)
            prior = self.edge_get(edge)
            self.edge_profile[edge] = 1 if prior is None else prior + 1
        region.exit_count += 1
        walk = int(kernel.l_walk[i])
        region.executed_instructions += walk
        self.cache_insts += walk
        kernel.l_walk[i] = 0
        if target is None:
            self.region = None
            self.cur_table = None
            self.cur_end = 0
            self.block = None
            self._set_mode(M_SCALAR)
            return
        if linked_table is not None:
            # A linked exit stub: direct region-to-region jump.
            self.stats.region_transitions += 1
            self._enter_table(linked_table, transition=True)
            self.block = target
            return
        # Exit to the interpreter; the exit target becomes a start
        # candidate, and (LEI) may complete a cycle that installs and
        # immediately enters a new region.
        self.stats.cache_exits += 1
        exited_region = region
        self.region = None
        self.cur_table = None
        self.cur_end = 0
        self.cache.now = steps
        step = Step(block, taken, target)
        self.on_cache_exit(step, exited_region)
        installed_table = self.tables_by_entry[target.block_id]
        if installed_table is not None:
            self._enter_table(installed_table, transition=False)
        else:
            self._set_mode(M_SCALAR)
        self.block = target

    def _enter_table(self, table, transition: bool) -> None:
        """Enter a walk table (interp entry, linked jump, or re-entry)."""
        kernel = self.kernel
        i = self.idx
        region = table.region
        self.region = region
        self.cur_table = table
        region.entry_count += 1
        if not transition:
            self.stats.cache_entries += 1
            kernel.l_walk[i] = 0
        if table.is_trace:
            if kernel.vectorized:
                self.cur_base = table.arena_base
                self.cur_end = self.cur_base + table.path_len
                kernel.l_gpos[i] = self.cur_base
            else:
                self.trace_pos = 0
            self._set_mode(M_VEC)
        elif kernel.vectorized:
            # CFG regions walk vectorized too: enter at the entry
            # block's arena row and join the next vector round.
            self.cur_base = table.arena_base
            self.cur_end = self.cur_base + len(table.block_list)
            kernel.l_gpos[i] = table.arena_entry
            self._set_mode(M_VEC)
        else:
            self.cur_records = table.records
            self.cur_blocks = table.blocks
            self.cur_entry = table.entry
            self._set_mode(M_SCALAR)

    def _set_mode(self, mode: int) -> None:
        self.mode = mode
        self.kernel.l_mode[self.idx] = mode

    # -- finalization ------------------------------------------------------
    def _finish(self) -> None:
        """Retire the lane: flush counters, fold edges, build the result.

        Mirrors the fused loop's ``finally`` block, then the shared
        ``_execute`` tail (edge folding, ``selector.finish``,
        diagnostics, :class:`RunResult` assembly).
        """
        if self.mode == M_DONE:
            return
        kernel = self.kernel
        i = self.idx
        if self.mode == M_VEC and kernel.vectorized:
            # Vectorized linked transitions may have moved the lane
            # between tables since the last touchpoint.
            self._sync_vec(int(kernel.l_gpos[i]))
        self._set_mode(M_DONE)
        steps = int(kernel.l_steps[i])
        walk = int(kernel.l_walk[i])
        if self.region is not None:
            self.region.executed_instructions += walk
        self.cache_insts += walk
        kernel.l_walk[i] = 0
        if kernel.vectorized:
            self.cache_insts += int(kernel.l_cinst[i])
            kernel.l_cinst[i] = 0
            self.stats.region_transitions += int(kernel.l_trans[i])
            kernel.l_trans[i] = 0
        stats = self.stats
        stats.interp_steps = self.interp_steps
        stats.interp_instructions = self.interp_insts
        stats.cache_steps = steps - self.interp_steps
        stats.cache_instructions = self.cache_insts
        self.cache.now = steps
        self.engine.steps_executed = steps
        self.engine.instructions_executed = self.interp_insts + self.cache_insts
        self.cache.unbind_dispatch()
        # Fold the position-batched trace-walk edges (arena counts
        # first, then each table's own lists) into the shared profile —
        # covers every table compiled this run, including tables of
        # regions evicted mid-run.
        for table in self.dispatch.trace_tables:
            kernel.fold_table_pending(table)
            kernel.transfer_arena(table, self.edge_profile)
            table.fold_edges(self.edge_profile)
        for table in self.dispatch.cfg_tables:
            kernel.fold_table_pending(table)
            kernel.transfer_arena(table, self.edge_profile)
        if self.ispan_hits:
            # Interp spans banked their walked edges by head block;
            # replay each span's edge list, weighted by its hit count.
            spans = kernel.interp_spans(self.program_key, self.program)
            edge_profile = self.edge_profile
            edge_get = self.edge_get
            for head_id, hits in self.ispan_hits.items():
                for edge in spans[head_id][2]:
                    prior = edge_get(edge)
                    edge_profile[edge] = (
                        hits if prior is None else prior + hits
                    )
        self.selector.finish()
        diagnostics = getattr(self.selector, "diagnostics", lambda: {})()
        self.result = RunResult(
            program_name=self.program.name,
            selector_name=self.cell.selector,
            stats=stats,
            cache=self.cache,
            edge_profile=self.edge_profile,
            peak_counters=self.selector.peak_counters,
            peak_observed_trace_bytes=(
                self.selector.peak_observed_trace_bytes
            ),
            selector_diagnostics=diagnostics,
            stub_bytes=self.config.stub_bytes,
            samples=[],
            icache=None,
            metrics={},
        )
        self.report = MetricReport.from_result(self.result)
        kernel.lane_done(self)
