"""Fleet assembly: run many grid cells as one batched kernel pass.

:func:`run_fleet` is the public face of :mod:`repro.batch`: hand it a
list of :class:`BatchCell` coordinates (benchmark, selector, scale,
seed) and it executes them all inside one :class:`FleetKernel`,
returning per-cell :class:`~repro.metrics.summary.MetricReport` and
:class:`~repro.system.results.RunResult` objects that are
**bit-identical** to what the serial pipeline produces for the same
coordinates.  Lanes never interact — every lane has its own cache,
selector, RNG stream and edge profile — so any partition of a cell
list into fleets yields the same per-cell results (the hypothesis
property in ``tests/test_batch_properties.py``), and so does any
admission schedule: ``max_lanes`` bounds the number of *live* lanes,
the kernel streams the remaining cells from a queue into slots as
lanes settle, and per-cell results are independent of queue order,
``max_lanes`` and refill timing.

Programs are shared: cells with the same ``(benchmark, scale)`` walk
one immutable :class:`~repro.program.program.Program` instance (blocks
are read-only during simulation; all mutable per-run state lives in
the lane).  Streaming runs build programs lazily and release them once
no live lane shares them, so memory tracks the active set.  Benchmark
names accept the same ``micro:`` prefix as the bench harness, building
a motif program instead of a SPEC model.

Observability happens at batch granularity — ``fleet_started``, one
``fleet_refill`` per queue admission, one ``fleet_lane_finished`` per
cell, ``fleet_finished`` — matching the job-engine convention that
fleet-level events carry step 0 and order by their ``ts``/``seq``
stamps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.batch.backend import get_backend
from repro.batch.kernel import DEFAULT_QUOTA, FleetKernel
from repro.config import SystemConfig
from repro.errors import ConfigError, ReproError
from repro.metrics.summary import MetricReport
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.system.results import RunResult
from repro.workloads import build_benchmark
from repro.workloads.micro import build_micro

#: Iterations of a full-scale micro benchmark (the bench harness's
#: scaling convention: ``scale`` multiplies this).
MICRO_BASE_ITERATIONS = 6000


@dataclass(frozen=True)
class BatchCell:
    """One grid-cell coordinate: what a fleet lane simulates."""

    benchmark: str
    selector: str
    scale: float = 1.0
    seed: int = 1


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    backend: str
    lanes: int
    rounds: int
    #: Aggregate simulation steps across every lane.
    steps: int
    wall_seconds: float
    #: Live-lane bound the kernel ran with (== ``lanes`` when the
    #: whole fleet fit at once).
    max_lanes: int = 0
    #: Queue admissions into freed slots (0 for non-streaming runs).
    refills: int = 0
    #: Cells that settled as failed under ``on_error="continue"``.
    errors: int = 0
    reports: Dict[BatchCell, MetricReport] = field(default_factory=dict)
    results: Dict[BatchCell, RunResult] = field(default_factory=dict)
    #: Per-cell contained errors (``on_error="continue"`` only).
    failures: Dict[BatchCell, ReproError] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Aggregate simulated events per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.steps / self.wall_seconds


def build_fleet_program(benchmark: str, scale: float):
    """Build a lane's program: a SPEC model or a ``micro:`` motif."""
    if benchmark.startswith("micro:"):
        iterations = max(1, round(MICRO_BASE_ITERATIONS * scale))
        return build_micro(benchmark[len("micro:"):], iterations=iterations)
    return build_benchmark(benchmark, scale=scale)


def run_fleet(
    cells: Iterable[BatchCell],
    config: Optional[SystemConfig] = None,
    backend: str = "auto",
    max_steps: Optional[int] = None,
    observer: Optional[Observer] = None,
    quota: int = DEFAULT_QUOTA,
    compaction: bool = True,
    max_lanes: Optional[int] = None,
    on_error: str = "raise",
) -> FleetResult:
    """Run every cell as one batched fleet; results match the serial
    pipeline bit for bit.

    ``backend`` is ``"auto"`` (numpy when installed, else the pure
    Python fallback), ``"numpy"`` or ``"python"`` — see
    :func:`repro.batch.backend.get_backend`.  ``max_steps`` bounds
    every lane (default: the engine's standard budget).  ``max_lanes``
    caps the *live* lane population: with more cells than lanes the
    kernel streams the remainder from a queue, re-seeding each slot
    the moment its lane settles, so memory is bounded by ``max_lanes``
    and the vector population stays wide while the queue lasts.
    ``quota`` caps interp/CFG steps per lane per kernel round and
    ``compaction`` toggles periodic lane re-sorting by mode.  All
    three are scheduling knobs — they cannot change results, only wall
    time.  ``on_error="continue"`` contains a failing cell (its
    enriched error lands in ``FleetResult.failures``) instead of
    aborting the fleet.
    """
    backend = get_backend(backend)
    config = config if config is not None else SystemConfig()
    obs = observer if observer is not None else NULL_OBSERVER
    cell_list: Tuple[BatchCell, ...] = tuple(cells)
    if not cell_list:
        raise ConfigError("run_fleet needs at least one cell")
    if max_lanes is not None and max_lanes < 1:
        raise ConfigError(f"max_lanes must be >= 1, got {max_lanes}")
    if on_error not in ("raise", "continue"):
        raise ConfigError(
            f"on_error must be 'raise' or 'continue', got {on_error!r}")
    seen = set()
    for cell in cell_list:
        if cell in seen:
            raise ConfigError(f"duplicate fleet cell {cell!r}")
        seen.add(cell)

    fleet = FleetResult(backend=backend, lanes=len(cell_list),
                        rounds=0, steps=0, wall_seconds=0.0)
    total_steps = 0

    def settled(lane, error):
        nonlocal total_steps
        cell = lane.cell
        if error is not None:
            fleet.failures[cell] = error
            obs.event(
                "fleet_lane_failed", 0,
                benchmark=cell.benchmark, selector=cell.selector,
                scale=cell.scale, seed=cell.seed, error=str(error),
            )
            return
        fleet.reports[cell] = lane.report
        fleet.results[cell] = lane.result
        steps = lane.engine.steps_executed
        total_steps += steps
        obs.event(
            "fleet_lane_finished", 0,
            benchmark=cell.benchmark, selector=cell.selector,
            scale=cell.scale, seed=cell.seed, steps=steps,
        )

    def admitted(cell, slot, initial):
        if initial:
            return
        # ``kernel`` is bound by the time any refill can happen:
        # initial admissions (the only ones inside the constructor)
        # returned above.
        obs.event(
            "fleet_refill", 0,
            benchmark=cell.benchmark, selector=cell.selector,
            scale=cell.scale, seed=cell.seed, slot=slot,
            settled=kernel.settled, queued=len(kernel.queue),
            active=kernel.active,
        )

    obs.event("fleet_started", 0, lanes=len(cell_list), backend=backend)
    started = time.perf_counter()
    kernel = FleetKernel(cell_list, build_fleet_program, config, backend,
                         max_steps=max_steps, quota=quota,
                         compaction=compaction, max_lanes=max_lanes,
                         on_error=on_error, on_settle=settled,
                         on_admit=admitted)
    rounds = kernel.run()
    wall = time.perf_counter() - started

    fleet.rounds = rounds
    fleet.steps = total_steps
    fleet.wall_seconds = wall
    fleet.max_lanes = kernel.max_lanes
    fleet.refills = kernel.refills
    fleet.errors = kernel.errors
    obs.event("fleet_finished", 0, lanes=len(cell_list), backend=backend,
              rounds=rounds, steps=total_steps, wall_seconds=wall,
              max_lanes=kernel.max_lanes, refills=kernel.refills,
              errors=kernel.errors)
    return fleet
