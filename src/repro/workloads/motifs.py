"""Reusable control-flow motifs for synthetic workloads.

Every motif appends blocks to a :class:`ProcedureBuilder` following one
composition convention: control *enters* the motif by falling through
into its first appended block and *leaves* by falling through out of
its last appended block.  Loops, calls and jumps inside a motif are
self-contained, so a benchmark body is just a sequence of motif calls.

The motifs cover exactly the structures the paper's analysis turns on:

* :func:`hot_loop` / :func:`nested_loop` — Section 2.2's loops and
  nested loops (Figure 3);
* :func:`call_loop` — Figure 2's loop with a function call on the
  dominant path (backward when the callee lays out first);
* :func:`diamond` / :func:`branchy_loop` — Figure 4's unbiased/biased
  branch combinations;
* :func:`switch_loop` — indirect dispatch (interpreter/VM style);
* :func:`recursive_procedure` — bounded recursive descent;
* :func:`phase_split` — Sherwood-style phase behaviour (Section 4.3.1).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.behavior.models import (
    Bernoulli,
    IndirectModel,
    LoopTrip,
    PhaseShift,
    TableIndirect,
)
from repro.behavior.rng import SplitMix64
from repro.program.builder import ProcedureBuilder, ProgramBuilder

#: A motif body: appends blocks to the procedure, fall-through in/out.
Body = Callable[[], None]


class MotifContext:
    """Shared state for motif construction: label uniquing and RNG.

    The RNG is used only for *structural* variety (trip counts,
    instruction counts drawn from ranges at build time); run-time branch
    behaviour comes from the models, driven by the engine's own RNG.
    """

    def __init__(self, pb: ProgramBuilder, rng: SplitMix64) -> None:
        self.pb = pb
        self.rng = rng
        self._counter = 0

    def fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}_{self._counter}"

    def pick(self, low: int, high: int) -> int:
        """Structural random draw in [low, high]."""
        return self.rng.randint(low, high)


# ---------------------------------------------------------------------------
# Straight-line and loop motifs
# ---------------------------------------------------------------------------

def straight_run(
    proc: ProcedureBuilder, ctx: MotifContext, blocks: int = 2, insts: int = 4
) -> None:
    """A run of plain fall-through blocks."""
    for _ in range(blocks):
        proc.block(ctx.fresh("run"), insts=insts)


def loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    trips: int,
    body: Body,
    jitter: int = 0,
    head_insts: int = 2,
    dual_entry: bool = False,
) -> str:
    """Generic counted loop around ``body``; returns the head label.

    Shape: ``head`` falls into the body; a one-instruction ``latch``
    conditional closes the backward edge to ``head`` and falls through
    out of the motif when the trip count is exhausted.

    ``dual_entry`` puts a tiny diamond in front of the loop whose two
    sides both converge on the head.  The head then has two executed
    outside predecessors, so a region rooted there is *not*
    exit-dominated (Section 4.1's condition two needs a unique outside
    predecessor) — the common real-program case where a hot block is
    reachable from several places.
    """
    head = ctx.fresh("loop_head")
    if dual_entry:
        proc.block(ctx.fresh("entry_cond"), insts=1).cond(
            head, model=Bernoulli(0.4)
        )
        proc.block(ctx.fresh("entry_alt"), insts=2)
    proc.block(head, insts=head_insts)
    body()
    proc.block(ctx.fresh("loop_latch"), insts=1).cond(
        head, model=LoopTrip(trips, jitter=jitter)
    )
    return head


def hot_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    trips: int,
    body_blocks: int = 2,
    body_insts: int = 5,
    jitter: int = 0,
    dual_entry: bool = False,
) -> str:
    """A hot counted loop with a straight-line body."""
    return loop(
        proc, ctx, trips,
        body=lambda: straight_run(proc, ctx, body_blocks, body_insts),
        jitter=jitter,
        dual_entry=dual_entry,
    )


def rare_retry(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    retry_probability: float = 0.02,
    work_insts: int = 4,
) -> str:
    """A rarely-taken backward retry branch; returns the retry target.

    The backward branch fires with ``retry_probability`` per pass, so
    the retry target is a NET start candidate whose counter accumulates
    far too slowly to ever reach the threshold: the counter stays live
    for the rest of the run.  LEI allocates nothing — consecutive
    occurrences of the target are separated by far more taken branches
    than the history buffer holds, so its cycles are never observed.
    This motif is why LEI's peak counter memory undercuts NET's
    (Section 3.2.4, Figure 10): error/retry paths like this pepper real
    binaries.
    """
    target = ctx.fresh("retry_tgt")
    proc.block(target, insts=2)
    proc.block(ctx.fresh("retry_work"), insts=work_insts)
    proc.block(ctx.fresh("retry_check"), insts=1).cond(
        target, model=Bernoulli(retry_probability)
    )
    return target


def one_shot_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    body_insts: int = 5,
) -> str:
    """A loop that iterates exactly twice; returns its head label.

    Run once (in an init section), its backward branch is taken a
    single time: NET allocates a counter for the head that never reaches
    the threshold and is never recycled — a *permanent* counter.  LEI
    allocates nothing, because a cycle needs the target to already be in
    the history buffer and the head's one taken occurrence never
    recurs.  Cold startup code full of such loops is the concrete
    reason LEI needs only about two-thirds of NET's counter memory
    (Section 3.2.4, Figure 10).
    """
    head = ctx.fresh("once_head")
    proc.block(head, insts=3)
    proc.block(ctx.fresh("once_body"), insts=body_insts)
    proc.block(ctx.fresh("once_latch"), insts=1).cond(head, model=LoopTrip(2))
    return head


def cold_tight_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    trips: int = 10,
    body_insts: int = 5,
) -> str:
    """A short cold loop whose counter never reaches either threshold.

    Run once with ``trips`` below both selection thresholds, its head
    costs a permanent counter under NET *and* LEI (its tight cycles sit
    comfortably inside the history buffer) — cold code that is equally
    expensive for both algorithms, balancing :func:`one_shot_loop`.
    """
    return hot_loop(proc, ctx, trips=trips, body_blocks=1,
                    body_insts=body_insts)


def cold_init_section(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    one_shot: int = 5,
    tight: int = 2,
) -> None:
    """Startup-only code: a mix of one-shot and cold tight loops."""
    for _ in range(one_shot):
        one_shot_loop(proc, ctx, body_insts=ctx.pick(3, 7))
    for _ in range(tight):
        cold_tight_loop(proc, ctx, trips=ctx.pick(6, 14),
                        body_insts=ctx.pick(3, 6))


def nested_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    trip_counts: Sequence[int],
    body_blocks: int = 1,
    body_insts: int = 5,
    dual_entry: bool = False,
) -> None:
    """Nested counted loops, outermost first (Figure 3 when len == 2)."""
    if not trip_counts:
        straight_run(proc, ctx, body_blocks, body_insts)
        return
    outer, *inner = trip_counts
    loop(
        proc, ctx, outer,
        body=lambda: nested_loop(proc, ctx, inner, body_blocks, body_insts),
        dual_entry=dual_entry,
    )


# ---------------------------------------------------------------------------
# Branch motifs
# ---------------------------------------------------------------------------

def diamond(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    bias: float,
    then_insts: int = 4,
    else_insts: int = 4,
    join_insts: int = 2,
) -> None:
    """An if/else that rejoins: taken side probability ``bias``.

    ``bias = 0.5`` is the paper's unbiased branch (Figure 4).
    """
    then_label = ctx.fresh("dia_then")
    join_label = ctx.fresh("dia_join")
    proc.block(ctx.fresh("dia_cond"), insts=2).cond(
        then_label, model=Bernoulli(bias)
    )
    proc.block(ctx.fresh("dia_else"), insts=else_insts).jump(join_label)
    proc.block(then_label, insts=then_insts)
    proc.block(join_label, insts=join_insts)


def diamond_chain(
    proc: ProcedureBuilder, ctx: MotifContext, biases: Sequence[float]
) -> None:
    """Consecutive diamonds — many statically-possible paths."""
    for bias in biases:
        diamond(proc, ctx, bias)


def branchy_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    trips: int,
    biases: Sequence[float],
    jitter: int = 0,
    dual_entry: bool = False,
) -> str:
    """A loop whose body is a chain of diamonds (Figure 4 in a loop)."""
    return loop(
        proc, ctx, trips,
        body=lambda: diamond_chain(proc, ctx, biases),
        jitter=jitter,
        dual_entry=dual_entry,
    )


# ---------------------------------------------------------------------------
# Procedure motifs
# ---------------------------------------------------------------------------

def leaf_procedure(
    ctx: MotifContext, name: str, blocks: int = 2, insts: int = 4
) -> str:
    """A straight-line procedure ending in a return; returns its name.

    Declare *before* the callers that should reach it with a backward
    call (Figure 2), after them for a forward call.
    """
    proc = ctx.pb.procedure(name)
    for _ in range(max(1, blocks - 1)):
        proc.block(ctx.fresh("leaf"), insts=insts)
    proc.block(ctx.fresh("leaf_ret"), insts=insts).ret()
    return name


def call_stage(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    callee: str,
    pre_insts: int = 2,
    post_insts: int = 2,
) -> None:
    """Call ``callee`` once; the next block is the return site."""
    proc.block(ctx.fresh("call"), insts=pre_insts).call(callee)
    proc.block(ctx.fresh("ret_site"), insts=post_insts)


def call_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    callee: str,
    trips: int,
    body_insts: int = 3,
    jitter: int = 0,
    dual_entry: bool = False,
) -> str:
    """Figure 2's motif: a loop whose dominant path calls ``callee``.

    When ``callee`` was declared before the calling procedure the call
    is a backward branch, the cycle is interprocedural, and NET must
    split it into two traces while LEI can span it.
    """
    return loop(
        proc, ctx, trips,
        body=lambda: call_stage(proc, ctx, callee, pre_insts=body_insts),
        jitter=jitter,
        dual_entry=dual_entry,
    )


def recursive_procedure(
    ctx: MotifContext, name: str, depth: int, body_insts: int = 4
) -> str:
    """A self-recursive procedure with a deterministic depth.

    The recursion branch uses :class:`LoopTrip`: each activation from
    the top recurses ``depth - 1`` times before taking the base case,
    exercising call-stack cycles (parser-style recursive descent).
    """
    proc = ctx.pb.procedure(name)
    rec_label = ctx.fresh("rec")
    proc.block(ctx.fresh("rec_entry"), insts=body_insts)
    proc.block(ctx.fresh("rec_decide"), insts=1).cond(
        rec_label, model=LoopTrip(depth)
    )
    proc.block(ctx.fresh("rec_base"), insts=body_insts).ret()
    proc.block(rec_label, insts=2).call(name)
    proc.block(ctx.fresh("rec_unwind"), insts=2).ret()
    return name


# ---------------------------------------------------------------------------
# Indirect dispatch and phases
# ---------------------------------------------------------------------------

def switch_loop(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    trips: int,
    case_insts: Sequence[int],
    weights: Optional[Sequence[float]] = None,
    model: Optional[IndirectModel] = None,
    jitter: int = 0,
) -> str:
    """A dispatch loop: indirect jump over cases, all rejoining a latch.

    Models interpreter main loops (perlbmk/gcc style).  Pass ``weights``
    for a fixed target distribution or a custom ``model`` (for example
    :class:`~repro.behavior.models.PhaseIndirect`).
    """
    head = ctx.fresh("sw_head")
    latch = ctx.fresh("sw_latch")
    case_labels = [ctx.fresh("sw_case") for _ in case_insts]

    proc.block(head, insts=2)
    if model is None:
        weights = weights if weights is not None else [1.0] * len(case_insts)
        model = TableIndirect(weights)
    proc.block(ctx.fresh("sw_dispatch"), insts=1).indirect(case_labels, model=model)
    last_index = len(case_labels) - 1
    for index, (label, insts) in enumerate(zip(case_labels, case_insts)):
        handle = proc.block(label, insts=insts)
        if index == last_index:
            handle.jump(latch)
        else:
            # Mostly back to the latch, occasionally falling through
            # into the next case (fused-op style): case entrances get a
            # second executed predecessor, as in real interpreters.
            handle.cond(latch, model=Bernoulli(0.85))
    proc.block(latch, insts=1).cond(head, model=LoopTrip(trips, jitter=jitter))
    return head


def phase_split(
    proc: ProcedureBuilder,
    ctx: MotifContext,
    period: int,
    body_a: Body,
    body_b: Body,
) -> None:
    """Alternate between two bodies by program phase.

    For ``period`` engine steps control prefers body A, then body B,
    cycling — the phase behaviour that limits trace combination's
    observation window (Section 4.3.1).
    """
    b_label = ctx.fresh("phase_b")
    join_label = ctx.fresh("phase_join")
    proc.block(ctx.fresh("phase_cond"), insts=1).cond(
        b_label, model=PhaseShift([(period, 0.0), (period, 1.0)])
    )
    body_a()
    proc.block(ctx.fresh("phase_a_end"), insts=1).jump(join_label)
    proc.block(b_label, insts=2)
    body_b()
    proc.block(join_label, insts=1)
