"""The twelve synthetic SPECint2000 stand-ins.

Each builder mirrors the structural traits the paper attributes to its
namesake benchmark — the traits the region-selection results hinge on:

============  ==============================================================
benchmark     dominant control-flow character modelled
============  ==============================================================
gzip          few very hot, strongly biased compression loops (tiny cover
              set; Figure 17 shows almost nothing left to combine)
vpr           placement loops: nested loops plus moderately biased diamonds
gcc           very many warm paths: stacks of mixed-bias diamonds, indirect
              dispatch, many helpers (largest cover set, lowest hit rate)
mcf           pointer-chasing: long interprocedural cycles (backward calls
              on the dominant loop path) with an unbiased branch inside
crafty        large *intra*-procedural search loops; its hot cycles are
              spannable by NET already, so LEI gains least (Figures 7-8)
parser        recursive descent plus dictionary loops with unbiased splits
eon           C++ style: several tiny shared constructors called from many
              hot sites — the Figure 12 exit-domination outlier
perlbmk       interpreter: phase-shifting indirect opcode dispatch
gap           computer algebra: mixture of nested loops, recursion, calls
vortex        OO database: chains of small procedure calls, biased branches
bzip2         sorting: deep nested loops with an unbiased comparison branch
twolf         annealing: nested loops whose inner bodies split unbiased
============  ==============================================================

All builders are deterministic (fixed seeds); ``scale`` multiplies the
driver iteration count only, so structure is scale-invariant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.behavior.models import PhaseIndirect
from repro.errors import ProgramStructureError
from repro.program.program import Program
from repro.workloads import motifs
from repro.workloads.motifs import MotifContext
from repro.workloads.synth import Stage, assemble


def _gzip(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "crc_update", blocks=2, insts=5)

    stages: List[Stage] = [
        lambda p, c: motifs.hot_loop(p, c, trips=26, body_blocks=3, body_insts=6,
                                     jitter=4, dual_entry=True),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.015),
        lambda p, c: motifs.nested_loop(p, c, [6, 9], body_insts=6, dual_entry=True),
        lambda p, c: motifs.branchy_loop(p, c, trips=8, biases=(0.92, 0.88)),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
        lambda p, c: motifs.call_stage(p, c, "crc_update"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.01),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=5, tight=2)]
    return assemble("gzip", seed=101, driver_iterations=1500,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _vpr(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "get_cost", blocks=3, insts=4)

    stages: List[Stage] = [
        lambda p, c: motifs.nested_loop(p, c, [7, 11], body_insts=5, dual_entry=True),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
        lambda p, c: motifs.branchy_loop(p, c, trips=9, biases=(0.75, 0.6), dual_entry=True),
        lambda p, c: motifs.call_loop(p, c, "get_cost", trips=12, jitter=3),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.015),
        lambda p, c: motifs.hot_loop(p, c, trips=14, body_blocks=2, body_insts=5),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.01),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=5, tight=2)]
    return assemble("vpr", seed=102, driver_iterations=1100,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _gcc(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        for index in range(6):
            motifs.leaf_procedure(ctx, f"fold_{index}",
                                  blocks=ctx.pick(2, 4), insts=ctx.pick(3, 6))
        motifs.recursive_procedure(ctx, "walk_tree", depth=6, body_insts=4)

    def dispatch_stage(p, c):
        motifs.switch_loop(
            p, c, trips=10,
            case_insts=[c.pick(3, 8) for _ in range(12)],
            weights=[5, 4, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1],
        )

    def warm_paths(p, c):
        # Stacks of mixed-bias diamonds: a combinatorial number of warm
        # paths, few of them dominant — gcc's signature.
        motifs.branchy_loop(p, c, trips=6,
                            biases=(0.55, 0.5, 0.65, 0.5, 0.7, 0.45))

    stages: List[Stage] = [
        dispatch_stage,
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.03),
        warm_paths,
        lambda p, c: motifs.call_stage(p, c, "walk_tree"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
        lambda p, c: motifs.call_loop(p, c, "fold_0", trips=7, dual_entry=True),
        lambda p, c: motifs.diamond_chain(p, c, (0.6, 0.5, 0.55)),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.05),
        lambda p, c: motifs.call_loop(p, c, "fold_1", trips=5),
        lambda p, c: motifs.branchy_loop(p, c, trips=5, biases=(0.5, 0.6, 0.5),
                                         dual_entry=True),
        lambda p, c: motifs.call_stage(p, c, "fold_2"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.04),
        lambda p, c: motifs.call_stage(p, c, "fold_3"),
        lambda p, c: motifs.nested_loop(p, c, [4, 6], body_insts=4, dual_entry=True),
        lambda p, c: motifs.call_stage(p, c, "fold_4"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.03),
        lambda p, c: motifs.call_stage(p, c, "fold_5"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=10, tight=4)]
    return assemble("gcc", seed=103, driver_iterations=420,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale,
                    driver_jitter=0)


def _mcf(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "refresh_potential", blocks=3, insts=6)
        motifs.leaf_procedure(ctx, "price_out", blocks=2, insts=5)

    def arc_scan(p, c):
        # The signature mcf shape: a long loop whose dominant path calls
        # a lower-address function, with an unbiased feasibility branch.
        motifs.loop(
            p, c, trips=34,
            body=lambda: (
                motifs.diamond(p, c, bias=0.5, then_insts=5, else_insts=5),
                motifs.call_stage(p, c, "refresh_potential"),
            ) and None,
            jitter=6,
        )

    stages: List[Stage] = [
        arc_scan,
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
        lambda p, c: motifs.call_loop(p, c, "price_out", trips=18, jitter=4,
                                      dual_entry=True),
        lambda p, c: motifs.hot_loop(p, c, trips=12, body_blocks=2, body_insts=7),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.015),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=4, tight=2)]
    return assemble("mcf", seed=104, driver_iterations=900,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _crafty(scale: float) -> Program:
    # Self-contained flat search loops: every hot cycle is a simple
    # backward branch NET spans on its own, so LEI's extra generality
    # buys little here — and its willingness to grow traces across
    # stage boundaries costs it code expansion (the paper's crafty is
    # the one benchmark where LEI expands *more* code than NET).
    stages: List[Stage] = [
        lambda p, c: motifs.hot_loop(p, c, trips=24, body_blocks=4, body_insts=7,
                                     jitter=5, dual_entry=True),
        lambda p, c: motifs.hot_loop(p, c, trips=16, body_blocks=3, body_insts=6,
                                     dual_entry=True),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
        lambda p, c: motifs.branchy_loop(p, c, trips=11, biases=(0.85, 0.8),
                                         dual_entry=True),
        lambda p, c: motifs.hot_loop(p, c, trips=12, body_blocks=5, body_insts=6,
                                     jitter=3, dual_entry=True),
        lambda p, c: motifs.diamond_chain(p, c, (0.9, 0.85)),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=5, tight=2)]
    return assemble("crafty", seed=105, driver_iterations=900,
                    stages=stages, init_stages=init, scale=scale)


def _parser(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "dict_lookup", blocks=2, insts=5)
        motifs.recursive_procedure(ctx, "parse_expr", depth=8, body_insts=5)

    stages: List[Stage] = [
        lambda p, c: motifs.call_stage(p, c, "parse_expr"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.03),
        lambda p, c: motifs.call_loop(p, c, "dict_lookup", trips=16, jitter=4),
        lambda p, c: motifs.branchy_loop(p, c, trips=8, biases=(0.5, 0.7),
                                         dual_entry=True),
        lambda p, c: motifs.hot_loop(p, c, trips=10, body_blocks=2, body_insts=4),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=5, tight=2)]
    return assemble("parser", seed=106, driver_iterations=950,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _eon(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        # The ggPoint3-style shared constructors: tiny, shared, hot.
        for index in range(3):
            motifs.leaf_procedure(ctx, f"ctor_{index}", blocks=1, insts=4)

    # Many distinct hot sites each call the shared constructors: once a
    # constructor owns a region, every caller's region is entered only
    # through that region's exit — eon's exit-domination explosion.
    def ctor_site(p, c, first: str, second: str) -> None:
        # A hot site constructing two objects back to back: once the
        # shared constructors own regions, both return-site regions of
        # this loop can only be entered through a constructor's exit.
        motifs.loop(
            p, c, trips=5,
            body=lambda: (
                motifs.call_stage(p, c, first),
                motifs.call_stage(p, c, second),
            ) and None,
        )

    stages: List[Stage] = []
    for site in range(11):
        # ctor_2 is the ggPoint3 analogue: constructed at every site, so
        # its region ends up exit-dominating a large number of traces.
        first = f"ctor_{site % 2}"
        stages.append(
            lambda p, c, a=first: ctor_site(p, c, a, "ctor_2")
        )
    stages.append(lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02))
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=7, tight=3)]
    return assemble("eon", seed=107, driver_iterations=600,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _perlbmk(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "hash_get", blocks=2, insts=5)

    def opcode_dispatch(p, c):
        # Phase-shifting opcode mix: the dominant cases swap between
        # program phases, stressing the observation window.
        hot_a = [8.0, 6.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.25, 0.25]
        hot_b = list(reversed(hot_a))
        motifs.switch_loop(
            p, c, trips=22,
            case_insts=[c.pick(3, 7) for _ in range(10)],
            model=PhaseIndirect([(40_000, hot_a), (40_000, hot_b)]),
        )

    stages: List[Stage] = [
        opcode_dispatch,
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.03),
        lambda p, c: motifs.call_loop(p, c, "hash_get", trips=9, dual_entry=True),
        lambda p, c: motifs.branchy_loop(p, c, trips=7, biases=(0.65, 0.5)),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=6, tight=2)]
    return assemble("perlbmk", seed=108, driver_iterations=900,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _gap(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "gc_mark", blocks=3, insts=4)
        motifs.recursive_procedure(ctx, "eval_rec", depth=5, body_insts=4)

    stages: List[Stage] = [
        lambda p, c: motifs.nested_loop(p, c, [6, 10], body_insts=5, dual_entry=True),
        lambda p, c: motifs.call_stage(p, c, "eval_rec"),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.025),
        lambda p, c: motifs.call_loop(p, c, "gc_mark", trips=11, jitter=3),
        lambda p, c: motifs.branchy_loop(p, c, trips=9, biases=(0.7, 0.5, 0.8),
                                         dual_entry=True),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.015),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=5, tight=2)]
    return assemble("gap", seed=109, driver_iterations=800,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _vortex(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        for index in range(5):
            motifs.leaf_procedure(ctx, f"mem_{index}",
                                  blocks=ctx.pick(1, 3), insts=ctx.pick(3, 5))

    def call_chain(p, c):
        for index in range(5):
            motifs.call_stage(p, c, f"mem_{index}")

    stages: List[Stage] = [
        call_chain,
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.03),
        lambda p, c: motifs.branchy_loop(p, c, trips=13, biases=(0.9, 0.85, 0.95),
                                         dual_entry=True),
        lambda p, c: motifs.call_loop(p, c, "mem_0", trips=8),
        lambda p, c: motifs.hot_loop(p, c, trips=10, body_blocks=2, body_insts=4,
                                     dual_entry=True),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=6, tight=3)]
    return assemble("vortex", seed=110, driver_iterations=900,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


def _bzip2(scale: float) -> Program:
    def sort_loops(p, c):
        # Deep nested sorting loops with an unbiased comparison branch in
        # the innermost body.
        motifs.loop(
            p, c, trips=9,
            body=lambda: motifs.loop(
                p, c, trips=8,
                body=lambda: motifs.diamond(p, c, bias=0.5,
                                            then_insts=4, else_insts=4),
            ) and None,
        )

    stages: List[Stage] = [
        sort_loops,
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.02),
        lambda p, c: motifs.hot_loop(p, c, trips=28, body_blocks=3, body_insts=6,
                                     jitter=6, dual_entry=True),
        lambda p, c: motifs.nested_loop(p, c, [5, 12], body_insts=5),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.015),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=4, tight=2)]
    return assemble("bzip2", seed=111, driver_iterations=950,
                    stages=stages, init_stages=init, scale=scale)


def _twolf(scale: float) -> Program:
    def declarations(ctx: MotifContext) -> None:
        motifs.leaf_procedure(ctx, "wire_est", blocks=2, insts=5)

    def anneal(p, c):
        motifs.loop(
            p, c, trips=12,
            body=lambda: (
                motifs.diamond(p, c, bias=0.5, then_insts=6, else_insts=3),
                motifs.diamond(p, c, bias=0.45, then_insts=3, else_insts=5),
            ) and None,
            jitter=3,
        )

    stages: List[Stage] = [
        anneal,
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.025),
        lambda p, c: motifs.nested_loop(p, c, [8, 9], body_insts=5, dual_entry=True),
        lambda p, c: motifs.call_loop(p, c, "wire_est", trips=10, jitter=2),
        lambda p, c: motifs.rare_retry(p, c, retry_probability=0.015),
    ]
    init = [lambda p, c: motifs.cold_init_section(p, c, one_shot=4, tight=2)]
    return assemble("twolf", seed=112, driver_iterations=850,
                    stages=stages, init_stages=init, declarations=declarations, scale=scale)


#: Benchmark registry in the paper's customary listing order.
BENCHMARKS: Dict[str, Callable[[float], Program]] = {
    "gzip": _gzip,
    "vpr": _vpr,
    "gcc": _gcc,
    "mcf": _mcf,
    "crafty": _crafty,
    "parser": _parser,
    "eon": _eon,
    "perlbmk": _perlbmk,
    "gap": _gap,
    "vortex": _vortex,
    "bzip2": _bzip2,
    "twolf": _twolf,
}


def benchmark_names() -> Tuple[str, ...]:
    """The twelve benchmark names, in suite order."""
    return tuple(BENCHMARKS)


def build_benchmark(name: str, scale: float = 1.0) -> Program:
    """Build one synthetic benchmark program by name."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        raise ProgramStructureError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}"
        ) from None
    return builder(scale)


def build_suite(scale: float = 1.0) -> Dict[str, Program]:
    """Build all twelve benchmarks."""
    return {name: build_benchmark(name, scale) for name in BENCHMARKS}
