"""Workload assembly: driver skeletons around motif stage lists."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.behavior.models import LoopTrip
from repro.behavior.rng import SplitMix64
from repro.program.builder import ProcedureBuilder, ProgramBuilder
from repro.program.program import Program
from repro.workloads.motifs import MotifContext

#: A stage takes (main procedure, context) and appends one motif.
Stage = Callable[[ProcedureBuilder, MotifContext], None]
#: A declaration hook runs before main is built (for low-address callees).
Declarations = Callable[[MotifContext], None]


def scaled(iterations: int, scale: float) -> int:
    """Scale a driver trip count, staying at least 10 iterations."""
    return max(10, round(iterations * scale))


def assemble(
    name: str,
    seed: int,
    driver_iterations: int,
    stages: Sequence[Stage],
    declarations: Declarations = lambda ctx: None,
    init_stages: Sequence[Stage] = (),
    scale: float = 1.0,
    driver_jitter: int = 0,
) -> Program:
    """Build a benchmark program.

    Layout/execution split: ``declarations`` runs first so helper
    procedures land at *lower* addresses than ``main`` (calls to them
    are backward branches — Figure 2's interprocedural-cycle shape);
    ``main`` is nonetheless the entry procedure.  ``init_stages`` run
    once before the driver loop (cold startup code); the driver loop
    then walks all ``stages`` each iteration and halts after
    ``driver_iterations`` (times ``scale``) trips.
    """
    pb = ProgramBuilder(name, entry="main")
    ctx = MotifContext(pb, SplitMix64(seed))
    declarations(ctx)

    main = pb.procedure("main")
    main.block("start", insts=2)
    for stage in init_stages:
        stage(main, ctx)
    head = ctx.fresh("driver_head")
    main.block(head, insts=2)
    for stage in stages:
        stage(main, ctx)
    main.block(ctx.fresh("driver_latch"), insts=1).cond(
        head,
        model=LoopTrip(scaled(driver_iterations, scale), jitter=driver_jitter),
    )
    main.block("finish", insts=1).halt()
    return pb.build()
