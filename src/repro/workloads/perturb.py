"""Workload perturbation: robustness checks for the synthetic suite.

A synthetic reproduction is only credible if its conclusions do not
hinge on the particular constants baked into the workloads.  This
module rebuilds a benchmark with its *dynamic behaviour* perturbed —
branch biases nudged, trip counts scaled, phase lengths stretched —
while leaving the static structure untouched, so the headline ratios
can be re-measured across a family of neighbouring workloads
(`benchmarks/test_perturbation_robustness.py`).

Perturbation happens post-build by rewriting the model objects on the
finalized program's terminators; models are per-site in this library,
so the rewrite cannot leak across programs.
"""

from __future__ import annotations

from repro.behavior.models import Bernoulli, LoopTrip
from repro.behavior.rng import SplitMix64
from repro.errors import ConfigError
from repro.isa.opcodes import BranchKind
from repro.program.program import Program
from repro.workloads.spec import build_benchmark


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


def perturb_program(
    program: Program,
    seed: int,
    bias_jitter: float = 0.08,
    trip_scale_range: float = 0.3,
) -> int:
    """Perturb a finalized program's branch models in place.

    * every :class:`Bernoulli` bias moves by uniform(-bias_jitter,
      +bias_jitter), clamped to [0.02, 0.98] so no branch becomes
      degenerate;
    * every :class:`LoopTrip` count scales by uniform(1 - range,
      1 + range), floored at 2 so loops stay loops.

    Returns the number of model sites rewritten.  Deterministic in
    ``seed``.
    """
    if not 0.0 <= bias_jitter < 0.5:
        raise ConfigError(f"bias_jitter must be in [0, 0.5), got {bias_jitter}")
    if not 0.0 <= trip_scale_range < 1.0:
        raise ConfigError(
            f"trip_scale_range must be in [0, 1), got {trip_scale_range}"
        )
    rng = SplitMix64(seed)
    rewritten = 0
    for block in program.blocks:
        term = block.terminator
        if term.kind is not BranchKind.COND or term.model is None:
            continue
        model = term.model
        if isinstance(model, Bernoulli):
            delta = (rng.random() * 2 - 1) * bias_jitter
            term.model = Bernoulli(_clamp(model.probability + delta, 0.02, 0.98))
            rewritten += 1
        elif isinstance(model, LoopTrip):
            factor = 1.0 + (rng.random() * 2 - 1) * trip_scale_range
            trips = max(2, round(model.trips * factor))
            jitter = min(model.jitter, trips - 1)
            term.model = LoopTrip(trips, jitter=jitter)
            rewritten += 1
        # Other models (Periodic, PhaseShift, Markov) are left alone:
        # their shapes are the point of the sites using them.
    return rewritten


def build_perturbed_benchmark(
    name: str,
    perturbation_seed: int,
    scale: float = 1.0,
    bias_jitter: float = 0.08,
    trip_scale_range: float = 0.3,
) -> Program:
    """Build a benchmark and perturb its dynamic behaviour.

    ``perturbation_seed = 0`` is reserved for "no perturbation" so
    sweeps can include the baseline naturally.
    """
    program = build_benchmark(name, scale=scale)
    if perturbation_seed != 0:
        perturb_program(
            program, perturbation_seed,
            bias_jitter=bias_jitter, trip_scale_range=trip_scale_range,
        )
    return program
