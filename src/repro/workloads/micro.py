"""Named microbenchmarks: the paper's worked examples as ready programs.

Where :mod:`repro.workloads.spec` provides realistic benchmark-scale
programs, this registry provides the *minimal* programs that isolate a
single phenomenon — Figures 2-4 plus a few classic shapes.  They are
ideal for unit tests, demos, and for stepping through an algorithm by
hand (every one finishes in well under a second).

>>> from repro.workloads.micro import build_micro
>>> program = build_micro("figure2")           # doctest: +SKIP
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.behavior.models import Bernoulli, LoopTrip, Periodic
from repro.errors import ProgramStructureError
from repro.program.builder import ProgramBuilder
from repro.program.program import Program


def _figure2(iterations: int) -> Program:
    """A loop whose dominant path calls a lower-address function.

    NET must split the interprocedural cycle into two traces; LEI spans
    it (paper Figure 2 / Section 3.1).
    """
    pb = ProgramBuilder("micro_figure2", entry="main")
    helper = pb.procedure("helper")
    helper.block("E", insts=4)
    helper.block("F", insts=2).ret()
    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=2).call("helper")
    main.block("D", insts=2).cond("A", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


def _figure3(iterations: int) -> Program:
    """Nested loops: NET duplicates the inner head, LEI does not."""
    pb = ProgramBuilder("micro_figure3")
    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=5).cond("B", model=LoopTrip(10))
    main.block("C", insts=2).cond("A", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


def _figure4(iterations: int) -> Program:
    """Unbiased branch then biased branch: trace combination's target."""
    pb = ProgramBuilder("micro_figure4")
    main = pb.procedure("main")
    main.block("A", insts=2).cond("B", model=Bernoulli(0.5))
    main.block("C", insts=3).jump("D")
    main.block("B", insts=3).jump("D")
    main.block("D", insts=2).cond("F", model=Bernoulli(0.9))
    main.block("E", insts=4).jump("latch")
    main.block("F", insts=4)
    main.block("latch", insts=1).cond("A", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


def _self_loop(iterations: int) -> Program:
    """The smallest possible hot region: a single-block cycle."""
    pb = ProgramBuilder("micro_self_loop")
    main = pb.procedure("main")
    main.block("head", insts=4).cond("head", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


def _alternating(iterations: int) -> Program:
    """A perfectly alternating branch: the worst case for any selector
    that must commit to one direction (NET's next-executing tail is
    wrong half the time; combination holds both sides)."""
    pb = ProgramBuilder("micro_alternating")
    main = pb.procedure("main")
    main.block("A", insts=2).cond("B", model=Periodic([True, False]))
    main.block("C", insts=3).jump("J")
    main.block("B", insts=3).jump("J")
    main.block("J", insts=2).cond("A", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


def _recursion(iterations: int) -> Program:
    """Bounded recursive descent driven from a loop."""
    pb = ProgramBuilder("micro_recursion", entry="main")
    rec = pb.procedure("rec")
    rec.block("entry", insts=3)
    rec.block("decide", insts=1).cond("go", model=LoopTrip(6))
    rec.block("base", insts=2).ret()
    rec.block("go", insts=2).call("rec")
    rec.block("unwind", insts=2).ret()
    main = pb.procedure("main")
    main.block("head", insts=2).call("rec")
    main.block("latch", insts=1).cond("head", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


def _linked_chain(iterations: int) -> Program:
    """A long chain of small hot loops: the trace-linking stress case.

    Each segment is a tight two-block loop; when its trip count runs
    out, control falls through to the next segment's head.  Every
    selector caches one region per segment, so steady-state execution
    is almost entirely region->region transfers — the workload a
    dispatcher-bounce design is slowest on and a linked design
    (direct trace->trace patching) is fastest on.
    """
    pb = ProgramBuilder("micro_linked_chain")
    main = pb.procedure("main")
    segments = 12
    for i in range(segments):
        main.block(f"h{i}", insts=2)
        main.block(f"b{i}", insts=3).cond(f"h{i}", model=LoopTrip(4))
    main.block("latch", insts=1).cond("h0", model=LoopTrip(iterations))
    main.block("done", insts=1).halt()
    return pb.build()


MICROBENCHMARKS: Dict[str, Callable[[int], Program]] = {
    "figure2": _figure2,
    "figure3": _figure3,
    "figure4": _figure4,
    "self_loop": _self_loop,
    "alternating": _alternating,
    "recursion": _recursion,
    "linked_chain": _linked_chain,
}

#: Default driver iteration count (enough to pass every threshold).
DEFAULT_ITERATIONS = 2000


def micro_names() -> Tuple[str, ...]:
    return tuple(MICROBENCHMARKS)


def build_micro(name: str, iterations: int = DEFAULT_ITERATIONS) -> Program:
    """Build a named microbenchmark program."""
    if iterations < 1:
        raise ProgramStructureError(
            f"iterations must be >= 1, got {iterations}"
        )
    try:
        builder = MICROBENCHMARKS[name]
    except KeyError:
        raise ProgramStructureError(
            f"unknown microbenchmark {name!r}; known: "
            f"{', '.join(MICROBENCHMARKS)}"
        ) from None
    return builder(iterations)
