"""Synthetic SPECint2000 workloads.

The paper evaluates on the twelve SPECint2000 benchmarks run to
completion under Pin.  Real SPEC binaries and inputs are not available
here, so :mod:`repro.workloads.spec` provides twelve synthetic programs
— one per benchmark name — assembled from the control-flow motifs of
:mod:`repro.workloads.motifs` (loops, nested loops, interprocedural
cycles, unbiased diamonds, indirect dispatch, recursion, call fan-in,
phases).  Each program's motif mix mirrors the structural traits the
paper attributes to its namesake (see DESIGN.md's substitution table);
all are deterministic given their fixed per-benchmark seeds.

Use :func:`build_benchmark` for one program or :func:`benchmark_names`
to iterate the suite.
"""

from repro.workloads.micro import (
    MICROBENCHMARKS,
    build_micro,
    micro_names,
)
from repro.workloads.spec import (
    BENCHMARKS,
    benchmark_names,
    build_benchmark,
    build_suite,
)

__all__ = [
    "BENCHMARKS",
    "benchmark_names",
    "build_benchmark",
    "build_suite",
    "MICROBENCHMARKS",
    "micro_names",
    "build_micro",
]
