"""Append-only checkpoint journal: resume a killed sweep where it died.

The journal is one JSONL file; every completed job appends one line
``{"job_id": ..., "result": <serialized>}`` and flushes, so at any kill
point the file holds exactly the finished jobs (the last line may be
torn — a torn tail is detected and ignored, costing one job's rerun at
worst).  On the next run the engine loads the journal and satisfies
journaled jobs without scheduling them.

Results must be JSON-serializable; callers with richer result types
pass ``serialize``/``deserialize`` hooks (the grid runner round-trips
``MetricReport`` through :mod:`repro.analysis.serialize`).  Note the
grid runner itself normally checkpoints through the content-addressed
store instead — the journal is the engine-level facility for job bags
that have no store.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional


class CheckpointJournal:
    """JSONL record of completed jobs, tolerant of a torn final line."""

    def __init__(
        self,
        path: str,
        serialize: Optional[Callable[[Any], Any]] = None,
        deserialize: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.path = path
        self._serialize = serialize if serialize is not None else (lambda r: r)
        self._deserialize = (
            deserialize if deserialize is not None else (lambda r: r)
        )
        self._handle = None

    # -- reading ---------------------------------------------------------
    def load(self) -> Dict[str, Any]:
        """Completed job results recorded so far (empty if no journal)."""
        completed: Dict[str, Any] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return completed
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    job_id = entry["job_id"]
                    result = self._deserialize(entry["result"])
                except (ValueError, KeyError, TypeError):
                    # A torn tail from a kill mid-write; everything
                    # before it is intact, so stop rather than fail.
                    break
                completed[job_id] = result
        return completed

    # -- writing ---------------------------------------------------------
    def record(self, job_id: str, result: Any) -> None:
        """Append one completed job and flush it to disk."""
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {"job_id": job_id, "result": self._serialize(result)}
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
