"""Deterministic fault injection for the job engine's failure paths.

A retry path that only fires when real hardware misbehaves is untested
code; the injector makes worker failure a first-class, reproducible
input.  Plans are keyed by ``(job_id, attempt)`` with attempt numbers
starting at 1, so "crash the first two attempts of cell gcc:lei" is
``FaultInjector(crashes={"gcc:lei": 2})`` — attempt 3 then succeeds and
the run completes through the retry machinery.

The injector is immutable and picklable: it ships to worker processes
by value, and its decisions depend only on the attempt number the
parent passes in, never on shared state.
"""

from __future__ import annotations

import os
import time

from dataclasses import dataclass, field
from typing import Mapping

#: Exit code used by injected hard crashes, chosen to be recognizable
#: in engine diagnostics (and unlikely to collide with real failures).
CRASH_EXIT_CODE = 87


class InjectedFault(Exception):
    """A deliberate failure raised by the fault-injection hooks.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults simulate infrastructure crashes (a worker dying mid-cell),
    which the job engine must survive, not a library bug that callers
    should catch — so it lives here rather than in the error hierarchy.
    """


@dataclass(frozen=True)
class FaultInjector:
    """Crash, hang or error chosen attempts of chosen jobs.

    * ``crashes[job_id] = n`` — attempts 1..n die hard (``os._exit`` in
      a worker process, :class:`~repro.errors.InjectedFault` in-process);
    * ``hangs[job_id] = (n, seconds)`` — attempts 1..n sleep for
      ``seconds`` before doing any work (exercises the timeout path);
    * ``errors[job_id] = n`` — attempts 1..n raise
      :class:`~repro.errors.InjectedFault` (the clean-exception path).
    """

    crashes: Mapping[str, int] = field(default_factory=dict)
    hangs: Mapping[str, object] = field(default_factory=dict)
    errors: Mapping[str, int] = field(default_factory=dict)

    def apply(self, job_id: str, attempt: int, in_process: bool) -> None:
        """Run the planned fault for this attempt, if any.

        Called at the top of every attempt, in the worker process (where
        a crash is a real ``os._exit``) or inline for serial execution
        (where a crash degrades to an exception — there is no way to
        kill "the worker" without killing the run).
        """
        hang = self.hangs.get(job_id)
        if hang is not None:
            hang_attempts, seconds = hang
            if attempt <= hang_attempts:
                time.sleep(seconds)
        if attempt <= self.crashes.get(job_id, 0):
            if in_process:
                raise InjectedFault(
                    f"injected crash of {job_id!r} attempt {attempt}"
                )
            os._exit(CRASH_EXIT_CODE)
        if attempt <= self.errors.get(job_id, 0):
            raise InjectedFault(
                f"injected error in {job_id!r} attempt {attempt}"
            )
