"""The job engine: retries, timeouts and checkpointing over processes.

Design notes.  Each job runs in its **own** worker process (bounded to
``workers`` concurrent), not in a long-lived pool: a pool shares fate
across its workers — one hard crash poisons every queued task and the
recovery semantics of ``multiprocessing.Pool`` around a dead worker are
murky — while a process-per-job engine makes "this job's worker died"
a precise, retryable observation and lets a timeout kill exactly one
job.  The per-process overhead is irrelevant against cells that each
simulate millions of basic-block events.

``workers <= 1`` executes jobs inline in the parent (no subprocess at
all): this is the bit-identical serial reference path, where injected
crashes degrade to exceptions and timeouts cannot be enforced.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import JobError
from repro.jobs.checkpoint import CheckpointJournal
from repro.jobs.faults import FaultInjector
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.telemetry import (
    FleetTelemetry,
    activate_worker_telemetry,
    deactivate_worker_telemetry,
)

#: Scheduler poll interval while worker processes run, seconds.
_POLL_SECONDS = 0.005


def pick_mp_context(method: Optional[str] = None):
    """A spawn-safe multiprocessing context for worker processes.

    ``fork`` is preferred where the platform offers it and the parent
    is single-threaded (forking a multi-threaded process is undefined
    behaviour territory and deprecated from Python 3.12); otherwise
    ``spawn``, which every platform supports.  An explicit ``method``
    argument or the ``REPRO_MP_START_METHOD`` environment variable
    overrides the choice.
    """
    if method is None:
        method = os.environ.get("REPRO_MP_START_METHOD") or None
    if method is not None:
        return multiprocessing.get_context(method)
    if ("fork" in multiprocessing.get_all_start_methods()
            and threading.active_count() == 1):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class Job:
    """One schedulable unit: an id plus the picklable worker argument."""

    job_id: str
    payload: Any


@dataclass
class JobOutcome:
    """What happened to one job (result plus execution provenance)."""

    job_id: str
    result: Any
    attempts: int
    elapsed_seconds: float
    restored: bool = False


def _worker_entry(conn, worker, job_id: str, payload, attempt: int,
                  faults: Optional[FaultInjector],
                  telemetry_ring: int = 0) -> None:
    """Worker-process body: run one attempt, ship back (status, value).

    With ``telemetry_ring > 0``, a per-process recording bundle (event
    ring of that capacity) is activated for the attempt (the payload
    callable picks it up through
    :func:`repro.obs.telemetry.worker_observer`) and the finished
    :class:`~repro.obs.telemetry.TelemetryReport` rides back on the
    same pipe as a third tuple element.  Failed attempts ship no
    telemetry — only completed work counts, which keeps the parent's
    merged totals identical to the serial path, where retries also
    discard their partial recording.

    An injected hard crash exits here without sending anything — the
    parent observes a dead process with an empty pipe, exactly the
    signature of a real worker death.
    """
    report = None
    try:
        if telemetry_ring > 0:
            activate_worker_telemetry(telemetry_ring)
        if faults is not None:
            faults.apply(job_id, attempt, in_process=False)
        result = worker(payload)
        if telemetry_ring > 0:
            report = deactivate_worker_telemetry()
    except BaseException as exc:  # ship the failure, don't hang the parent
        deactivate_worker_telemetry()
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    if report is not None:
        conn.send(("ok", result, report.to_dict()))
    else:
        conn.send(("ok", result))
    conn.close()


@dataclass
class _Running:
    process: Any
    conn: Any
    job: Job
    attempt: int
    started: float
    deadline: Optional[float]


class JobEngine:
    """Schedule a bag of independent jobs with fault tolerance.

    ``max_retries`` bounds *re*-executions: a job may run at most
    ``max_retries + 1`` times before :class:`~repro.errors.JobError`
    aborts the run.  Retry delays grow geometrically from ``backoff``
    by ``backoff_factor`` per failed attempt.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        workers: int = 1,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        observer: Optional[Observer] = None,
        faults: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJournal] = None,
        mp_context: Optional[Any] = None,
        on_complete: Optional[Callable[[str, Any], None]] = None,
        telemetry: Optional[FleetTelemetry] = None,
    ) -> None:
        if max_retries < 0:
            raise JobError(f"max_retries must be >= 0, got {max_retries}")
        self.worker = worker
        self.workers = max(1, workers)
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.faults = faults
        self.checkpoint = checkpoint
        self._mp_context = mp_context
        #: Called in the parent as each job completes — the hook that
        #: lets callers persist results incrementally, so an aborted
        #: run keeps everything finished before the abort.
        self.on_complete = on_complete
        #: When set, each worker attempt records into a per-process
        #: telemetry bundle whose report is shipped back over the
        #: result pipe and merged here under job_id/worker labels.
        self.telemetry = telemetry

    # -- public ----------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> Dict[str, JobOutcome]:
        """Execute every job; outcomes keyed by id, in input order."""
        jobs = list(jobs)
        seen = set()
        for job in jobs:
            if job.job_id in seen:
                raise JobError(
                    f"duplicate job id {job.job_id!r}"
                ).with_context(job_id=job.job_id)
            seen.add(job.job_id)

        outcomes: Dict[str, JobOutcome] = {}
        todo: List[Job] = []
        restored = self.checkpoint.load() if self.checkpoint else {}
        for job in jobs:
            if job.job_id in restored:
                outcomes[job.job_id] = JobOutcome(
                    job.job_id, restored[job.job_id],
                    attempts=0, elapsed_seconds=0.0, restored=True,
                )
                self.obs.event("job_restored", 0, job_id=job.job_id)
            else:
                todo.append(job)
                self.obs.event("job_submitted", 0, job_id=job.job_id)

        if self.workers <= 1 or len(todo) <= 1:
            computed = self._run_serial(todo)
        else:
            computed = self._run_parallel(todo)
        outcomes.update(computed)
        # Input order, so downstream iteration matches the job list.
        return {job.job_id: outcomes[job.job_id] for job in jobs}

    # -- shared helpers --------------------------------------------------
    def _retry_delay(self, attempt: int) -> float:
        return self.backoff * (self.backoff_factor ** (attempt - 1))

    def _complete(self, job: Job, result: Any, attempt: int,
                  elapsed: float) -> JobOutcome:
        if self.checkpoint is not None:
            self.checkpoint.record(job.job_id, result)
        if self.on_complete is not None:
            self.on_complete(job.job_id, result)
        self.obs.event("job_completed", 0, job_id=job.job_id,
                       attempt=attempt, elapsed=round(elapsed, 6))
        return JobOutcome(job.job_id, result, attempts=attempt,
                          elapsed_seconds=elapsed)

    def _fail(self, job: Job, attempt: int, reason: str) -> JobError:
        self.obs.event("job_failed", 0, job_id=job.job_id,
                       attempts=attempt, reason=reason)
        return JobError(
            f"job {job.job_id!r} failed after {attempt} attempt(s): {reason}"
        ).with_context(job_id=job.job_id, attempts=attempt, reason=reason)

    def _note_retry(self, job: Job, attempt: int, reason: str,
                    delay: float) -> None:
        self.obs.event("job_retried", 0, job_id=job.job_id,
                       attempt=attempt, reason=reason,
                       delay=round(delay, 6))

    # -- serial (in-process) ---------------------------------------------
    def _run_serial(self, jobs: Sequence[Job]) -> Dict[str, JobOutcome]:
        outcomes: Dict[str, JobOutcome] = {}
        for job in jobs:
            attempt = 0
            started = time.monotonic()
            while True:
                attempt += 1
                try:
                    # Telemetry activates per *attempt*, exactly like a
                    # fresh worker process would, so a retried job's
                    # discarded partial recording matches the parallel
                    # path's (a crashed worker ships nothing back).
                    if self.telemetry is not None:
                        activate_worker_telemetry(
                            self.telemetry.ring_capacity
                        )
                    if self.faults is not None:
                        self.faults.apply(job.job_id, attempt,
                                          in_process=True)
                    result = self.worker(job.payload)
                except Exception as exc:
                    deactivate_worker_telemetry()
                    reason = f"{type(exc).__name__}: {exc}"
                    if attempt > self.max_retries:
                        raise self._fail(job, attempt, reason) from exc
                    delay = self._retry_delay(attempt)
                    self._note_retry(job, attempt, reason, delay)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if self.telemetry is not None:
                    report = deactivate_worker_telemetry()
                    if report is not None:
                        self.telemetry.absorb(
                            report, job_id=job.job_id,
                            worker=str(os.getpid()),
                        )
                outcomes[job.job_id] = self._complete(
                    job, result, attempt, time.monotonic() - started
                )
                break
        return outcomes

    # -- parallel (process-per-job) --------------------------------------
    def _spawn(self, context, job: Job, attempt: int) -> _Running:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_entry,
            args=(child_conn, self.worker, job.job_id, job.payload,
                  attempt, self.faults,
                  self.telemetry.ring_capacity
                  if self.telemetry is not None else 0),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Running(process, parent_conn, job, attempt, now, deadline)

    def _run_parallel(self, jobs: Sequence[Job]) -> Dict[str, JobOutcome]:
        context = self._mp_context or pick_mp_context()
        outcomes: Dict[str, JobOutcome] = {}
        # (job, next_attempt, eligible_at): retries wait out their
        # backoff here without stalling the scheduler.
        queue: List[tuple] = [(job, 1, 0.0) for job in jobs]
        running: List[_Running] = []
        failure: Optional[JobError] = None
        try:
            while queue or running:
                now = time.monotonic()
                # Launch whatever fits and is past its backoff window.
                launchable = [entry for entry in queue if entry[2] <= now]
                while launchable and len(running) < self.workers:
                    entry = launchable.pop(0)
                    queue.remove(entry)
                    job, attempt, _ = entry
                    running.append(self._spawn(context, job, attempt))

                finished: List[_Running] = []
                for item in running:
                    # Liveness BEFORE poll: a worker that sends its result
                    # and exits between the two checks must not read as a
                    # crash.  Writes happen before exit, so once a process
                    # is observed dead, anything it sent is already in the
                    # pipe — dead + empty pipe is a true crash signature.
                    dead = not item.process.is_alive()
                    message = None
                    if item.conn.poll():
                        try:
                            message = item.conn.recv()
                        except (EOFError, OSError):
                            message = None
                    if message is not None:
                        # 2-tuple (status, value), or 3-tuple with the
                        # worker's telemetry report appended.
                        status, value = message[0], message[1]
                        item.process.join()
                        item.conn.close()
                        finished.append(item)
                        elapsed = now - item.started
                        if status == "ok":
                            if self.telemetry is not None and len(message) > 2:
                                self.telemetry.absorb(
                                    message[2], job_id=item.job.job_id,
                                    worker=str(item.process.pid),
                                )
                            outcomes[item.job.job_id] = self._complete(
                                item.job, value, item.attempt, elapsed
                            )
                        else:
                            failure = self._handle_failure(
                                item, str(value), queue
                            )
                    elif dead:
                        item.process.join()
                        item.conn.close()
                        finished.append(item)
                        failure = self._handle_failure(
                            item,
                            "worker crashed "
                            f"(exit code {item.process.exitcode})", queue
                        )
                    elif item.deadline is not None and now > item.deadline:
                        item.process.terminate()
                        item.process.join()
                        item.conn.close()
                        finished.append(item)
                        failure = self._handle_failure(
                            item,
                            f"timeout after {self.timeout:.3f}s", queue
                        )
                    if failure is not None:
                        raise failure
                for item in finished:
                    running.remove(item)
                if running and not finished:
                    # Block until any worker pipe is readable (or a
                    # short tick elapses so timeouts stay responsive).
                    multiprocessing.connection.wait(
                        [item.conn for item in running],
                        timeout=_POLL_SECONDS,
                    )
                elif queue and not running:
                    soonest = min(entry[2] for entry in queue)
                    wait = soonest - time.monotonic()
                    if wait > 0:
                        time.sleep(min(wait, 0.05))
        finally:
            for item in running:
                if item.process.is_alive():
                    item.process.terminate()
                item.process.join()
        return outcomes

    def _handle_failure(self, item: _Running, reason: str,
                        queue: List[tuple]) -> Optional[JobError]:
        """Requeue a failed attempt, or return the terminal JobError."""
        if item.attempt > self.max_retries:
            return self._fail(item.job, item.attempt, reason)
        delay = self._retry_delay(item.attempt)
        self._note_retry(item.job, item.attempt, reason, delay)
        queue.append((item.job, item.attempt + 1,
                      time.monotonic() + delay))
        return None
