"""Fault-tolerant job engine for experiment sweeps.

The (benchmark x selector) grid behind every figure is a bag of
independent, deterministic jobs; :mod:`repro.jobs` schedules such bags
over a process pool with the properties a twenty-million-event sweep
needs in practice:

* **per-job timeout** — a wedged worker is killed and the job retried;
* **bounded retry with backoff** — a crashed worker (nonzero exit, OOM
  kill, injected fault) costs one cell's work, not the sweep;
* **checkpoint/resume** — completed jobs are journaled as they finish,
  so an interrupted run restarts only its missing jobs;
* **fault injection** — :class:`~repro.jobs.faults.FaultInjector`
  deterministically crashes, hangs or errors chosen attempts, making
  the failure paths testable;
* **lifecycle events** — ``job_submitted`` / ``job_completed`` /
  ``job_retried`` / ``job_failed`` / ``job_restored`` through the
  :mod:`repro.obs` Observer.

See ``docs/experiments.md`` for the full semantics.
"""

from repro.jobs.checkpoint import CheckpointJournal
from repro.jobs.engine import Job, JobEngine, JobOutcome, pick_mp_context
from repro.jobs.faults import FaultInjector, InjectedFault

__all__ = [
    "CheckpointJournal",
    "FaultInjector",
    "InjectedFault",
    "Job",
    "JobEngine",
    "JobOutcome",
    "pick_mp_context",
]
