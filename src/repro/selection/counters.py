"""Profiling counter table with recycling and high-water tracking.

Counter memory is a first-class cost in the paper: NET's strength is
needing counters only for a subset of branch targets, and Figure 10
shows LEI needs only about two-thirds of NET's peak counter count
because it is more restrictive still.  The table therefore tracks the
maximum number of counters simultaneously live (``peak``), and exposes
``release`` for the threshold-reached recycling both algorithms do
("once a counter reaches the threshold value it can be reused for
another branch target", Section 3.2.4).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)


class CounterTable(Generic[K]):
    """Map of live profiling counters keyed by branch target."""

    def __init__(self) -> None:
        self._counters: Dict[K, int] = {}
        #: Highest number of simultaneously live counters ever observed.
        self.peak = 0
        #: Total counters ever allocated (diagnostic).
        self.allocations = 0

    def increment(self, key: K) -> int:
        """Bump (allocating if needed) and return the counter for ``key``."""
        value = self._counters.get(key)
        if value is None:
            self.allocations += 1
            value = 0
            self._counters[key] = 0
            live = len(self._counters)
            if live > self.peak:
                self.peak = live
        value += 1
        self._counters[key] = value
        return value

    def get(self, key: K) -> int:
        """Current value for ``key`` (0 when no counter is live)."""
        return self._counters.get(key, 0)

    def is_live(self, key: K) -> bool:
        return key in self._counters

    def release(self, key: K) -> None:
        """Recycle the counter for ``key`` (idempotent)."""
        self._counters.pop(key, None)

    @property
    def live(self) -> int:
        """Number of currently live counters."""
        return len(self._counters)
