"""The selector interface the simulator drives.

A selector sees exactly what a software dynamic optimizer sees:

* every *interpreted* step (so trace recorders can follow the
  interpreted path),
* every interpreted *taken branch whose target is not cached* (the
  INTERPRETED-BRANCH-TAKEN entry point of Figures 5 and 13),
* every *exit from the code cache* back to the interpreter (exit
  targets are start candidates in both NET and LEI).

It never sees execution inside the cache — by construction, a selection
algorithm only pays overhead while interpreting (Section 3.1 argues
both NET's and LEI's overhead is constant per interpreted taken
branch).
"""

from __future__ import annotations

import abc
from typing import Optional, TYPE_CHECKING

from repro.cache.codecache import CodeCache
from repro.cache.region import Region
from repro.execution.events import Step
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover
    pass


class RegionSelector(abc.ABC):
    """Interface between the simulator and a selection algorithm."""

    #: Short machine name ("net", "lei", "combined-net", "combined-lei").
    name: str = "abstract"

    def __init__(self, cache: CodeCache, config: SystemConfig) -> None:
        self.cache = cache
        self.config = config
        #: Observability handle; the simulator rebinds it to the run's
        #: observer.  Selectors gate event emission on
        #: ``self.obs.events_enabled`` so a disabled observer costs
        #: nothing on the decision path.  The current simulation step
        #: for event timestamps is ``self.cache.now``.
        self.obs: Observer = NULL_OBSERVER

    # -- simulator callbacks --------------------------------------------
    def observe_interpreted(self, step: Step) -> None:
        """Called for *every* interpreted step, taken or not.

        Recorders that copy the next-executing path (NET trace
        formation, combined-NET observation) are fed here.  Called
        before cache lookup for the step's transfer, so a recorder sees
        the branch that enters the cache and can terminate on it.
        """

    @abc.abstractmethod
    def on_interpreted_taken(self, step: Step) -> Optional[Region]:
        """An interpreted taken branch whose target is not cached.

        May install regions as a side effect.  Returning a region makes
        the simulator enter it immediately (LEI's ``jump newT``);
        returning ``None`` keeps interpreting.
        """

    def on_cache_enter(self, step: Step) -> None:
        """An interpreted taken branch just entered a cached region.

        Figure 5 lines 1-3 jump without profiling, so no counters move
        here; LEI overrides this to record the branch as a *boundary*
        entry in its history buffer.  Without it the buffer would have a
        silent gap across every cache stint and FORM-TRACE's
        fall-through reconstruction could stitch together a path that
        never executed.
        """

    def on_cache_exit(self, step: Step, region: Region) -> None:
        """Control left ``region`` to the interpreter via ``step``.

        The exit target is a region-start candidate in both NET
        ("an exit from an existing trace") and LEI ("follows an exit
        from the code cache").
        """

    def finish(self) -> None:
        """The stream ended; abandon any in-flight recording state."""

    # -- optional raw fast hooks ----------------------------------------
    # A selector may ship allocation-free variants of its step hooks
    # under ``<hook>_raw``, taking the raw ``(block, taken, target)``
    # triple instead of a ``Step`` record.  The fused fast path calls
    # the raw variant when the class that provides the ``Step`` hook in
    # the MRO also provides the raw one (so a subclass overriding just
    # the ``Step`` hook is never bypassed); the reference pipeline
    # always uses the ``Step`` hooks.  A raw variant must be
    # behaviourally identical to its ``Step`` twin — the bit-identity
    # suite in ``tests/test_fast_path.py`` holds the two pipelines
    # equal over every (benchmark × selector) cell.
    on_interpreted_taken_raw = None
    on_cache_enter_raw = None

    # -- dispatch-compilation contract ----------------------------------
    # The fused fast path compiles every resident region into a flat
    # walk table at install time and *link-patches* region exits whose
    # target is another resident region's entry
    # (:mod:`repro.cache.dispatch`).  A patched transition chains
    # region-to-region without a cache lookup — and therefore without
    # calling ``on_cache_exit`` / ``on_cache_enter``, exactly like the
    # reference pipeline, which never surfaces cached-to-cached
    # transfers to the selector either.  Selectors must not assume they
    # see every region transition; they see only genuine cache exits to
    # the interpreter and interpreted entries, same as before.

    # -- observability helpers ------------------------------------------
    def _reject(self, head, reason: str) -> None:
        """Account one abandoned region candidate (``region_rejected``).

        ``head`` is the candidate's entry block.  No-op overheadwise
        when the observer is disabled.
        """
        obs = self.obs
        if obs.metrics is not None:
            obs.count("regions_rejected_total", reason=reason)
        if obs.events_enabled:
            obs.emit(
                "region_rejected",
                self.cache.now,
                entry=head.full_label,
                reason=reason,
            )

    # -- profiling-memory accounting ------------------------------------
    @property
    @abc.abstractmethod
    def peak_counters(self) -> int:
        """Maximum number of profiling counters live at once (Figure 10)."""

    @property
    def peak_observed_trace_bytes(self) -> int:
        """Peak memory holding observed traces (Figure 18); 0 for
        plain trace selectors."""
        return 0
