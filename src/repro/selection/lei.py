"""Last-Executed Iteration (LEI) trace selection (Section 3, Figs. 5-6).

LEI keeps a history buffer of the most recently interpreted taken
branches.  When a branch target already sits in the buffer, a *cycle*
has just executed and the buffer holds its exact path.  If the cycle
closed with a backward branch — or started right after an exit from the
code cache — the target's counter is bumped, and at the threshold the
cycle's path (the *last executed iteration*) is reconstructed from the
buffer, installed as a trace, and jumped into immediately.

Unlike NET, the reconstruction (FORM-TRACE, Figure 6) walks branches
that may point in any direction, so an LEI trace can span
interprocedural cycles — crossing a call *and* its matching return —
and it stops as soon as the path reaches a block that already starts a
region, even on a fall-through path, which is how LEI avoids
duplicating the first iteration of an inner cycle.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Set, Tuple

from repro.cache.codecache import CodeCache
from repro.cache.region import Region, TraceRegion
from repro.execution.events import Step
from repro.program.cfg import BasicBlock
from repro.selection.base import RegionSelector
from repro.selection.counters import CounterTable
from repro.selection.history import BranchHistoryBuffer, HistoryEntry
from repro.config import SystemConfig


class FormedPath(NamedTuple):
    """Result of FORM-TRACE: the block path plus its ending transfer."""

    blocks: Tuple[BasicBlock, ...]
    #: Block the path's final branch targets; equal to ``blocks[0]``
    #: when the path closed its own cycle, some other in-path block for
    #: an inner-cycle closure, an existing region's entry when the walk
    #: stopped there, or ``None`` when cut by a size limit.
    final_target: Optional[BasicBlock]


def form_trace(
    buffer: BranchHistoryBuffer,
    start: BasicBlock,
    old_seq: int,
    cache: CodeCache,
    config: SystemConfig,
) -> Optional[FormedPath]:
    """FORM-TRACE (Figure 6): reconstruct the just-executed cycle.

    Walks the taken branches recorded after ``old_seq``; between
    consecutive branches the executed path is the static fall-through
    chain from the previous branch's target to the next branch's source.
    Returns ``None`` when the buffer does not describe a consistent path
    (possible only after truncation races; counted by the caller).
    """
    blocks: List[BasicBlock] = []
    block_set: Set[BasicBlock] = set()
    instructions = 0
    prev = start
    max_blocks = config.max_trace_blocks
    max_instructions = config.max_trace_instructions

    for branch in buffer.entries_after(old_seq):
        # Copy the fall-through path from `prev` up to the branch source.
        block: Optional[BasicBlock] = prev
        while True:
            if block is None:
                return None  # inconsistent chain; abandon
            if block is not branch.src and not block.terminator.kind.may_fall_through:
                # The chain claims execution fell through a block that
                # always branches: the buffer has a gap (e.g. it was
                # truncated or entries were evicted mid-cycle).
                return None
            if block in block_set:
                # Reached a block already in the path without a branch:
                # close there (set semantics of Figure 6's newTrace).
                return FormedPath(tuple(blocks), block)
            if blocks and cache.contains_entry(block):
                # Figure 6 line 7: stop if the next instruction begins a
                # trace — the path ends just before the existing region.
                return FormedPath(tuple(blocks), block)
            blocks.append(block)
            block_set.add(block)
            instructions += block.instruction_count
            if len(blocks) >= max_blocks or instructions >= max_instructions:
                return FormedPath(tuple(blocks), None)
            if block is branch.src:
                break
            block = block.fallthrough
        # Figure 6 line 12: stop when the branch completes a cycle.
        if branch.target in block_set:
            return FormedPath(tuple(blocks), branch.target)
        prev = branch.target

    # The walk should always end at a cycle-closing branch (the newest
    # entry targets `start`); falling out means the buffer was truncated
    # under us.
    return None


class LEISelector(RegionSelector):
    """The LEI selector (Figure 5's INTERPRETED-BRANCH-TAKEN)."""

    name = "lei"

    def __init__(self, cache: CodeCache, config: SystemConfig) -> None:
        super().__init__(cache, config)
        self.buffer = BranchHistoryBuffer(config.history_buffer_size)
        self.counters: CounterTable[BasicBlock] = CounterTable()
        # Hot-path caches: SystemConfig is frozen and both properties
        # derive from it alone, so snapshotting them here is safe (and
        # `trigger_count` dispatches virtually, picking up the combined
        # selector's override).
        self._allow_exit_cycles = config.lei_allow_exit_cycles
        self._trigger_count = self.trigger_count
        # Diagnostics.
        self.traces_installed = 0
        self.formations_abandoned = 0

    @property
    def threshold(self) -> int:
        return self.config.lei_threshold

    @property
    def trigger_count(self) -> int:
        """Counter value at which :meth:`_select_at_threshold` fires.

        Plain LEI selects exactly at the threshold (Figure 5 line 11's
        ``c = T_cyc``).  Combined LEI overrides this to fire on every
        count *above* ``T_start`` (Figure 13 line 7's ``c > T_start``).
        """
        return self.threshold

    # ------------------------------------------------------------------
    def on_interpreted_taken(self, step: Step) -> Optional[Region]:
        return self._process_taken_branch(
            step.block, step.taken, step.target, False)

    def on_cache_enter(self, step: Step) -> None:
        self.on_cache_enter_raw(step.block, step.taken, step.target)

    def on_cache_enter_raw(
        self, block: BasicBlock, taken: bool, target: Optional[BasicBlock]
    ) -> None:
        # Record the cache-entering branch as a plain history entry (no
        # cycle detection, no counters — Figure 5 would have jumped at
        # line 3).  This keeps the buffer gap-free: a later FORM-TRACE
        # walk that reaches the entered region's head stops there via
        # the existing-region check (Figure 6 line 7) instead of
        # reconstructing a path across the cache stint.
        if target is None:
            return
        self.buffer.record(block, target, follows_exit=False)

    def on_cache_exit(self, step: Step, region: Region) -> None:
        # The exiting branch enters the history buffer flagged as
        # following a code-cache exit; a later cycle whose previous
        # occurrence is this entry may then start a trace even if it
        # closes with a forward branch ("grow from an existing trace").
        self._process_taken_branch(step.block, step.taken, step.target, True)

    def _process_taken_branch(
        self,
        block: BasicBlock,
        taken: bool,
        target: Optional[BasicBlock],
        follows_exit: bool = False,
    ) -> Optional[Region]:
        if target is None:
            return None
        # Figure 5 lines 5-8/16: hash lookup, buffer insert, hash
        # update — fused into one call on the per-branch hot path.
        old, _entry = self.buffer.record(block, target, follows_exit)
        if old is None:
            return None
        # Figure 5 line 9: can this cycle begin a trace?  The backward
        # test is ``Step.is_backward`` inlined (the step is known taken
        # with a non-None target on the first leg, so only the address
        # compare remains; on-exit steps may be fall-throughs, hence
        # the explicit ``taken`` check).
        if not (
            (taken and target.address <= block.end_address)
            or (old.follows_exit and self._allow_exit_cycles)
        ):
            return None
        if self.counters.increment(target) < self._trigger_count:  # lines 10-11
            return None
        return self._select_at_threshold(target, old)

    #: Fused-loop fast hook: ``on_interpreted_taken`` on the raw
    #: ``(block, taken, target)`` triple, skipping the ``Step`` record
    #: (see ``RegionSelector`` for the protocol).
    on_interpreted_taken_raw = _process_taken_branch

    # ------------------------------------------------------------------
    def _select_at_threshold(
        self, target: BasicBlock, old: HistoryEntry
    ) -> Optional[Region]:
        """Threshold reached: form, install and jump (Figure 5 lines 12-15).

        Overridden by combined LEI, which observes traces instead of
        installing the first one.
        """
        formed = form_trace(self.buffer, target, old.seq, self.cache, self.config)
        self.buffer.truncate_after(old.seq)  # line 13
        self.counters.release(target)  # line 14
        obs = self.obs
        if obs.events_enabled:
            obs.emit(
                "history_cleared",
                self.cache.now,
                target=target.full_label,
                kept_seq=old.seq,
            )
        if formed is None or self.cache.contains_entry(target):
            self.formations_abandoned += 1
            self._reject(
                target,
                "inconsistent_history" if formed is None
                else "entry_already_cached",
            )
            return None
        if formed.final_target is None and obs.events_enabled:
            # FORM-TRACE only returns a targetless path when a size
            # limit cut the walk short.
            obs.emit(
                "trace_truncated",
                self.cache.now,
                entry=target.full_label,
                blocks=len(formed.blocks),
                instructions=sum(b.instruction_count for b in formed.blocks),
            )
        with obs.span("region_build"):
            region = TraceRegion(formed.blocks, formed.final_target)
            self.cache.insert(region)
        self.traces_installed += 1
        return region  # line 15: jump newT

    # ------------------------------------------------------------------
    @property
    def peak_counters(self) -> int:
        return self.counters.peak

    def diagnostics(self) -> dict:
        return {
            "traces_installed": self.traces_installed,
            "formations_abandoned": self.formations_abandoned,
            "counter_allocations": self.counters.allocations,
        }
