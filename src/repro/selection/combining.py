"""Trace combination (Section 4.2, Figure 13) over NET and LEI.

Trace combination lowers the base algorithm's start threshold to
``T_start`` and then *observes* the traces the base algorithm would
have formed on each of the next ``T_prof`` executions of the target,
storing each in the Figure 14 compact form.  On the last observation
the traces are combined into an observed CFG (Section 4.2.2), blocks
occurring in at least ``T_min`` traces are marked, rejoining paths are
marked (Figure 15), unmarked blocks are pruned, exits that target
in-region blocks become internal edges (handled by
:class:`~repro.cache.region.CFGRegion`), and the resulting multi-path
region is installed.

Threshold bookkeeping follows Section 4.3: with ``T_prof = 15``,
combined NET uses ``T_start = 35`` (region complete after the same 50
interpreted executions as NET) and combined LEI uses ``T_start = 20``
(complete after 35, like LEI).

Profiling memory: the peak total byte size of stored compact traces is
tracked for the Figure 18 measurement.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.codecache import CodeCache
from repro.cache.region import CFGRegion, Region
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.selection.compact import CompactTrace
from repro.selection.history import HistoryEntry
from repro.selection.lei import LEISelector, form_trace
from repro.selection.marking import mark_rejoining_paths
from repro.selection.net import NETSelector, TraceRecorder
from repro.selection.region_cfg import build_observed_cfg
from repro.config import SystemConfig


class _ObservedTraceStore:
    """Per-target compact trace storage with peak-memory accounting."""

    def __init__(self) -> None:
        self._by_target: Dict[BasicBlock, List[CompactTrace]] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.traces_stored = 0

    def add(self, target: BasicBlock, trace: CompactTrace) -> int:
        traces = self._by_target.setdefault(target, [])
        traces.append(trace)
        self.traces_stored += 1
        self.current_bytes += trace.byte_size
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        return len(traces)

    def count(self, target: BasicBlock) -> int:
        return len(self._by_target.get(target, ()))

    def pop_all(self, target: BasicBlock) -> List[CompactTrace]:
        traces = self._by_target.pop(target, [])
        self.current_bytes -= sum(t.byte_size for t in traces)
        return traces

    @property
    def targets_in_flight(self) -> int:
        return len(self._by_target)


class _CombinationMixin:
    """Shared combination machinery for the two combined selectors.

    Requires the host selector to provide ``cache``, ``config`` and a
    ``program`` attribute.
    """

    cache: CodeCache
    config: SystemConfig
    program: Program

    def _init_combination(self, program: Program) -> None:
        self.program = program
        self.store = _ObservedTraceStore()
        self.regions_combined = 0
        self.marking_extra_sweeps = 0
        self.combinations_abandoned = 0

    def _combine_and_install(self, target: BasicBlock) -> Optional[Region]:
        """Figure 13 lines 12-17: combine observed traces into a region."""
        obs = self.obs
        compact_traces = self.store.pop_all(target)
        if not compact_traces or self.cache.contains_entry(target):
            self.combinations_abandoned += 1
            reason = (
                "no_observed_traces" if not compact_traces
                else "entry_already_cached"
            )
            if obs.metrics is not None:
                obs.count("combine_attempts_total", outcome="abandoned")
            if obs.events_enabled:
                obs.emit(
                    "combine_attempted",
                    self.cache.now,
                    target=target.full_label,
                    traces=len(compact_traces),
                    outcome=reason,
                )
            self._reject(target, reason)
            return None
        with obs.span("region_build"):
            decoded = [trace.decode(self.program) for trace in compact_traces]
            cfg = build_observed_cfg(target, decoded)
            marked = cfg.blocks_with_count_at_least(self.config.combine_t_min)
            marking = mark_rejoining_paths(cfg, marked)
            self.marking_extra_sweeps += marking.extra_marking_sweeps
            kept = marking.marked
            edges = {
                (src, dst)
                for src, dst in cfg.edges
                if src in kept and dst in kept
            }
            region = CFGRegion(target, kept, edges)
            self.cache.insert(region)
        self.regions_combined += 1
        if obs.metrics is not None:
            obs.count("combine_attempts_total", outcome="installed")
        if obs.events_enabled:
            obs.emit(
                "combine_attempted",
                self.cache.now,
                target=target.full_label,
                traces=len(compact_traces),
                outcome="installed",
                observed_blocks=cfg.block_count,
                kept_blocks=len(kept),
                pruned_blocks=cfg.block_count - len(kept),
            )
        return region

    @property
    def peak_observed_trace_bytes(self) -> int:
        return self.store.peak_bytes

    def _combination_diagnostics(self) -> dict:
        return {
            "regions_combined": self.regions_combined,
            "traces_observed": self.store.traces_stored,
            "combinations_abandoned": self.combinations_abandoned,
            "marking_extra_sweeps": self.marking_extra_sweeps,
        }


class CombinedNETSelector(_CombinationMixin, NETSelector):
    """Trace combination over NET observed traces.

    Observation recorders reuse NET's next-executing-tail recorder;
    because a recorder follows the live interpreted stream, the final
    (``T_prof``-th) observation completes slightly after the triggering
    execution, and the region is installed the moment it does.
    """

    name = "combined-net"

    def __init__(
        self, cache: CodeCache, config: SystemConfig, program: Program
    ) -> None:
        NETSelector.__init__(self, cache, config)
        self._init_combination(program)

    @property
    def threshold(self) -> int:
        # The NET counter machinery fires _start_recording at T_start.
        return self.config.combined_net_t_start

    def _bump(self, target: BasicBlock) -> None:
        # Unlike plain NET the counter is NOT released at the start
        # threshold: it keeps counting through the profiling window and
        # is recycled when the region is formed (Figure 13 line 11).
        count = self.counters.increment(target)
        if count > self.threshold:
            self._start_recording(target)

    def _install_trace(self, recorder: TraceRecorder) -> None:
        """An observation completed: store it; combine on the last one."""
        stored = self.store.add(recorder.head, CompactTrace.encode(recorder.blocks))
        if stored >= self.config.combine_t_prof:
            self.counters.release(recorder.head)
            self._eligible.discard(recorder.head)
            self._combine_and_install(recorder.head)

    def finish(self) -> None:
        NETSelector.finish(self)
        # Targets still profiling when the stream ends never form a
        # region, exactly like a counter that never reached threshold.

    def diagnostics(self) -> dict:
        data = NETSelector.diagnostics(self)
        data.update(self._combination_diagnostics())
        return data


class CombinedLEISelector(_CombinationMixin, LEISelector):
    """Trace combination over LEI observed traces.

    LEI forms a trace instantaneously from the history buffer, so each
    qualifying cycle completion in the profiling window stores one
    observed trace, and the ``T_prof``-th completion combines and jumps
    straight into the new region — preserving LEI's ``jump newT``
    behaviour for the combined region.
    """

    name = "combined-lei"

    def __init__(
        self, cache: CodeCache, config: SystemConfig, program: Program
    ) -> None:
        LEISelector.__init__(self, cache, config)
        self._init_combination(program)

    @property
    def threshold(self) -> int:
        return self.config.combined_lei_t_start

    @property
    def trigger_count(self) -> int:
        # Figure 13 line 7: observe on every execution with c > T_start.
        return self.threshold + 1

    def _select_at_threshold(
        self, target: BasicBlock, old: HistoryEntry
    ) -> Optional[Region]:
        # Counter value is > T_start here (the LEI machinery calls this
        # once the counter reaches `threshold`, and we keep counting).
        formed = form_trace(self.buffer, target, old.seq, self.cache, self.config)
        if formed is None:
            self.formations_abandoned += 1
            self._reject(target, "inconsistent_history")
            return None
        stored = self.store.add(target, CompactTrace.encode(formed.blocks))
        if stored < self.config.combine_t_prof:
            # Keep observing: the buffer is left intact so later cycles
            # at this target keep completing against fresh occurrences.
            return None
        # Final observation: form the region and jump into it.
        self.buffer.truncate_after(old.seq)
        self.counters.release(target)
        if self.obs.events_enabled:
            self.obs.emit(
                "history_cleared",
                self.cache.now,
                target=target.full_label,
                kept_seq=old.seq,
            )
        return self._combine_and_install(target)

    def diagnostics(self) -> dict:
        data = LEISelector.diagnostics(self)
        data.update(self._combination_diagnostics())
        return data
