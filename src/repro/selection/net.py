"""Next-Executing Tail (NET) trace selection — the baseline (Section 2.1).

NET profiles two kinds of branch targets: targets of taken *backward*
branches (likely loop headers) and targets of *exits from existing
traces*.  When a target's execution counter reaches the threshold
(50 by default), NET records the path executed *next*: the trace grows
along the interpreted path — through fall-throughs and taken forward
branches, across procedure calls and returns — and ends when

* a backward branch is taken (which is also why a NET trace can never
  span an interprocedural cycle: a backward call or return ends it),
* a taken branch targets the start of another trace, or
* the size limit is reached.

Recording is asynchronous with respect to profiling: the recorder
simply watches the interpreted step stream, so several recordings (for
different targets) can be in flight at once.  Executions of a target
that is currently being recorded are ignored — in the real system the
interpreter is busy copying that very path.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.cache.codecache import CodeCache
from repro.cache.region import TraceRegion
from repro.execution.events import Step
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.selection.base import RegionSelector
from repro.selection.counters import CounterTable
from repro.config import SystemConfig


class TraceRecorder:
    """Copies the next-executing path starting at ``head``.

    Fed one interpreted step at a time; reports completion through its
    return value.  ``final_target`` ends up holding the block the
    trace-ending taken branch targets (``None`` when the trace was cut
    by the size limit or the end of the stream), which is what decides
    whether the trace spans a cycle.
    """

    __slots__ = (
        "head", "blocks", "instructions", "final_target", "done", "truncated",
    )

    def __init__(self, head: BasicBlock) -> None:
        self.head = head
        self.blocks: List[BasicBlock] = []
        self.instructions = 0
        self.final_target: Optional[BasicBlock] = None
        self.done = False
        #: True when the recording was cut by a size limit rather than
        #: ended by a trace-ending branch (observability: the
        #: ``trace_truncated`` event).
        self.truncated = False

    def feed(self, step: Step, cache: CodeCache, config: SystemConfig) -> bool:
        """Consume one interpreted step; return True when recording ends."""
        block = step.block
        if not self.blocks and block is not self.head:
            # The stream diverged before the head executed (can only
            # happen if the triggering branch entered the cache after
            # all); abandon the recording.
            self.done = True
            return True
        self.blocks.append(block)
        self.instructions += block.instruction_count

        if step.target is None:
            # Program ended mid-trace; keep what we have.
            self.done = True
            return True
        if step.taken:
            backward_ends = step.is_backward and (
                config.net_stop_at_backward_calls
                or block.terminator.kind not in (BranchKind.CALL, BranchKind.RETURN)
                # Even with the rule relaxed, a branch back to the
                # trace's own head always ends it (the cycle is closed).
                or step.target is self.head
            )
            if backward_ends or cache.contains_entry(step.target):
                # Trace ends *with* this block; the branch target tells
                # us whether the trace closed its own cycle.
                self.final_target = step.target
                self.done = True
                return True
        if (
            len(self.blocks) >= config.max_trace_blocks
            or self.instructions >= config.max_trace_instructions
        ):
            self.final_target = step.target if step.taken else None
            self.done = True
            self.truncated = True
            return True
        return False


class NETSelector(RegionSelector):
    """The NET baseline selector."""

    name = "net"

    def __init__(self, cache: CodeCache, config: SystemConfig) -> None:
        super().__init__(cache, config)
        self.counters: CounterTable[BasicBlock] = CounterTable()
        #: Targets allowed to begin a region (backward-branch targets
        #: and cache-exit targets seen so far).
        self._eligible: Set[BasicBlock] = set()
        self._recorders: List[TraceRecorder] = []
        self._recording_heads: Set[BasicBlock] = set()
        #: Diagnostics.
        self.traces_installed = 0
        self.recordings_abandoned = 0

    # -- profiling -------------------------------------------------------
    @property
    def threshold(self) -> int:
        return self.config.net_threshold

    def interp_quiescent(self) -> bool:
        """True while no recording is in flight.

        Every ``observe_interpreted`` call would return immediately, so
        a batched pipeline may advance whole constant-decision interp
        spans without feeding the step stream.  Sound because recorders
        only ever start inside ``on_interpreted_taken`` /
        ``on_cache_exit`` — taken branches and cache exits, which by
        construction never occur inside a never-taken span.
        """
        return not self._recorders

    def observe_interpreted(self, step: Step) -> None:
        if not self._recorders:
            return
        still_active: List[TraceRecorder] = []
        for recorder in self._recorders:
            if recorder.feed(step, self.cache, self.config):
                self._complete_recording(recorder)
            else:
                still_active.append(recorder)
        self._recorders = still_active

    def on_interpreted_taken(self, step: Step):
        target = step.target
        if target is None or target in self._recording_heads:
            return None
        if step.is_backward:
            self._eligible.add(target)
        elif target not in self._eligible:
            return None
        self._bump(target)
        return None

    def on_cache_exit(self, step: Step, region) -> None:
        target = step.target
        if target is None or target in self._recording_heads:
            return
        self._eligible.add(target)
        self._bump(target)

    def _bump(self, target: BasicBlock) -> None:
        """Count one execution of an eligible target."""
        if self.counters.increment(target) >= self.threshold:
            self.counters.release(target)
            self._eligible.discard(target)
            self._start_recording(target)

    # -- trace recording --------------------------------------------------
    def _start_recording(self, head: BasicBlock) -> None:
        self._recording_heads.add(head)
        self._recorders.append(TraceRecorder(head))

    def _complete_recording(self, recorder: TraceRecorder) -> None:
        self._recording_heads.discard(recorder.head)
        obs = self.obs
        if recorder.truncated and obs.events_enabled:
            obs.emit(
                "trace_truncated",
                self.cache.now,
                entry=recorder.head.full_label,
                blocks=len(recorder.blocks),
                instructions=recorder.instructions,
            )
        if not recorder.blocks or self.cache.contains_entry(recorder.head):
            self.recordings_abandoned += 1
            self._reject(
                recorder.head,
                "stream_diverged" if not recorder.blocks
                else "entry_already_cached",
            )
            return
        self._install_trace(recorder)

    def _install_trace(self, recorder: TraceRecorder) -> None:
        """Turn a completed recording into a cached region.

        Separated so the combining subclass can store an observed trace
        instead of installing it.
        """
        with self.obs.span("region_build"):
            self.cache.insert(
                TraceRegion(recorder.blocks, recorder.final_target)
            )
        self.traces_installed += 1

    def finish(self) -> None:
        # In-flight recordings die with the stream; install nothing from
        # them (a real system would have kept running).
        self.recordings_abandoned += len(self._recorders)
        for recorder in self._recorders:
            self._reject(recorder.head, "stream_ended")
        self._recorders.clear()
        self._recording_heads.clear()

    # -- accounting --------------------------------------------------------
    @property
    def peak_counters(self) -> int:
        return self.counters.peak

    def diagnostics(self) -> dict:
        return {
            "traces_installed": self.traces_installed,
            "recordings_abandoned": self.recordings_abandoned,
            "counter_allocations": self.counters.allocations,
        }
