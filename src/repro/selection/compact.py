"""COMPACT-TRACE (Figure 14): two-bits-per-branch trace storage.

Trace combination must hold up to ``T_prof`` observed traces per
profiled target, possibly for many targets at once, so observed traces
are stored as branch-outcome bitstrings rather than block lists:

* ``10`` — conditional branch not taken (fall through),
* ``11`` — branch taken, target known from the instruction,
* ``01`` — branch taken, target *not* known from the instruction
  (indirect jump or return), followed by the 64-bit target address,
* ``00`` — end of trace, followed by the 64-bit address of the trace's
  last instruction.

Decoding walks the program image from the trace entrance: each record
selects the next block statically (fall-through successor or encoded
taken target), exactly as an optimizer that "must already decode each
instruction and identify all branch targets" would (Section 4.2.1).
The byte size of the bitstring is what the Figure 18 profiling-memory
measurement charges.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import TraceFormatError
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.program.program import Program

_ADDRESS_BITS = 64


class _BitWriter:
    """Append-only bitstring builder (MSB-first within each byte)."""

    __slots__ = ("_bytes", "_bit_length")

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_length = 0

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            bit = (value >> shift) & 1
            offset = self._bit_length & 7
            if offset == 0:
                self._bytes.append(0)
            if bit:
                self._bytes[-1] |= 0x80 >> offset
            self._bit_length += 1

    @property
    def bit_length(self) -> int:
        return self._bit_length

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class _BitReader:
    """Sequential bitstring reader matching :class:`_BitWriter`."""

    __slots__ = ("_data", "_cursor", "_bit_length")

    def __init__(self, data: bytes, bit_length: int) -> None:
        self._data = data
        self._cursor = 0
        self._bit_length = bit_length

    def read_bits(self, width: int) -> int:
        if self._cursor + width > self._bit_length:
            raise TraceFormatError("compact trace bitstring is truncated")
        value = 0
        for _ in range(width):
            byte = self._data[self._cursor >> 3]
            bit = (byte >> (7 - (self._cursor & 7))) & 1
            value = (value << 1) | bit
            self._cursor += 1
        return value


def _taken_with_next(block: BasicBlock, nxt: BasicBlock) -> bool:
    """Was the transfer from ``block`` to ``nxt`` a taken branch?"""
    kind = block.terminator.kind
    if kind.is_always_taken:
        return True
    if kind is BranchKind.COND:
        # Prefer the fall-through interpretation when ambiguous (a
        # conditional whose taken target equals its fall-through).
        return nxt is not block.fallthrough
    return False  # FALLTHROUGH (HALT cannot have a successor)


class CompactTrace:
    """An observed trace in Figure 14's compact representation."""

    __slots__ = ("entrance", "data", "bit_length")

    def __init__(self, entrance: BasicBlock, data: bytes, bit_length: int) -> None:
        self.entrance = entrance
        self.data = data
        self.bit_length = bit_length

    @property
    def byte_size(self) -> int:
        """Storage charged against profiling memory (Figure 18)."""
        return len(self.data)

    @classmethod
    def encode(cls, path: Sequence[BasicBlock]) -> "CompactTrace":
        """Encode a block path (as executed) into the compact form.

        The final block's own outgoing branch is not recorded — the
        trace ends *at* that block (the ``00`` record and end address);
        any edges its branch induces are recovered region-side by the
        Section 4.2.3 exit-replacement rule.
        """
        if not path:
            raise TraceFormatError("cannot encode an empty trace")
        writer = _BitWriter()
        for index in range(len(path) - 1):
            block = path[index]
            nxt = path[index + 1]
            taken = _taken_with_next(block, nxt)
            if not taken:
                writer.write_bits(0b10, 2)
            elif block.terminator.kind.target_is_dynamic:
                writer.write_bits(0b01, 2)
                writer.write_bits(nxt.require_address(), _ADDRESS_BITS)
            else:
                writer.write_bits(0b11, 2)
        writer.write_bits(0b00, 2)
        last = path[-1]
        assert last.end_address is not None
        writer.write_bits(last.end_address, _ADDRESS_BITS)
        return cls(path[0], writer.getvalue(), writer.bit_length)

    def decode(self, program: Program) -> List[BasicBlock]:
        """Reconstruct the block path by re-decoding the program image."""
        reader = _BitReader(self.data, self.bit_length)
        path: List[BasicBlock] = [self.entrance]
        block = self.entrance
        while True:
            record = reader.read_bits(2)
            if record == 0b00:
                end_address = reader.read_bits(_ADDRESS_BITS)
                end_block = program.block_at_address(end_address)
                if end_block is not block:
                    raise TraceFormatError(
                        "compact trace end address does not match the "
                        "decoded final block"
                    )
                return path
            nxt: Optional[BasicBlock]
            if record == 0b10:
                nxt = block.fallthrough
            elif record == 0b11:
                nxt = block.terminator.taken_target
            else:  # 0b01: explicit target address
                nxt = program.block_at_address(reader.read_bits(_ADDRESS_BITS))
            if nxt is None:
                raise TraceFormatError(
                    f"compact trace walks off block {block.full_label}"
                )
            path.append(nxt)
            block = nxt
