"""MARK-REJOINING-PATHS (Figure 15): include paths that rejoin the region.

After trace combination marks the blocks that occur in at least
``T_min`` observed traces, any observed path that leaves those blocks
and later *rejoins* them must also be selected — excluding it would
re-create exactly the exit-dominated duplication the combination is
meant to remove (Section 4.2's footnote 6).

A block lies on a rejoining path precisely when a marked block is
reachable from it in the observed CFG, so the pass propagates marks
backwards: sweep the blocks in post-order (successors before
predecessors, back edges aside), mark any block with a marked
successor, and repeat until a sweep changes nothing.  Post-order lets a
mark flow through a whole forward chain in one sweep; the paper reports
only ~0.1% of regions need a second marking sweep, a statistic the
returned :class:`MarkingResult` lets callers reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.program.cfg import BasicBlock
from repro.selection.region_cfg import ObservedCFG


@dataclass
class MarkingResult:
    """Outcome of the marking pass."""

    marked: Set[BasicBlock]
    #: Number of full sweeps executed (at least 1).
    sweeps: int
    #: Number of sweeps after the first that marked at least one block;
    #: the paper observes this is almost always zero.
    extra_marking_sweeps: int


def _post_order(cfg: ObservedCFG) -> List[BasicBlock]:
    """Blocks of the observed CFG in post-order from the entrance."""
    order: List[BasicBlock] = []
    visited: Set[BasicBlock] = set()
    # Iterative DFS with an explicit stack (observed CFGs are small but
    # recursion limits are not worth risking).
    stack: List[tuple] = [(cfg.entrance, iter(sorted(
        cfg.successors.get(cfg.entrance, ()),
        key=lambda b: b.require_address(),
    )))]
    visited.add(cfg.entrance)
    while stack:
        block, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(sorted(
                    cfg.successors.get(child, ()),
                    key=lambda b: b.require_address(),
                ))))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    return order


def mark_rejoining_paths(cfg: ObservedCFG, marked: Set[BasicBlock]) -> MarkingResult:
    """Figure 15: extend ``marked`` with all blocks that can reach a mark.

    The input set is not mutated.  Termination: each sweep either marks
    a block or ends the loop, and marks are never erased, so there are
    at most O(n) sweeps; in practice post-order makes one sweep (plus
    the terminating no-change sweep) almost always enough.
    """
    result: Set[BasicBlock] = set(marked)
    order = _post_order(cfg)
    sweeps = 0
    extra_marking_sweeps = 0
    changed = True
    while changed:
        changed = False
        sweeps += 1
        newly_marked = 0
        for block in order:
            if block in result:
                continue
            successors = cfg.successors.get(block, ())
            if any(successor in result for successor in successors):
                result.add(block)
                newly_marked += 1
                changed = True
        if changed and sweeps > 1 and newly_marked:
            extra_marking_sweeps += 1
    return MarkingResult(result, sweeps, extra_marking_sweeps)
