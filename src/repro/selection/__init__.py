"""Region-selection algorithms: the paper's primary contribution.

Three selectors are provided, all implementing the common
:class:`~repro.selection.base.RegionSelector` interface:

* :class:`~repro.selection.net.NETSelector` — Next-Executing Tail
  (Duesterwald & Bala), the Dynamo/DynamoRIO/Mojo baseline of
  Section 2.1.
* :class:`~repro.selection.lei.LEISelector` — Last-Executed Iteration
  (Section 3, Figures 5-6): cyclic trace selection from a branch
  history buffer.
* :class:`~repro.selection.combining.CombiningSelector` — trace
  combination (Section 4, Figures 13-15), a wrapper applicable to both
  NET and LEI, producing multi-path CFG regions.

Use :func:`~repro.selection.registry.make_selector` (or the
``SELECTOR_FACTORIES`` registry) to construct the four configurations
the paper evaluates: ``net``, ``lei``, ``combined-net``,
``combined-lei``.
"""

from repro.selection.base import RegionSelector
from repro.selection.counters import CounterTable
from repro.selection.history import BranchHistoryBuffer
from repro.selection.net import NETSelector
from repro.selection.lei import LEISelector
from repro.selection.combining import CombinedLEISelector, CombinedNETSelector
from repro.selection.related import (
    BOASelector,
    MojoSelector,
    WigginsRedstoneSelector,
)
from repro.selection.registry import (
    RELATED_SELECTOR_NAMES,
    SELECTOR_FACTORIES,
    SELECTOR_NAMES,
    make_selector,
)

__all__ = [
    "RegionSelector",
    "CounterTable",
    "BranchHistoryBuffer",
    "NETSelector",
    "LEISelector",
    "CombinedNETSelector",
    "CombinedLEISelector",
    "MojoSelector",
    "BOASelector",
    "WigginsRedstoneSelector",
    "SELECTOR_FACTORIES",
    "SELECTOR_NAMES",
    "RELATED_SELECTOR_NAMES",
    "make_selector",
]
