"""Selector registry: the four configurations the paper evaluates."""

from __future__ import annotations

from typing import Callable, Dict

from repro.cache.codecache import CodeCache
from repro.errors import SelectionError
from repro.program.program import Program
from repro.selection.base import RegionSelector
from repro.selection.combining import CombinedLEISelector, CombinedNETSelector
from repro.selection.lei import LEISelector
from repro.selection.net import NETSelector
from repro.selection.related import (
    BOASelector,
    MojoSelector,
    WigginsRedstoneSelector,
)
from repro.config import SystemConfig

SelectorFactory = Callable[[CodeCache, SystemConfig, Program], RegionSelector]

SELECTOR_FACTORIES: Dict[str, SelectorFactory] = {
    "net": lambda cache, config, program: NETSelector(cache, config),
    "lei": lambda cache, config, program: LEISelector(cache, config),
    "combined-net": CombinedNETSelector,
    "combined-lei": CombinedLEISelector,
    # Section 5 related work.
    "mojo": lambda cache, config, program: MojoSelector(cache, config),
    "boa": lambda cache, config, program: BOASelector(cache, config),
    "wiggins": lambda cache, config, program: WigginsRedstoneSelector(cache, config),
}

#: The paper's four evaluated configurations, in evaluation order.
SELECTOR_NAMES = ("net", "lei", "combined-net", "combined-lei")

#: Section 5 comparators.
RELATED_SELECTOR_NAMES = ("mojo", "boa", "wiggins")


def make_selector(
    name: str, cache: CodeCache, config: SystemConfig, program: Program
) -> RegionSelector:
    """Construct a selector by registry name."""
    try:
        factory = SELECTOR_FACTORIES[name]
    except KeyError:
        raise SelectionError(
            f"unknown selector {name!r}; known: {sorted(SELECTOR_FACTORIES)}"
        ) from None
    return factory(cache, config, program)
