"""LEI's branch history buffer (the substrate of Figure 5).

A fixed-capacity circular buffer of the most recently interpreted taken
branches, with a hash table over branch *targets* so that "has this
target executed recently?" — the cycle test — is O(1) per branch
(Section 3.1: "LEI adds only one buffer insertion and one hash table
lookup").

Entries carry monotonically increasing sequence numbers.  The hash maps
each target to the sequence number of its most recent occurrence; a
hash hit is validated against the ring (the slot may have been
overwritten or truncated since), which makes eviction and the Figure 5
line 13 truncation ("remove all elements of Buf after old") cheap —
stale hash entries are simply ignored and overwritten later.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

from repro.errors import SelectionError
from repro.program.cfg import BasicBlock


class HistoryEntry(NamedTuple):
    """One taken branch in the history buffer."""

    seq: int
    src: BasicBlock
    target: BasicBlock
    #: True when this branch was (or immediately followed) an exit from
    #: the code cache — the "old follows exit from code cache" start
    #: condition of Figure 5 line 9.
    follows_exit: bool


class BranchHistoryBuffer:
    """Circular buffer of taken branches with a target hash."""

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise SelectionError(
                f"history buffer needs capacity >= 2, got {capacity}"
            )
        self.capacity = capacity
        self._ring: List[Optional[HistoryEntry]] = [None] * capacity
        self._next_seq = 0
        #: Sequence number below which entries are dead (truncation floor).
        self._floor = 0
        # Buf.hash of Figure 5: target block -> seq of latest occurrence.
        self._target_hash: Dict[BasicBlock, int] = {}

    # ------------------------------------------------------------------
    def insert(
        self, src: BasicBlock, target: BasicBlock, follows_exit: bool = False
    ) -> HistoryEntry:
        """CIRCULAR-BUFFER-INSERT (Figure 5 line 5)."""
        entry = HistoryEntry(self._next_seq, src, target, follows_exit)
        self._ring[entry.seq % self.capacity] = entry
        self._next_seq += 1
        if self._next_seq - self._floor > self.capacity:
            self._floor = self._next_seq - self.capacity
        return entry

    def latest_seq(self) -> int:
        """Sequence number of the newest entry."""
        if self._next_seq == 0:
            raise SelectionError("history buffer is empty")
        return self._next_seq - 1

    def _entry_at(self, seq: int) -> Optional[HistoryEntry]:
        if seq < self._floor or seq >= self._next_seq:
            return None
        entry = self._ring[seq % self.capacity]
        if entry is None or entry.seq != seq:
            return None
        return entry

    # -- target hash (Buf.hash) ----------------------------------------
    def hash_lookup(self, target: BasicBlock) -> Optional[HistoryEntry]:
        """Most recent live occurrence of ``target``, if any.

        Stale hash entries (evicted or truncated occurrences) read as
        misses and are dropped.
        """
        seq = self._target_hash.get(target)
        if seq is None:
            return None
        entry = self._entry_at(seq)
        if entry is None or entry.target is not target:
            del self._target_hash[target]
            return None
        return entry

    def hash_update(self, target: BasicBlock, seq: int) -> None:
        """Point the hash at a (new) occurrence of ``target``."""
        self._target_hash[target] = seq

    # ------------------------------------------------------------------
    def entries_after(self, seq: int) -> Iterator[HistoryEntry]:
        """Yield live entries with sequence numbers strictly above ``seq``.

        This is the branch walk of FORM-TRACE (Figure 6 line 3): the
        branches completing the current cycle, oldest first.
        """
        start = max(seq + 1, self._floor)
        for s in range(start, self._next_seq):
            entry = self._entry_at(s)
            if entry is not None:
                yield entry

    def truncate_after(self, seq: int) -> None:
        """Remove all entries strictly newer than ``seq`` (Fig. 5 line 13)."""
        if seq >= self._next_seq - 1:
            return
        for s in range(max(seq + 1, self._floor), self._next_seq):
            self._ring[s % self.capacity] = None
        self._next_seq = seq + 1
        if self._floor > self._next_seq:
            self._floor = self._next_seq

    # ------------------------------------------------------------------
    @property
    def live_entries(self) -> int:
        """Number of live entries (diagnostic / tests)."""
        return sum(
            1 for s in range(self._floor, self._next_seq) if self._entry_at(s)
        )

    def __contains__(self, target: BasicBlock) -> bool:
        return self.hash_lookup(target) is not None
