"""LEI's branch history buffer (the substrate of Figure 5).

A fixed-capacity circular buffer of the most recently interpreted taken
branches, with a hash table over branch *targets* so that "has this
target executed recently?" — the cycle test — is O(1) per branch
(Section 3.1: "LEI adds only one buffer insertion and one hash table
lookup").

Entries carry monotonically increasing sequence numbers.  The hash maps
each target to the sequence number of its most recent occurrence, and
is kept in lock-step with the ring: overwriting a slot on ring wrap and
truncation (Figure 5 line 13, "remove all elements of Buf after old")
both evict the dying occurrence's hash pointer.  Without that eviction
the hash grows with the number of *distinct targets ever seen* rather
than the buffer capacity — a leak that distorts the paper's
bounded-memory claims (Figures 10/18) on long runs.  A hash hit is
still validated against the ring before use, as defense in depth.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SelectionError
from repro.program.cfg import BasicBlock


class HistoryEntry:
    """One taken branch in the history buffer.

    A ``__slots__`` record: one instance is created per interpreted
    taken branch on LEI's hot path, so it must stay lean (this replaced
    a ``NamedTuple``; equality is by field, as before, for tests that
    compare entries).
    """

    __slots__ = ("seq", "src", "target", "follows_exit")

    def __init__(
        self, seq: int, src: BasicBlock, target: BasicBlock,
        follows_exit: bool,
    ) -> None:
        self.seq = seq
        self.src = src
        self.target = target
        #: True when this branch was (or immediately followed) an exit
        #: from the code cache — the "old follows exit from code cache"
        #: start condition of Figure 5 line 9.
        self.follows_exit = follows_exit

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistoryEntry):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.src is other.src
            and self.target is other.target
            and self.follows_exit == other.follows_exit
        )

    def __hash__(self) -> int:
        return hash((self.seq, self.src, self.target, self.follows_exit))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HistoryEntry(seq={self.seq}, src={self.src.full_label}, "
            f"target={self.target.full_label}, "
            f"follows_exit={self.follows_exit})"
        )


class BranchHistoryBuffer:
    """Circular buffer of taken branches with a target hash."""

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise SelectionError(
                f"history buffer needs capacity >= 2, got {capacity}"
            )
        self.capacity = capacity
        self._ring: List[Optional[HistoryEntry]] = [None] * capacity
        self._next_seq = 0
        #: Sequence number below which entries are dead (truncation floor).
        self._floor = 0
        # Buf.hash of Figure 5: target block -> seq of latest occurrence.
        self._target_hash: Dict[BasicBlock, int] = {}

    # ------------------------------------------------------------------
    def insert(
        self, src: BasicBlock, target: BasicBlock, follows_exit: bool = False
    ) -> HistoryEntry:
        """CIRCULAR-BUFFER-INSERT (Figure 5 line 5).

        When the ring wraps over a live entry, the overwritten
        occurrence's hash pointer is evicted too, keeping
        ``len(_target_hash) <= capacity`` for the life of the run.
        """
        seq = self._next_seq
        entry = HistoryEntry(seq, src, target, follows_exit)
        ring = self._ring
        slot = seq % self.capacity
        old = ring[slot]
        if old is not None:
            target_hash = self._target_hash
            if target_hash.get(old.target) == old.seq:
                del target_hash[old.target]
        ring[slot] = entry
        self._next_seq = seq + 1
        if seq + 1 - self._floor > self.capacity:
            self._floor = seq + 1 - self.capacity
        return entry

    def record(
        self, src: BasicBlock, target: BasicBlock, follows_exit: bool = False
    ) -> Tuple[Optional[HistoryEntry], HistoryEntry]:
        """Fused lookup + insert + hash update for one taken branch.

        Exactly Section 3.1's per-branch work ("one buffer insertion
        and one hash table lookup") in a single call:
        ``hash_lookup(target)`` *before* the insert (the cycle test
        must see the previous occurrence, not the fresh one), then
        ``insert`` and ``hash_update``.  Returns ``(old, new)``.  LEI
        calls this once per interpreted taken branch, so the three
        steps are inlined here rather than composed from the public
        methods.
        """
        target_hash = self._target_hash
        # -- hash_lookup(target), inlined --------------------------------
        old: Optional[HistoryEntry] = None
        seq = target_hash.get(target)
        if seq is not None:
            if self._floor <= seq < self._next_seq:
                candidate = self._ring[seq % self.capacity]
                if (candidate is not None and candidate.seq == seq
                        and candidate.target is target):
                    old = candidate
                else:
                    del target_hash[target]
            else:
                del target_hash[target]
        # ``insert`` stays the single mutation point (eviction logic
        # lives there, and tests/fault-injection hook it).
        entry = self.insert(src, target, follows_exit)
        target_hash[target] = entry.seq
        return old, entry

    def latest_seq(self) -> int:
        """Sequence number of the newest entry."""
        if self._next_seq == 0:
            raise SelectionError("history buffer is empty")
        return self._next_seq - 1

    def _entry_at(self, seq: int) -> Optional[HistoryEntry]:
        if seq < self._floor or seq >= self._next_seq:
            return None
        entry = self._ring[seq % self.capacity]
        if entry is None or entry.seq != seq:
            return None
        return entry

    # -- target hash (Buf.hash) ----------------------------------------
    def hash_lookup(self, target: BasicBlock) -> Optional[HistoryEntry]:
        """Most recent live occurrence of ``target``, if any.

        Stale hash entries (evicted or truncated occurrences) read as
        misses and are dropped.
        """
        seq = self._target_hash.get(target)
        if seq is None:
            return None
        entry = self._entry_at(seq)
        if entry is None or entry.target is not target:
            del self._target_hash[target]
            return None
        return entry

    def hash_update(self, target: BasicBlock, seq: int) -> None:
        """Point the hash at a (new) occurrence of ``target``."""
        self._target_hash[target] = seq

    # ------------------------------------------------------------------
    def entries_after(self, seq: int) -> Iterator[HistoryEntry]:
        """Yield live entries with sequence numbers strictly above ``seq``.

        This is the branch walk of FORM-TRACE (Figure 6 line 3): the
        branches completing the current cycle, oldest first.
        """
        start = max(seq + 1, self._floor)
        for s in range(start, self._next_seq):
            entry = self._entry_at(s)
            if entry is not None:
                yield entry

    def truncate_after(self, seq: int) -> None:
        """Remove all entries strictly newer than ``seq`` (Fig. 5 line 13).

        Hash pointers at the truncated occurrences are evicted along
        with the ring slots, preserving the ``len(_target_hash) <=
        capacity`` invariant (they would otherwise linger until an
        unlucky lookup happened to prune them).
        """
        if seq >= self._next_seq - 1:
            return
        target_hash = self._target_hash
        for s in range(max(seq + 1, self._floor), self._next_seq):
            slot = s % self.capacity
            entry = self._ring[slot]
            if entry is not None:
                if target_hash.get(entry.target) == entry.seq:
                    del target_hash[entry.target]
                self._ring[slot] = None
        self._next_seq = seq + 1
        if self._floor > self._next_seq:
            self._floor = self._next_seq

    # ------------------------------------------------------------------
    @property
    def live_entries(self) -> int:
        """Number of live entries (diagnostic / tests)."""
        return sum(
            1 for s in range(self._floor, self._next_seq) if self._entry_at(s)
        )

    def __contains__(self, target: BasicBlock) -> bool:
        return self.hash_lookup(target) is not None
