"""Related-work trace selectors (Section 5): Mojo, BOA, Wiggins/Redstone.

The paper surveys three other trace-selection algorithms and argues the
problems of separation and duplication "apply as much to these
trace-selection algorithms as to NET".  Implementing them makes that
claim testable here:

* :class:`MojoSelector` — NET with a *lower* threshold for trace-exit
  targets than for backward-branch targets, reducing the delay before a
  related trace is selected (less separation in time, but the traces
  are still optimized apart).
* :class:`BOASelector` — IBM's Binary-translated Optimization
  Architecture: count executions of potential entry points; after 15,
  grow a trace *statically* by following, at each conditional branch,
  the direction taken most often so far.
* :class:`WigginsRedstoneSelector` — Compaq's sampling-based selector:
  periodically sample the interpreted "program counter"; for a sampled
  block, instrument branch directions for a window, then grow the
  most-frequent path from the sample point.

All three profile *more* than NET (per-branch direction counts or
sampling machinery) to pick the trace body; none can span an
interprocedural cycle or merge multiple paths, which is exactly the
paper's point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cache.codecache import CodeCache
from repro.cache.region import Region, TraceRegion
from repro.config import SystemConfig
from repro.execution.events import Step
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.selection.base import RegionSelector
from repro.selection.counters import CounterTable
from repro.selection.net import NETSelector


class MojoSelector(NETSelector):
    """NET with Mojo's split thresholds (Section 5).

    "One main difference is that it uses one threshold for
    backward-branch targets and a lower threshold for trace exits.  The
    authors claim that this lower threshold reduces the impact of the
    rare case where the next-executing trace is a cold path" — and, in
    the paper's analysis, it also reduces the *time* separation between
    related hot traces, though they still cannot be optimized together.
    """

    name = "mojo"

    def __init__(self, cache: CodeCache, config: SystemConfig) -> None:
        super().__init__(cache, config)
        #: Targets that became eligible via a cache exit (these use the
        #: lower threshold).
        self._exit_targets: Set[BasicBlock] = set()

    def on_cache_exit(self, step: Step, region: Region) -> None:
        if step.target is not None:
            self._exit_targets.add(step.target)
        super().on_cache_exit(step, region)

    def _bump(self, target: BasicBlock) -> None:
        threshold = (
            self.config.mojo_exit_threshold
            if target in self._exit_targets
            else self.config.net_threshold
        )
        if self.counters.increment(target) >= threshold:
            self.counters.release(target)
            self._eligible.discard(target)
            self._exit_targets.discard(target)
            self._start_recording(target)


class _DirectionProfile:
    """Per-conditional taken/fall-through counts (BOA / W-R substrate)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[BasicBlock, List[int]] = {}

    def observe(self, step: Step) -> None:
        if step.block.terminator.kind is BranchKind.COND:
            counts = self._counts.get(step.block)
            if counts is None:
                counts = self._counts[step.block] = [0, 0]
            counts[0 if step.taken else 1] += 1

    def likely_next(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The statically-likelier successor, or None to end the trace."""
        term = block.terminator
        kind = term.kind
        if kind is BranchKind.COND:
            counts = self._counts.get(block, (0, 0))
            if counts[0] >= counts[1]:
                return term.taken_target
            return block.fallthrough
        if kind in (BranchKind.JUMP, BranchKind.CALL):
            return term.taken_target
        if kind is BranchKind.FALLTHROUGH:
            return block.fallthrough
        return None  # returns and indirect jumps end the trace

    @property
    def profiled_branches(self) -> int:
        return len(self._counts)


def grow_biased_trace(
    start: BasicBlock,
    profile: _DirectionProfile,
    cache: CodeCache,
    config: SystemConfig,
) -> TraceRegion:
    """Grow a trace from ``start`` following the profiled directions.

    Stops at a block already in the path (cycle), an existing region
    entry, an un-followable transfer, or the size limit — the common
    construction both BOA and Wiggins/Redstone use once their profiling
    has chosen directions.
    """
    path = [start]
    in_path = {start}
    instructions = start.instruction_count
    block = start
    final_target: Optional[BasicBlock] = None
    while True:
        nxt = profile.likely_next(block)
        if nxt is None:
            break
        if nxt in in_path:
            final_target = nxt
            break
        if cache.contains_entry(nxt):
            final_target = nxt
            break
        if (len(path) >= config.max_trace_blocks
                or instructions + nxt.instruction_count
                > config.max_trace_instructions):
            break
        path.append(nxt)
        in_path.add(nxt)
        instructions += nxt.instruction_count
        block = nxt
    return TraceRegion(path, final_target)


class BOASelector(RegionSelector):
    """BOA's counted, biased-direction trace selection (Section 5).

    "BOA maintains counts for each conditional branch that indicate how
    many times each target is taken.  After the entry point to an
    instruction sequence is emulated 15 times, a trace is selected by
    following the target of each conditional branch with the highest
    count."
    """

    name = "boa"

    def __init__(self, cache: CodeCache, config: SystemConfig) -> None:
        super().__init__(cache, config)
        self.counters: CounterTable[BasicBlock] = CounterTable()
        self.profile = _DirectionProfile()
        self.traces_installed = 0

    def observe_interpreted(self, step: Step) -> None:
        self.profile.observe(step)

    def on_interpreted_taken(self, step: Step) -> Optional[Region]:
        target = step.target
        if target is None:
            return None
        if self.counters.increment(target) < self.config.boa_threshold:
            return None
        self.counters.release(target)
        if self.cache.contains_entry(target):
            return None
        self.cache.insert(
            grow_biased_trace(target, self.profile, self.cache, self.config)
        )
        self.traces_installed += 1
        return None

    @property
    def peak_counters(self) -> int:
        # BOA pays counters for entry points *and* two counts per
        # conditional branch — the heavier profiling Section 5 notes.
        return self.counters.peak + 2 * self.profile.profiled_branches

    def diagnostics(self) -> dict:
        return {
            "traces_installed": self.traces_installed,
            "profiled_branches": self.profile.profiled_branches,
        }


class WigginsRedstoneSelector(RegionSelector):
    """Wiggins/Redstone's sample-then-instrument selection (Section 5).

    "To identify the beginning of a trace, the program counter is
    periodically sampled.  From a starting instruction, a trace is
    selected by adding instrumentation code that determines the most
    frequent target of each selected branch."

    Model: every ``sampling_period`` interpreted steps the current block
    is sampled as a candidate; branch directions are then instrumented
    for ``sampling_window`` further interpreted steps, after which the
    most-frequent path from the candidate is selected.  One candidate is
    in flight at a time (the sampler is a single hardware facility).
    """

    name = "wiggins"

    def __init__(self, cache: CodeCache, config: SystemConfig) -> None:
        super().__init__(cache, config)
        self.profile = _DirectionProfile()
        self._interpreted_steps = 0
        self._candidate: Optional[BasicBlock] = None
        self._window_remaining = 0
        self.traces_installed = 0
        self.samples_taken = 0
        self.samples_discarded = 0
        #: High-water mark of instrumentation state, reported as this
        #: selector's "counter" cost.
        self._peak_profiled = 0

    def observe_interpreted(self, step: Step) -> None:
        self._interpreted_steps += 1
        if self._candidate is not None:
            self.profile.observe(step)
            self._peak_profiled = max(
                self._peak_profiled, 2 * self.profile.profiled_branches
            )
            self._window_remaining -= 1
            if self._window_remaining <= 0:
                self._finish_window()
        elif self._interpreted_steps % self.config.sampling_period == 0:
            # Sample the "program counter": the block executing now.
            self.samples_taken += 1
            if self.cache.contains_entry(step.block):
                self.samples_discarded += 1
            else:
                self._candidate = step.block
                self._window_remaining = self.config.sampling_window

    def _finish_window(self) -> None:
        candidate = self._candidate
        self._candidate = None
        assert candidate is not None
        if self.cache.contains_entry(candidate):
            self.samples_discarded += 1
            return
        self.cache.insert(
            grow_biased_trace(candidate, self.profile, self.cache, self.config)
        )
        self.traces_installed += 1

    def on_interpreted_taken(self, step: Step) -> Optional[Region]:
        return None  # all work happens in observe_interpreted

    def finish(self) -> None:
        self._candidate = None

    @property
    def peak_counters(self) -> int:
        return self._peak_profiled

    def diagnostics(self) -> dict:
        return {
            "traces_installed": self.traces_installed,
            "samples_taken": self.samples_taken,
            "samples_discarded": self.samples_discarded,
        }
