"""CFG construction from observed traces (Section 4.2.2).

"Rather than representing all possible branches, the CFG for a region
represents only those branches taken in an observed trace."  Traces are
added incrementally; every block is annotated with the number of
observed traces containing it (a block appearing twice in one trace
still counts once for that trace).
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from repro.errors import SelectionError
from repro.program.cfg import BasicBlock


class ObservedCFG:
    """The combined control-flow graph of a target's observed traces."""

    def __init__(self, entrance: BasicBlock) -> None:
        self.entrance = entrance
        #: block -> number of observed traces the block appeared in.
        self.trace_counts: Dict[BasicBlock, int] = {}
        self.edges: Set[Tuple[BasicBlock, BasicBlock]] = set()
        self.successors: Dict[BasicBlock, Set[BasicBlock]] = {}
        self.traces_added = 0

    def add_trace(self, path: Sequence[BasicBlock]) -> None:
        """Incrementally merge one observed trace into the CFG."""
        if not path:
            raise SelectionError("observed trace is empty")
        if path[0] is not self.entrance:
            raise SelectionError(
                f"observed trace starts at {path[0].full_label}, expected "
                f"{self.entrance.full_label}"
            )
        seen: Set[BasicBlock] = set()
        for block in path:
            if block not in seen:
                seen.add(block)
                self.trace_counts[block] = self.trace_counts.get(block, 0) + 1
                self.successors.setdefault(block, set())
        for src, dst in zip(path, path[1:]):
            if (src, dst) not in self.edges:
                self.edges.add((src, dst))
                self.successors[src].add(dst)
        self.traces_added += 1

    def blocks_with_count_at_least(self, minimum: int) -> Set[BasicBlock]:
        """Blocks appearing in at least ``minimum`` observed traces."""
        return {
            block
            for block, count in self.trace_counts.items()
            if count >= minimum
        }

    @property
    def block_count(self) -> int:
        return len(self.trace_counts)


def build_observed_cfg(
    entrance: BasicBlock, paths: Sequence[Sequence[BasicBlock]]
) -> ObservedCFG:
    """Build the combined CFG for a set of decoded observed traces."""
    cfg = ObservedCFG(entrance)
    for path in paths:
        cfg.add_trace(path)
    return cfg
