"""Aggregate optimization-opportunity reports over a whole cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.cache.region import Region
from repro.optimizer.opportunities import RegionOpportunities, analyze_region


@dataclass(frozen=True)
class OptimizationReport:
    """Section 4.4's three factors, summed over all selected regions."""

    regions_analyzed: int
    multipath_regions: int
    #: Factor one: unconditional transfers deleted by contiguous layout.
    removed_jumps: int
    #: Factor two: join/split context available to the optimizer.
    internal_joins: int
    internal_splits: int
    complete_diamonds: int
    #: Loop context: regions holding a cycle at all, and regions where
    #: loop-invariant code motion has a hoist target.
    regions_with_cycles: int
    licm_ready_regions: int
    #: Cycles with no hoisting space (every cycle-spanning *trace*).
    cycles_without_hoist_space: int

    @classmethod
    def from_regions(cls, regions: Iterable[Region]) -> "OptimizationReport":
        analyses: List[RegionOpportunities] = [
            analyze_region(region) for region in regions
        ]
        with_cycles = sum(1 for a in analyses if a.has_cycle)
        licm_ready = sum(1 for a in analyses if a.licm_ready)
        return cls(
            regions_analyzed=len(analyses),
            multipath_regions=sum(1 for a in analyses if a.is_multipath),
            removed_jumps=sum(a.removed_jumps for a in analyses),
            internal_joins=sum(a.internal_joins for a in analyses),
            internal_splits=sum(a.internal_splits for a in analyses),
            complete_diamonds=sum(a.complete_diamonds for a in analyses),
            regions_with_cycles=with_cycles,
            licm_ready_regions=licm_ready,
            cycles_without_hoist_space=with_cycles - licm_ready,
        )

    def summary_line(self) -> str:
        return (
            f"regions={self.regions_analyzed} multipath={self.multipath_regions} "
            f"removed_jumps={self.removed_jumps} joins={self.internal_joins} "
            f"diamonds={self.complete_diamonds} cycles={self.regions_with_cycles} "
            f"licm_ready={self.licm_ready_regions}"
        )
