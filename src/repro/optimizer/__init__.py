"""Optimization-opportunity analysis (Section 4.4).

The paper argues multi-path regions are better *optimization* units
than traces for three reasons: code layout dominates Dynamo's speedup
(removing unconditional jumps), regions holding both sides of an
if-else let redundancy elimination skip compensation code, and a region
holding a cycle *plus* blocks outside it gives loop-invariant code
motion somewhere to hoist to — "even a trace that spans a cycle cannot
perform this optimization, because it has nowhere outside the cycle to
move an instruction".

This package quantifies those opportunities for any selected region, so
the Section 4.4 discussion becomes a measurable comparison between
selectors (see ``benchmarks/test_optimization_opportunities.py``).
"""

from repro.optimizer.opportunities import RegionOpportunities, analyze_region
from repro.optimizer.report import OptimizationReport

__all__ = ["RegionOpportunities", "analyze_region", "OptimizationReport"]
