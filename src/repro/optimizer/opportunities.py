"""Per-region optimization opportunity analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.cache.region import Region
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock


@dataclass(frozen=True)
class RegionOpportunities:
    """What an optimizer could do with one cached region (Section 4.4)."""

    region_kind: str
    block_count: int
    instruction_count: int
    #: Internal edges realized by unconditional jumps or calls: laying
    #: the region out contiguously deletes these instructions outright —
    #: the code-layout benefit that provides "roughly two-thirds of the
    #: average performance speedup" in Dynamo.
    removed_jumps: int
    #: Blocks with two or more internal predecessors.  A join means the
    #: region holds multiple paths into the same code: redundancy
    #: elimination can work across it without compensation code.
    internal_joins: int
    #: Blocks with two or more internal successors (the matching splits).
    internal_splits: int
    #: Splits whose *both* direct successors are inside the region —
    #: complete if-else contexts.
    complete_diamonds: int
    #: The region contains a cycle among its internal edges.
    has_cycle: bool
    #: The region contains a cycle *and* at least one block outside that
    #: cycle: loop-invariant code motion has somewhere to hoist to.
    #: Always False for traces, even cycle-spanning ones.
    licm_ready: bool

    @property
    def is_multipath(self) -> bool:
        return self.internal_joins > 0 or self.internal_splits > 0


def _cycle_members(
    blocks: FrozenSet[BasicBlock],
    successors: Dict[BasicBlock, Set[BasicBlock]],
) -> Set[BasicBlock]:
    """Blocks that lie on some internal cycle (reachable from themselves).

    Regions are small (tens of blocks), so the O(n * e) reachability
    sweep is cheaper than a Tarjan SCC pass would be to maintain.
    """
    members: Set[BasicBlock] = set()
    for start in blocks:
        frontier = list(successors.get(start, ()))
        seen: Set[BasicBlock] = set()
        while frontier:
            block = frontier.pop()
            if block is start:
                members.add(start)
                break
            if block in seen:
                continue
            seen.add(block)
            frontier.extend(successors.get(block, ()))
    return members


def analyze_region(region: Region) -> RegionOpportunities:
    """Quantify Section 4.4's optimization opportunities for a region."""
    edges = region.internal_edges()
    blocks = region.block_set

    predecessors: Dict[BasicBlock, Set[BasicBlock]] = {}
    successors: Dict[BasicBlock, Set[BasicBlock]] = {}
    for src, dst in edges:
        successors.setdefault(src, set()).add(dst)
        predecessors.setdefault(dst, set()).add(src)

    removed_jumps = sum(
        1
        for src, dst in edges
        if src.terminator.kind in (BranchKind.JUMP, BranchKind.CALL)
        and src.terminator.taken_target is dst
    )
    internal_joins = sum(1 for preds in predecessors.values() if len(preds) >= 2)
    internal_splits = sum(1 for succs in successors.values() if len(succs) >= 2)

    complete_diamonds = 0
    for block, succs in successors.items():
        if len(succs) < 2:
            continue
        term = block.terminator
        if term.kind is BranchKind.COND:
            if term.taken_target in blocks and block.fallthrough in blocks:
                complete_diamonds += 1

    cycle = _cycle_members(blocks, successors)
    has_cycle = bool(cycle)
    licm_ready = has_cycle and len(cycle) < len(blocks)

    return RegionOpportunities(
        region_kind=region.kind,
        block_count=len(blocks),
        instruction_count=region.instruction_count,
        removed_jumps=removed_jumps,
        internal_joins=internal_joins,
        internal_splits=internal_splits,
        complete_diamonds=complete_diamonds,
        has_cycle=has_cycle,
        licm_ready=licm_ready,
    )
