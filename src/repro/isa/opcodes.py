"""Control-transfer taxonomy for basic-block terminators.

The region-selection algorithms in the paper only distinguish branches by
three properties of the *executed* transfer:

* was the branch taken (fall-throughs never trigger selection logic),
* is the target address lower than the source (a *backward* branch),
* is the target encoded in the instruction (direct) or not (indirect).

:class:`BranchKind` captures the static terminator kind; the dynamic
properties are derived from addresses at execution time.
"""

from __future__ import annotations

import enum


class BranchKind(enum.Enum):
    """Kind of control transfer terminating a basic block."""

    #: Two-way conditional branch: a taken target and a fall-through.
    COND = "cond"
    #: Unconditional direct jump (always taken).
    JUMP = "jump"
    #: Direct procedure call (always taken; pushes a return address).
    CALL = "call"
    #: Procedure return (always taken; target comes from the call stack).
    RETURN = "return"
    #: Indirect jump/call through a register or table (always taken;
    #: target chosen dynamically from a set of possible targets).
    INDIRECT = "indirect"
    #: No branch: execution falls through to the next block in layout.
    FALLTHROUGH = "fallthrough"
    #: Program termination.
    HALT = "halt"

    @property
    def is_always_taken(self) -> bool:
        """True when the transfer is taken on every execution."""
        return self in _ALWAYS_TAKEN

    @property
    def may_fall_through(self) -> bool:
        """True when the block can continue to its layout successor."""
        return self in (BranchKind.COND, BranchKind.FALLTHROUGH)

    @property
    def target_is_dynamic(self) -> bool:
        """True when the target is not known from the instruction.

        Indirect branches and returns require the Figure 14 compact trace
        encoding to record the target address explicitly ("01" records).
        """
        return self in (BranchKind.INDIRECT, BranchKind.RETURN)


_ALWAYS_TAKEN = frozenset(
    {BranchKind.JUMP, BranchKind.CALL, BranchKind.RETURN, BranchKind.INDIRECT}
)
