"""Instruction bundles: the instructions of a single basic block.

Instructions are never decoded or executed individually; the simulator
counts them (hit rate, code expansion) and sums their byte sizes (cache
size estimate of Figure 18, where the paper reports an average selected
instruction size between three and four bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramStructureError

#: Default per-instruction size in bytes.  The paper reports that "for all
#: benchmarks the average size of a selected instruction is between three
#: and four bytes"; 3.5 is the midpoint and workloads may override it per
#: block to model denser or sparser code.
DEFAULT_INSTRUCTION_BYTES = 3.5


@dataclass(frozen=True)
class InstructionBundle:
    """The instruction payload of one basic block.

    Parameters
    ----------
    count:
        Number of instructions in the block, including the terminator.
        Must be at least 1 (every block ends in some instruction, even a
        pure fall-through block has the instruction that does the work).
    bytes_per_instruction:
        Average encoded size of one instruction in this block.
    """

    count: int
    bytes_per_instruction: float = DEFAULT_INSTRUCTION_BYTES

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ProgramStructureError(
                f"a basic block must contain at least one instruction, got {self.count}"
            )
        if self.bytes_per_instruction <= 0:
            raise ProgramStructureError(
                "bytes_per_instruction must be positive, got "
                f"{self.bytes_per_instruction}"
            )

    @property
    def byte_size(self) -> int:
        """Total encoded size of the block in bytes (rounded to whole bytes)."""
        return max(1, round(self.count * self.bytes_per_instruction))

    def scaled(self, factor: float) -> "InstructionBundle":
        """Return a bundle with the instruction count scaled by ``factor``.

        Used by workload generators to derive hot/cold variants of a
        motif without re-specifying byte sizing.
        """
        return InstructionBundle(
            count=max(1, round(self.count * factor)),
            bytes_per_instruction=self.bytes_per_instruction,
        )
