"""Instruction-set model.

The simulator never executes real machine instructions; it only needs to
know, for every basic block, how many instructions it holds, how many
bytes they occupy, and what kind of control transfer terminates the
block.  This package defines those abstractions:

* :class:`~repro.isa.opcodes.BranchKind` — the taxonomy of block
  terminators (conditional branch, direct jump, call, return, indirect
  jump, plain fall-through, halt).
* :class:`~repro.isa.instruction.InstructionBundle` — the instructions of
  one basic block, with per-block byte sizing used by the Figure 18 cache
  size estimate.
"""

from repro.isa.opcodes import BranchKind
from repro.isa.instruction import InstructionBundle, DEFAULT_INSTRUCTION_BYTES

__all__ = ["BranchKind", "InstructionBundle", "DEFAULT_INSTRUCTION_BYTES"]
