"""Dynamic branch behaviour: deterministic RNG and branch decision models.

A synthetic program's static CFG says *where* control can go; the models
in this package say where it *does* go on each execution.  All
randomness flows through :class:`~repro.behavior.rng.SplitMix64`, so a
(program, seed) pair always produces the identical event stream — the
property the whole experiment harness relies on.
"""

from repro.behavior.rng import SplitMix64
from repro.behavior.models import (
    AlwaysTaken,
    Bernoulli,
    BranchModel,
    DecisionContext,
    IndirectModel,
    LoopTrip,
    MarkovBiased,
    NeverTaken,
    Periodic,
    PhaseIndirect,
    PhaseShift,
    RoundRobinIndirect,
    TableIndirect,
)

__all__ = [
    "SplitMix64",
    "BranchModel",
    "IndirectModel",
    "DecisionContext",
    "AlwaysTaken",
    "NeverTaken",
    "Bernoulli",
    "LoopTrip",
    "Periodic",
    "PhaseShift",
    "MarkovBiased",
    "TableIndirect",
    "RoundRobinIndirect",
    "PhaseIndirect",
]
