"""SplitMix64: a tiny, fast, deterministic pseudo-random generator.

The standard-library ``random.Random`` would work, but SplitMix64 is
self-contained, trivially reproducible across Python versions (its
output is specified exactly by the algorithm, not by CPython
internals), and cheap enough for the execution engine's inner loop.
"""

from __future__ import annotations

from typing import Sequence

_MASK64 = (1 << 64) - 1
#: 2**-64, used to map a 64-bit integer onto [0, 1).
_INV_2_64 = 1.0 / (1 << 64)


class SplitMix64:
    """Deterministic 64-bit PRNG (Steele, Lea & Flood's SplitMix64).

    >>> rng = SplitMix64(42)
    >>> 0.0 <= rng.random() < 1.0
    True
    >>> SplitMix64(42).next_u64() == SplitMix64(42).next_u64()
    True
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1).

        ``next_u64`` is inlined (same mixing rounds, same sequence):
        branch models call this once per conditional decision, making
        it one of the hottest leaf calls in the whole simulator.
        """
        state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        self._state = state
        z = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) * _INV_2_64

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self.random() < probability

    def weighted_index(self, cumulative_weights: Sequence[float]) -> int:
        """Pick an index according to a precomputed cumulative weight table.

        ``cumulative_weights`` must be non-decreasing and end with the
        total weight.  Used by indirect-branch models, which precompute
        the table once at model construction.
        """
        total = cumulative_weights[-1]
        point = self.random() * total
        # Linear scan: indirect branches have a handful of targets, so a
        # bisect would cost more than it saves.
        for index, bound in enumerate(cumulative_weights):
            if point < bound:
                return index
        return len(cumulative_weights) - 1

    def fork(self) -> "SplitMix64":
        """Derive an independent generator (for sub-streams)."""
        return SplitMix64(self.next_u64())
