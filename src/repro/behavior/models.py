"""Branch decision models.

A :class:`BranchModel` decides, on each dynamic execution of a
conditional branch, whether the branch is taken.  An
:class:`IndirectModel` picks which of an indirect branch's possible
targets is taken.  Models are *stateless objects*: any per-branch-site
dynamic state (loop trip counters, Markov last-outcome, round-robin
cursors) lives in the mutable ``site_state`` dict owned by the
execution engine, so one model instance can safely be shared between
many branch sites and many programs.

The models provided cover the control-flow behaviours the paper's
evaluation depends on:

* biased and unbiased conditionals (:class:`Bernoulli`) — Section 2.2's
  "unbiased branches" shortcoming,
* loop trip counts (:class:`LoopTrip`) — loops and nested loops,
* program phases (:class:`PhaseShift`, :class:`PhaseIndirect`) — the
  Section 4.3.1 observation that programs execute different paths in
  different phases [Sherwood et al.],
* correlated branches (:class:`MarkovBiased`) and fixed patterns
  (:class:`Periodic`) for richer synthetic workloads,
* indirect dispatch tables (:class:`TableIndirect`,
  :class:`RoundRobinIndirect`) for switches and virtual calls.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.behavior.rng import SplitMix64
from repro.errors import ProgramStructureError


@dataclass
class DecisionContext:
    """Everything a model may consult when making a decision.

    Attributes
    ----------
    rng:
        The engine's deterministic generator.
    site_state:
        Mutable per-branch-site scratch dict.  A model must namespace its
        keys only if it expects to share a site with another model (they
        never do in practice; each site has exactly one model).
    step:
        Global count of blocks executed so far; drives phase models.
    """

    rng: SplitMix64
    site_state: Dict[str, object]
    step: int = 0


class BranchModel(abc.ABC):
    """Decides taken/not-taken for a conditional branch site."""

    @abc.abstractmethod
    def next_taken(self, ctx: DecisionContext) -> bool:
        """Return True when the branch is taken on this execution."""


class IndirectModel(abc.ABC):
    """Chooses a target index for an indirect branch site."""

    @abc.abstractmethod
    def next_target_index(self, ctx: DecisionContext, target_count: int) -> int:
        """Return the index of the chosen target in [0, target_count)."""


class AlwaysTaken(BranchModel):
    """The branch is taken on every execution."""

    def next_taken(self, ctx: DecisionContext) -> bool:
        return True


class NeverTaken(BranchModel):
    """The branch falls through on every execution."""

    def next_taken(self, ctx: DecisionContext) -> bool:
        return False


class Bernoulli(BranchModel):
    """Independent coin flip with fixed taken-probability.

    ``Bernoulli(0.5)`` is the paper's *unbiased branch*;
    ``Bernoulli(0.9)`` the Figure 4 biased branch.
    """

    __slots__ = ("probability",)

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ProgramStructureError(
                f"branch probability must be in [0, 1], got {probability}"
            )
        self.probability = probability

    def next_taken(self, ctx: DecisionContext) -> bool:
        return ctx.rng.random() < self.probability

    def __repr__(self) -> str:
        return f"Bernoulli({self.probability})"


class LoopTrip(BranchModel):
    """A loop back-edge that is taken ``trips - 1`` times per activation.

    Attach to the conditional terminating a loop body with the *taken*
    target at the loop head: each activation of the loop then iterates
    ``trips`` times and exits once.  ``jitter`` draws the per-activation
    trip count uniformly from ``[trips - jitter, trips + jitter]``,
    keeping workloads from being perfectly periodic.
    """

    __slots__ = ("trips", "jitter")

    def __init__(self, trips: int, jitter: int = 0) -> None:
        if trips < 1:
            raise ProgramStructureError(f"trip count must be >= 1, got {trips}")
        if jitter < 0 or jitter >= trips:
            raise ProgramStructureError(
                f"jitter must be in [0, trips), got {jitter} for trips={trips}"
            )
        self.trips = trips
        self.jitter = jitter

    def _activation_trips(self, ctx: DecisionContext) -> int:
        if self.jitter == 0:
            return self.trips
        return ctx.rng.randint(self.trips - self.jitter, self.trips + self.jitter)

    def next_taken(self, ctx: DecisionContext) -> bool:
        state = ctx.site_state
        remaining = state.get("loop_remaining")
        if remaining is None:
            remaining = self._activation_trips(ctx)
        remaining -= 1
        if remaining <= 0:
            state["loop_remaining"] = None
            return False
        state["loop_remaining"] = remaining
        return True

    def __repr__(self) -> str:
        return f"LoopTrip({self.trips}, jitter={self.jitter})"


class Periodic(BranchModel):
    """Repeats a fixed taken/not-taken pattern forever.

    ``Periodic([True, True, False])`` is taken twice then not taken,
    cycling.  Useful for exactly reproducing the paper's worked examples
    (Figures 2–4) in tests.
    """

    __slots__ = ("pattern",)

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ProgramStructureError("Periodic pattern must be non-empty")
        self.pattern = tuple(bool(x) for x in pattern)

    def next_taken(self, ctx: DecisionContext) -> bool:
        cursor = ctx.site_state.get("periodic_cursor", 0)
        ctx.site_state["periodic_cursor"] = (cursor + 1) % len(self.pattern)
        return self.pattern[cursor]

    def __repr__(self) -> str:
        return f"Periodic({list(self.pattern)!r})"


class PhaseShift(BranchModel):
    """Taken-probability that changes with program phase.

    ``phases`` is a sequence of ``(duration_steps, probability)`` pairs
    interpreted against the global step counter; after the last phase
    the schedule cycles.  Models Sherwood-style phase behaviour, which
    Section 4.3.1 identifies as a limit on trace combination (observed
    traces from one phase may not represent the next).
    """

    __slots__ = ("phases", "_cycle")

    def __init__(self, phases: Sequence[Tuple[int, float]]) -> None:
        if not phases:
            raise ProgramStructureError("PhaseShift needs at least one phase")
        for duration, probability in phases:
            if duration <= 0:
                raise ProgramStructureError(
                    f"phase duration must be positive, got {duration}"
                )
            if not 0.0 <= probability <= 1.0:
                raise ProgramStructureError(
                    f"phase probability must be in [0, 1], got {probability}"
                )
        self.phases = tuple((int(d), float(p)) for d, p in phases)
        self._cycle = sum(d for d, _ in self.phases)

    def probability_at(self, step: int) -> float:
        """Return the taken-probability in effect at a global step."""
        offset = step % self._cycle
        for duration, probability in self.phases:
            if offset < duration:
                return probability
            offset -= duration
        return self.phases[-1][1]

    def next_taken(self, ctx: DecisionContext) -> bool:
        return ctx.rng.random() < self.probability_at(ctx.step)

    def __repr__(self) -> str:
        return f"PhaseShift({list(self.phases)!r})"


class MarkovBiased(BranchModel):
    """Two-state Markov branch: outcomes are correlated run-to-run.

    ``stay_taken`` is the probability of repeating a taken outcome;
    ``stay_not_taken`` of repeating a not-taken outcome.  High values
    produce bursty behaviour (long runs down one path then the other),
    which stresses the trace-combination profiling window.
    """

    __slots__ = ("stay_taken", "stay_not_taken", "initial_taken")

    def __init__(
        self,
        stay_taken: float,
        stay_not_taken: float,
        initial_taken: bool = True,
    ) -> None:
        for name, value in (("stay_taken", stay_taken), ("stay_not_taken", stay_not_taken)):
            if not 0.0 <= value <= 1.0:
                raise ProgramStructureError(f"{name} must be in [0, 1], got {value}")
        self.stay_taken = stay_taken
        self.stay_not_taken = stay_not_taken
        self.initial_taken = initial_taken

    def next_taken(self, ctx: DecisionContext) -> bool:
        last = ctx.site_state.get("markov_last")
        if last is None:
            taken = self.initial_taken
        elif last:
            taken = ctx.rng.random() < self.stay_taken
        else:
            taken = not (ctx.rng.random() < self.stay_not_taken)
        ctx.site_state["markov_last"] = taken
        return taken

    def __repr__(self) -> str:
        return f"MarkovBiased({self.stay_taken}, {self.stay_not_taken})"


class TableIndirect(IndirectModel):
    """Indirect branch with a fixed target-probability table."""

    __slots__ = ("weights", "_cumulative")

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ProgramStructureError("TableIndirect needs at least one weight")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ProgramStructureError(f"weights must be non-negative and sum > 0: {weights}")
        self.weights = tuple(float(w) for w in weights)
        running = 0.0
        cumulative = []
        for weight in self.weights:
            running += weight
            cumulative.append(running)
        self._cumulative = tuple(cumulative)

    def next_target_index(self, ctx: DecisionContext, target_count: int) -> int:
        if target_count != len(self.weights):
            raise ProgramStructureError(
                f"indirect site has {target_count} targets but model has "
                f"{len(self.weights)} weights"
            )
        return ctx.rng.weighted_index(self._cumulative)

    def __repr__(self) -> str:
        return f"TableIndirect({list(self.weights)!r})"


class RoundRobinIndirect(IndirectModel):
    """Indirect branch that cycles through its targets in order.

    Deterministic; handy for tests and for dispatch loops whose target
    sequence is structured rather than random.
    """

    def next_target_index(self, ctx: DecisionContext, target_count: int) -> int:
        cursor = ctx.site_state.get("rr_cursor", 0)
        ctx.site_state["rr_cursor"] = (cursor + 1) % target_count
        return cursor


class PhaseIndirect(IndirectModel):
    """Indirect branch whose target table changes with program phase.

    ``phases`` is a sequence of ``(duration_steps, weights)`` pairs,
    cycling like :class:`PhaseShift`.  Models interpreters/VMs whose
    opcode mix shifts between program phases.
    """

    __slots__ = ("phases", "_cycle")

    def __init__(self, phases: Sequence[Tuple[int, Sequence[float]]]) -> None:
        if not phases:
            raise ProgramStructureError("PhaseIndirect needs at least one phase")
        built = []
        for duration, weights in phases:
            if duration <= 0:
                raise ProgramStructureError(
                    f"phase duration must be positive, got {duration}"
                )
            built.append((int(duration), TableIndirect(weights)))
        self.phases = tuple(built)
        self._cycle = sum(d for d, _ in self.phases)

    def next_target_index(self, ctx: DecisionContext, target_count: int) -> int:
        offset = ctx.step % self._cycle
        for duration, table in self.phases:
            if offset < duration:
                return table.next_target_index(ctx, target_count)
            offset -= duration
        return self.phases[-1][1].next_target_index(ctx, target_count)
