"""Streaming reader for the binary trace format."""

from __future__ import annotations

from typing import BinaryIO, Callable, Iterator, Optional

from repro.errors import TraceFormatError
from repro.execution.events import Step
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.tracing.records import (
    FLAG_HAS_TARGET,
    FLAG_TAKEN,
    RECORD_HEAD,
    RECORD_TARGET,
    TraceHeader,
)

#: Read granularity; records are parsed out of chunks this large.
_CHUNK_BYTES = 1 << 20


class TraceReader:
    """Reads a binary trace back into Steps against its program.

    The reader checks that the program's name and block count match the
    header — replaying a trace against the wrong program would produce
    silently nonsensical results otherwise.
    """

    def __init__(self, stream: BinaryIO, program: Program) -> None:
        self._stream = stream
        self.header = TraceHeader.decode(stream)
        if self.header.program_name != program.name:
            raise TraceFormatError(
                f"trace was recorded for program {self.header.program_name!r}, "
                f"not {program.name!r}"
            )
        if self.header.block_count != program.block_count:
            raise TraceFormatError(
                f"trace expects {self.header.block_count} blocks but program "
                f"{program.name!r} has {program.block_count}"
            )
        self._program = program

    def steps(self) -> Iterator[Step]:
        """Yield all recorded steps in order."""
        blocks = self._program.blocks
        head_size = RECORD_HEAD.size
        target_size = RECORD_TARGET.size
        unpack_head = RECORD_HEAD.unpack_from
        unpack_target = RECORD_TARGET.unpack_from

        buffer = b""
        offset = 0
        while True:
            if offset + head_size > len(buffer):
                chunk = self._stream.read(_CHUNK_BYTES)
                buffer = buffer[offset:] + chunk
                offset = 0
                if len(buffer) < head_size:
                    if buffer:
                        raise TraceFormatError("trailing bytes in trace stream")
                    return
            block_id, flags = unpack_head(buffer, offset)
            offset += head_size
            target = None
            if flags & FLAG_HAS_TARGET:
                if offset + target_size > len(buffer):
                    chunk = self._stream.read(_CHUNK_BYTES)
                    buffer = buffer[offset:] + chunk
                    offset = 0
                    if len(buffer) < target_size:
                        raise TraceFormatError("truncated target record")
                (target_id,) = unpack_target(buffer, offset)
                offset += target_size
                try:
                    target = blocks[target_id]
                except IndexError:
                    raise TraceFormatError(
                        f"target block id {target_id} out of range"
                    ) from None
            try:
                block = blocks[block_id]
            except IndexError:
                raise TraceFormatError(f"block id {block_id} out of range") from None
            yield Step(block, bool(flags & FLAG_TAKEN), target)

    def steps_into(
        self,
        consumer: Callable[[BasicBlock, bool, Optional[BasicBlock]], object],
    ) -> int:
        """Push-decode: call ``consumer(block, taken, target)`` per record.

        The fast-path twin of :meth:`steps` — identical chunked parse
        and identical error behaviour, but no generator suspension and
        no :class:`Step` allocation, so a replayed run can feed the
        simulator's fused consume loop
        (:meth:`~repro.system.simulator.Simulator.run_push`) at
        near-live speed.  Returns the number of records decoded.
        """
        blocks = self._program.blocks
        read = self._stream.read
        head_size = RECORD_HEAD.size
        target_size = RECORD_TARGET.size
        unpack_head = RECORD_HEAD.unpack_from
        unpack_target = RECORD_TARGET.unpack_from

        count = 0
        buffer = b""
        buffer_len = 0
        offset = 0
        while True:
            if offset + head_size > buffer_len:
                buffer = buffer[offset:] + read(_CHUNK_BYTES)
                buffer_len = len(buffer)
                offset = 0
                if buffer_len < head_size:
                    if buffer:
                        raise TraceFormatError("trailing bytes in trace stream")
                    return count
            block_id, flags = unpack_head(buffer, offset)
            offset += head_size
            if flags & FLAG_HAS_TARGET:
                if offset + target_size > buffer_len:
                    buffer = buffer[offset:] + read(_CHUNK_BYTES)
                    buffer_len = len(buffer)
                    offset = 0
                    if buffer_len < target_size:
                        raise TraceFormatError("truncated target record")
                (target_id,) = unpack_target(buffer, offset)
                offset += target_size
                try:
                    target = blocks[target_id]
                except IndexError:
                    raise TraceFormatError(
                        f"target block id {target_id} out of range"
                    ) from None
            else:
                target = None
            try:
                block = blocks[block_id]
            except IndexError:
                raise TraceFormatError(f"block id {block_id} out of range") from None
            consumer(block, True if flags & FLAG_TAKEN else False, target)
            count += 1
