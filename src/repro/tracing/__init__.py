"""Trace collection and replay: the Pin substitute.

The paper collects basic-block traces of SPECint2000 with Pin and feeds
them to the region-selection simulator.  We provide the same decoupling:

* :func:`~repro.tracing.collector.collect_trace` runs an execution
  engine and writes its step stream to a compact binary ``.rtrc`` file;
* :func:`~repro.tracing.collector.replay_trace` re-yields the identical
  :class:`~repro.execution.Step` stream from the file;
* :func:`~repro.tracing.collector.replay_trace_into` pushes the same
  stream into a ``consumer(block, taken, target)`` callback — the
  allocation-free twin that feeds the simulator's fused pipeline
  (:meth:`Simulator.run_push <repro.system.simulator.Simulator.run_push>`).

Because the simulator accepts any iterable of steps, experiments can be
run live (engine → simulator) or in the classic two-phase style
(collect once, replay for every selection algorithm) with bit-identical
results — the property the paper's footnote 4 highlights ("all details
of region selection have been abstracted out of the framework").
"""

from repro.tracing.records import TraceHeader
from repro.tracing.encoder import TraceWriter
from repro.tracing.decoder import TraceReader
from repro.tracing.collector import (
    collect_trace,
    replay_trace,
    replay_trace_into,
    trace_header,
)
from repro.tracing.jsonl import read_jsonl_trace, write_jsonl_trace

__all__ = [
    "TraceHeader",
    "TraceWriter",
    "TraceReader",
    "collect_trace",
    "replay_trace",
    "replay_trace_into",
    "trace_header",
    "write_jsonl_trace",
    "read_jsonl_trace",
]
