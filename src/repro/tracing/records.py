"""On-disk record formats for the binary trace format.

Layout (little-endian throughout):

* header: magic ``b"RTRC"``, version ``u16``, name length ``u16``,
  UTF-8 program name, block count ``u32``, seed ``u64``.
* one record per step: block id ``u32``, flags ``u8``
  (bit 0 = taken, bit 1 = has target), and when bit 1 is set the
  target block id ``u32``.

Block ids are the dense ids assigned by program finalization, so a
trace file is only meaningful together with the program that produced
it; the header's block count is a cheap consistency check for that
pairing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import TraceFormatError

MAGIC = b"RTRC"
VERSION = 1

_HEADER_FIXED = struct.Struct("<4sHH")
_HEADER_TAIL = struct.Struct("<IQ")
RECORD_HEAD = struct.Struct("<IB")
RECORD_TARGET = struct.Struct("<I")

FLAG_TAKEN = 0x01
FLAG_HAS_TARGET = 0x02


@dataclass(frozen=True)
class TraceHeader:
    """Identifies the program a trace belongs to."""

    program_name: str
    block_count: int
    seed: int

    def encode(self) -> bytes:
        name_bytes = self.program_name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise TraceFormatError("program name too long for trace header")
        return (
            _HEADER_FIXED.pack(MAGIC, VERSION, len(name_bytes))
            + name_bytes
            + _HEADER_TAIL.pack(self.block_count, self.seed)
        )

    @classmethod
    def decode(cls, stream) -> "TraceHeader":
        fixed = stream.read(_HEADER_FIXED.size)
        if len(fixed) != _HEADER_FIXED.size:
            raise TraceFormatError("truncated trace header")
        magic, version, name_length = _HEADER_FIXED.unpack(fixed)
        if magic != MAGIC:
            raise TraceFormatError(f"bad trace magic {magic!r}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        name_bytes = stream.read(name_length)
        if len(name_bytes) != name_length:
            raise TraceFormatError("truncated program name in trace header")
        tail = stream.read(_HEADER_TAIL.size)
        if len(tail) != _HEADER_TAIL.size:
            raise TraceFormatError("truncated trace header tail")
        block_count, seed = _HEADER_TAIL.unpack(tail)
        return cls(name_bytes.decode("utf-8"), block_count, seed)
