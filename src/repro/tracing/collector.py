"""High-level trace collection and replay helpers."""

from __future__ import annotations

import os
from typing import Callable, Iterator, Optional, Union

from repro.program.cfg import BasicBlock

from repro.execution.engine import ExecutionEngine
from repro.execution.events import Step
from repro.program.program import Program
from repro.tracing.decoder import TraceReader
from repro.tracing.encoder import TraceWriter
from repro.tracing.records import TraceHeader

PathLike = Union[str, "os.PathLike[str]"]


def collect_trace(engine: ExecutionEngine, path: PathLike) -> int:
    """Run ``engine`` to completion, recording its steps to ``path``.

    Returns the number of steps written.  This is the analogue of the
    paper's Pin-based collection pass.
    """
    header = TraceHeader(
        program_name=engine.program.name,
        block_count=engine.program.block_count,
        seed=engine.seed,
    )
    with open(path, "wb") as fh:
        with TraceWriter(fh, header) as writer:
            # Push mode: the engine calls ``writer.write`` per block, so
            # collection allocates no Step objects (bit-identical stream
            # to the reference generator, per the fast-path suite).
            engine.run_into(writer.write)
            return writer.steps_written


def replay_trace(path: PathLike, program: Program) -> Iterator[Step]:
    """Yield the recorded step stream of ``path`` against ``program``."""
    with open(path, "rb") as fh:
        reader = TraceReader(fh, program)
        yield from reader.steps()


def replay_trace_into(
    path: PathLike,
    program: Program,
    consumer: Callable[[BasicBlock, bool, Optional[BasicBlock]], object],
) -> int:
    """Push the recorded stream of ``path`` into ``consumer``.

    The fast-path twin of :func:`replay_trace`: pair it with
    :meth:`Simulator.run_push
    <repro.system.simulator.Simulator.run_push>` to replay a collected
    trace through the fused pipeline —

    >>> simulator.run_push(
    ...     lambda consume: replay_trace_into(path, program, consume)
    ... )                                                 # doctest: +SKIP

    Returns the number of steps replayed.
    """
    with open(path, "rb") as fh:
        reader = TraceReader(fh, program)
        return reader.steps_into(consumer)


def trace_header(path: PathLike) -> TraceHeader:
    """Read just the header of a trace file (for inventory tooling)."""
    with open(path, "rb") as fh:
        return TraceHeader.decode(fh)
