"""Streaming writer for the binary trace format."""

from __future__ import annotations

from typing import BinaryIO

from repro.errors import TraceFormatError
from repro.execution.events import Step
from repro.tracing.records import (
    FLAG_HAS_TARGET,
    FLAG_TAKEN,
    RECORD_HEAD,
    RECORD_TARGET,
    TraceHeader,
)

#: Flush the in-memory buffer once it exceeds this many bytes.
_FLUSH_THRESHOLD = 1 << 20


class TraceWriter:
    """Writes Steps to a binary stream; use as a context manager.

    >>> with open(path, "wb") as fh:                      # doctest: +SKIP
    ...     with TraceWriter(fh, header) as writer:
    ...         for step in engine.run():
    ...             writer.write_step(step)
    """

    def __init__(self, stream: BinaryIO, header: TraceHeader) -> None:
        self._stream = stream
        self._buffer = bytearray()
        self._closed = False
        self.steps_written = 0
        stream.write(header.encode())

    def write(self, block, taken, target) -> None:
        """Append one step given as raw ``(block, taken, target)`` fields.

        The push-mode fast path: its signature matches the consumer
        contract of :meth:`ExecutionEngine.run_into
        <repro.execution.engine.ExecutionEngine.run_into>`, so a bound
        ``writer.write`` can collect a trace with no :class:`Step`
        allocation at all.
        """
        if self._closed:
            raise TraceFormatError("writer already closed")
        buffer = self._buffer
        block_id = block.block_id
        assert block_id is not None
        if target is not None:
            buffer += RECORD_HEAD.pack(
                block_id, (FLAG_TAKEN | FLAG_HAS_TARGET) if taken
                else FLAG_HAS_TARGET
            )
            target_id = target.block_id
            assert target_id is not None
            buffer += RECORD_TARGET.pack(target_id)
        else:
            buffer += RECORD_HEAD.pack(block_id, FLAG_TAKEN if taken else 0)
        self.steps_written += 1
        if len(buffer) >= _FLUSH_THRESHOLD:
            self._stream.write(buffer)
            buffer.clear()

    def write_step(self, step: Step) -> None:
        self.write(step.block, step.taken, step.target)

    def close(self) -> None:
        if not self._closed:
            if self._buffer:
                self._stream.write(self._buffer)
                self._buffer.clear()
            self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
