"""System configuration: every threshold and limit in one place.

Defaults are the paper's published values:

* NET execution threshold 50 (Section 2.1, "the published standard"),
* LEI cycle threshold 35 and history buffer size 500 (Section 3.2),
* trace combination ``T_prof = 15`` and ``T_min = 5`` with start
  thresholds chosen so that "regions are selected after the same number
  of interpreted executions": combined NET starts profiling at 35
  (35 + 15 = 50) and combined LEI at 20 (20 + 15 = 35) — Section 4.3.

The ablation benches construct non-default configs (for example the
footnote-8 setting ``T_prof = 5, T_min = 2``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class SystemConfig:
    """All tunables of the simulated dynamic optimization system."""

    #: NET's execution-count threshold for starting a trace.
    net_threshold: int = 50
    #: LEI's cycle-completion threshold (T_cyc).
    lei_threshold: int = 35
    #: LEI's branch history buffer capacity (taken branches).
    history_buffer_size: int = 500
    #: Hard cap on blocks in one trace (the Section 2.1 size limit).
    max_trace_blocks: int = 64
    #: Hard cap on instructions in one trace.
    max_trace_instructions: int = 512
    #: Trace combination: observed traces per region (T_prof).
    combine_t_prof: int = 15
    #: Trace combination: traces a block must appear in to be marked (T_min).
    combine_t_min: int = 5
    #: Combined NET profiling start threshold (T_start for NET).
    combined_net_t_start: int = 35
    #: Combined LEI profiling start threshold (T_start for LEI).
    combined_lei_t_start: int = 20
    #: Bytes charged per exit stub in the cache size estimate.
    stub_bytes: int = 10
    # ---- design-choice ablations --------------------------------------
    #: NET ends traces at ANY taken backward branch, including backward
    #: calls and returns (the interprocedural-forward-path rule).
    #: Setting this False lets NET extend through backward calls and
    #: returns — Section 2.2's counterfactual: "stopping at a backward
    #: function call or return enables NET to limit code expansion, but
    #: it prevents any interprocedural cycle from being spanned".
    net_stop_at_backward_calls: bool = True
    #: LEI admits cycles that close after a code-cache exit ("grow from
    #: an existing trace", Figure 5 line 9's second disjunct).  Setting
    #: this False restricts LEI to backward-closed cycles only.
    lei_allow_exit_cycles: bool = True
    # ---- related-work selectors (Section 5) --------------------------
    #: Mojo: lower execution threshold used for trace-exit targets
    #: ("one threshold for backward-branch targets and a lower threshold
    #: for trace exits").
    mojo_exit_threshold: int = 30
    #: BOA: executions of an entry point before a biased-direction trace
    #: is grown ("after the entry point ... is emulated 15 times").
    boa_threshold: int = 15
    #: Wiggins/Redstone: interpreted steps between program-counter
    #: samples.
    sampling_period: int = 200
    #: Wiggins/Redstone: interpreted steps of branch-direction
    #: instrumentation after a sample before the trace is grown.
    sampling_window: int = 400
    # ---- bounded code cache (extension; unbounded when None) ---------
    #: Code cache capacity in bytes; ``None`` reproduces the paper's
    #: unbounded setting (Section 2.3).
    cache_capacity_bytes: Optional[int] = None
    #: Eviction policy for bounded caches: "flush" (Dynamo-style
    #: preemptive flush of the whole cache) or "fifo" (evict oldest
    #: resident regions until the new one fits).
    cache_eviction_policy: str = "flush"

    def __post_init__(self) -> None:
        positive = [
            ("net_threshold", self.net_threshold),
            ("lei_threshold", self.lei_threshold),
            ("history_buffer_size", self.history_buffer_size),
            ("max_trace_blocks", self.max_trace_blocks),
            ("max_trace_instructions", self.max_trace_instructions),
            ("combine_t_prof", self.combine_t_prof),
            ("combine_t_min", self.combine_t_min),
            ("combined_net_t_start", self.combined_net_t_start),
            ("combined_lei_t_start", self.combined_lei_t_start),
            ("stub_bytes", self.stub_bytes),
            ("mojo_exit_threshold", self.mojo_exit_threshold),
            ("boa_threshold", self.boa_threshold),
            ("sampling_period", self.sampling_period),
            ("sampling_window", self.sampling_window),
        ]
        for name, value in positive:
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value}")
        if self.cache_capacity_bytes is not None and self.cache_capacity_bytes < 1:
            raise ConfigError(
                f"cache_capacity_bytes must be >= 1 or None, got "
                f"{self.cache_capacity_bytes}"
            )
        if self.cache_eviction_policy not in ("flush", "fifo"):
            raise ConfigError(
                "cache_eviction_policy must be 'flush' or 'fifo', got "
                f"{self.cache_eviction_policy!r}"
            )
        if self.combine_t_min > self.combine_t_prof:
            raise ConfigError(
                f"combine_t_min ({self.combine_t_min}) cannot exceed "
                f"combine_t_prof ({self.combine_t_prof}): the entrance block "
                "appears in every observed trace and must stay marked"
            )

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: The paper's published configuration.
PAPER_CONFIG = SystemConfig()
