"""A set-associative instruction-cache model over the code cache.

The paper's locality argument is ultimately about hardware:
"Separation degrades performance because it reduces locality of
execution — and therefore instruction cache performance — as control
jumps between distant traces" (Section 1).  The evaluation measures
region transitions as a proxy; this module closes the gap by simulating
an instruction cache over the *code cache's memory layout*:

* every region is laid out contiguously at the next free code-cache
  address when it is installed (blocks first, exit stubs after);
* every instruction fetch from the code cache touches the I-cache model
  line by line, with LRU replacement within each set.

Interpreted execution is excluded on purpose: the comparison is between
code-cache layouts, which is precisely what region selection controls.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CacheError


class InstructionCache:
    """Set-associative I-cache with LRU replacement.

    Sized like a typical L1I of the paper's era by default: 32 KiB,
    64-byte lines, 2-way.
    """

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        line_bytes: int = 64,
        associativity: int = 2,
    ) -> None:
        if line_bytes < 1 or size_bytes < line_bytes:
            raise CacheError(
                f"invalid I-cache geometry: size={size_bytes}, line={line_bytes}"
            )
        if associativity < 1:
            raise CacheError(f"associativity must be >= 1, got {associativity}")
        lines = size_bytes // line_bytes
        if lines % associativity:
            raise CacheError(
                f"{lines} lines do not divide into {associativity}-way sets"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.set_count = lines // associativity
        # set index -> tags in MRU-first order.
        self._sets: Dict[int, List[int]] = {}
        self.accesses = 0
        self.misses = 0

    def touch(self, address: int, length: int) -> int:
        """Fetch ``length`` bytes starting at ``address``; return misses."""
        if length <= 0:
            return 0
        first_line = address // self.line_bytes
        last_line = (address + length - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            self.accesses += 1
            set_index = line % self.set_count
            tag = line // self.set_count
            ways = self._sets.get(set_index)
            if ways is None:
                ways = self._sets[set_index] = []
            if tag in ways:
                if ways[0] != tag:
                    ways.remove(tag)
                    ways.insert(0, tag)
            else:
                self.misses += 1
                misses += 1
                ways.insert(0, tag)
                if len(ways) > self.associativity:
                    ways.pop()
        return misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        self.accesses = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<InstructionCache {self.size_bytes}B/{self.line_bytes}B "
            f"{self.associativity}-way misses={self.misses}/{self.accesses}>"
        )
