"""The code cache: region storage, entry lookup, insertion order.

Two variants:

* :class:`CodeCache` — unbounded, per Section 2.3: the paper
  deliberately factors cache management out of the region-selection
  study.
* :class:`BoundedCodeCache` — the extension the paper motivates
  ("our region-selection algorithms should help improve the
  performance of dynamic optimization systems with bounded code
  caches, because our algorithms reduce code duplication and produce
  fewer cached regions"): a byte-capacity cache with either Dynamo's
  preemptive *flush* policy or *FIFO* eviction, tracking evictions and
  regenerated regions.

Regions are addressed by their entry block — regions are single-entry,
so "is this branch target cached?" is exactly "does a *resident*
region's entry sit at this address?".  The ``regions`` list records
every region ever selected (eviction does not erase the optimizer work
already spent), which is what the code-expansion and cover-set metrics
are defined over.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, TYPE_CHECKING

from repro.cache.region import Region
from repro.cache.sizing import STUB_BYTES
from repro.errors import CacheError
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.program.cfg import BasicBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.dispatch import DispatchTable
    from repro.program.program import Program


class CodeCache:
    """Unbounded cache of selected regions, addressable by entry block."""

    def __init__(self) -> None:
        #: Observability handle (rebound by the simulator); the cache
        #: emits ``region_installed`` / ``cache_evicted`` /
        #: ``cache_flushed`` events and the install-side metrics, so
        #: every selector is covered from one place.
        self.observer: Observer = NULL_OBSERVER
        #: Every region ever selected, in selection order.
        self.regions: List[Region] = []
        self._by_entry: Dict[BasicBlock, Region] = {}
        #: Flat residency mirror of ``_by_entry``, indexed by interned
        #: block id (``bind_program``); ``None`` until a program is
        #: bound.  The fast paths index this list instead of hashing
        #: blocks.
        self._resident_by_id: Optional[List[Optional[Region]]] = None
        #: The active run's dispatch-compilation layer
        #: (:class:`~repro.cache.dispatch.DispatchTable`), bound by the
        #: fused fast path for the duration of one run so installs and
        #: evictions keep walk tables and trace links patched.
        self.dispatch: Optional["DispatchTable"] = None
        self._next_order = 0
        #: Simulation clock (step index), advanced by the simulator so
        #: insertions can be timestamped for timeline analysis.
        self.now = 0
        #: Next free byte in the cache's layout; regions are allocated
        #: contiguously in selection order (fragmentation from eviction
        #: is not modelled — evicted space is simply not reused).
        self._alloc_cursor = 0
        # Management statistics (always zero for the unbounded cache).
        self.evictions = 0
        self.flushes = 0
        self.regenerations = 0

    def bind_program(self, program: "Program") -> None:
        """Enable flat id-indexed residency for ``program``'s blocks.

        Finalized programs carry dense block ids, so residency becomes
        one list index in the hot loops.  Safe to call with regions
        already resident (the mirror is rebuilt); binding a different
        program resets the mirror to the new id space.
        """
        flat: List[Optional[Region]] = [None] * len(program.blocks)
        for region in self._by_entry.values():
            flat[region.entry.block_id] = region
        self._resident_by_id = flat

    def bind_dispatch(self, dispatch: "DispatchTable") -> None:
        """Attach one run's dispatch layer; compiles resident regions.

        While bound, every install/evict/flush keeps the dispatch's
        walk tables and link patches in sync with residency.  The fast
        path unbinds it when the run ends (tables hold per-run decision
        closures and must not leak into the next run).
        """
        self.dispatch = dispatch
        for region in self.resident_regions:
            dispatch.install(region)

    def unbind_dispatch(self) -> None:
        self.dispatch = None

    def lookup(self, block: Optional[BasicBlock]) -> Optional[Region]:
        """Return the *resident* region whose entry is ``block``, if any.

        This is the HASH-LOOKUP(code cache, tgt) of Figures 5 and 13;
        it is on the hot path for every taken branch and every region
        exit.
        """
        if block is None:
            return None
        return self._by_entry.get(block)

    def contains_entry(self, block: BasicBlock) -> bool:
        return block in self._by_entry

    def insert(self, region: Region) -> Region:
        """Install a region; its entry must not be resident already."""
        existing = self._by_entry.get(region.entry)
        if existing is not None:
            raise CacheError(
                f"entry {region.entry.full_label} already owned by region "
                f"#{existing.selection_order}"
            )
        self._make_room(region)
        region.selection_order = self._next_order
        region.selected_at_step = self.now
        region.cache_address = self._alloc_cursor
        self._alloc_cursor += self.region_bytes(region)
        self._next_order += 1
        self.regions.append(region)
        self._by_entry[region.entry] = region
        flat = self._resident_by_id
        if flat is not None:
            flat[region.entry.block_id] = region
        dispatch = self.dispatch
        if dispatch is not None:
            dispatch.install(region)
        observer = self.observer
        if observer.metrics is not None:
            observer.count("regions_installed_total", kind=region.kind)
            observer.metrics.histogram(
                "region_instructions",
                "Instructions copied into the cache per installed region.",
            ).observe(region.instruction_count)
        if observer.events_enabled:
            observer.emit(
                "region_installed",
                self.now,
                entry=region.entry.full_label,
                region_kind=region.kind,
                order=region.selection_order,
                blocks=len(region.block_list),
                instructions=region.instruction_count,
                stubs=region.exit_stub_count,
                spans_cycle=region.spans_cycle,
            )
        return region

    def _make_room(self, region: Region) -> None:
        """Hook for bounded caches; the unbounded cache never evicts."""

    # -- residency -------------------------------------------------------
    @property
    def resident_regions(self) -> List[Region]:
        """Regions currently addressable, in selection order."""
        return sorted(
            self._by_entry.values(),
            key=lambda r: r.selection_order if r.selection_order is not None else -1,
        )

    @property
    def resident_count(self) -> int:
        return len(self._by_entry)

    def region_bytes(self, region: Region) -> int:
        """Cache footprint of one region (instruction bytes + stubs)."""
        return region.instruction_bytes + STUB_BYTES * region.exit_stub_count

    @property
    def resident_bytes(self) -> int:
        return sum(self.region_bytes(r) for r in self._by_entry.values())

    # -- aggregate static properties (over everything ever selected) ----
    @property
    def region_count(self) -> int:
        return len(self.regions)

    @property
    def total_instructions(self) -> int:
        """Total instructions copied into the cache (code expansion).

        Counts every selection, including regenerated regions: it
        measures optimizer work done, per Section 2.3.
        """
        return sum(region.instruction_count for region in self.regions)

    @property
    def total_exit_stubs(self) -> int:
        return sum(region.exit_stub_count for region in self.regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} selected={len(self.regions)} "
            f"resident={self.resident_count} insts={self.total_instructions}>"
        )


class BoundedCodeCache(CodeCache):
    """A byte-capacity code cache with flush or FIFO eviction.

    ``policy="flush"`` models Dynamo's preemptive flush: when a new
    region does not fit, the entire cache is emptied (cheap, exploits
    phase changes).  ``policy="fifo"`` evicts the oldest resident
    regions until the new one fits (Hazelwood [14] studies richer
    policies; FIFO is the classic baseline).
    """

    def __init__(self, capacity_bytes: int, policy: str = "flush") -> None:
        super().__init__()
        if capacity_bytes < 1:
            raise CacheError(f"capacity must be positive, got {capacity_bytes}")
        if policy not in ("flush", "fifo"):
            raise CacheError(f"unknown eviction policy {policy!r}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self._ever_evicted: Set[BasicBlock] = set()

    def insert(self, region: Region) -> Region:
        installed = super().insert(region)
        if region.entry in self._ever_evicted:
            # The selector re-selected a region it had already formed
            # once: pure management overhead the paper's algorithms
            # reduce by caching less.
            self.regenerations += 1
            self.observer.count("cache_regenerations_total")
        return installed

    def _make_room(self, region: Region) -> None:
        needed = self.region_bytes(region)
        if self.resident_bytes + needed <= self.capacity_bytes:
            return
        if self.policy == "flush":
            self._flush()
        else:
            self._evict_fifo(needed)

    def _retire_region(self, victim: Region, policy: str) -> None:
        """The one eviction path — every victim leaves through here.

        Drops residency (dict *and* the flat id-indexed mirror),
        invalidates the victim's walk table and every trace link
        patched to point at it (when a run's dispatch layer is bound —
        a stale link would chain execution into evicted code), records
        it for regeneration accounting, and emits the eviction metric
        and event.  Both the flush and FIFO policies delegate here so
        per-region derived state can never be cleared in one place and
        leak in another.
        """
        del self._by_entry[victim.entry]
        flat = self._resident_by_id
        if flat is not None:
            flat[victim.entry.block_id] = None
        dispatch = self.dispatch
        if dispatch is not None:
            dispatch.retire(victim)
        self._ever_evicted.add(victim.entry)
        self.evictions += 1
        observer = self.observer
        if observer.metrics is not None:
            observer.count("cache_evictions_total", policy=policy)
        if observer.events_enabled:
            observer.emit(
                "cache_evicted",
                self.now,
                entry=victim.entry.full_label,
                order=victim.selection_order,
                bytes=self.region_bytes(victim),
                policy=policy,
            )

    def _flush(self) -> None:
        self.flushes += 1
        victims = self.resident_regions
        freed = self.resident_bytes
        observer = self.observer
        if observer.metrics is not None:
            observer.count("cache_flushes_total")
        for victim in victims:
            self._retire_region(victim, "flush")
        if observer.events_enabled:
            observer.emit(
                "cache_flushed", self.now, regions=len(victims), bytes=freed
            )

    def _evict_fifo(self, needed: int) -> None:
        for victim in self.resident_regions:
            if self.resident_bytes + needed <= self.capacity_bytes:
                return
            self._retire_region(victim, "fifo")


def make_cache(
    capacity_bytes: Optional[int] = None, policy: str = "flush"
) -> CodeCache:
    """Build the cache a config asks for (unbounded when no capacity)."""
    if capacity_bytes is None:
        return CodeCache()
    return BoundedCodeCache(capacity_bytes, policy)
