"""Compile-on-install dispatch tables for the fused fast path.

Installing a region into the code cache is rare; *walking* installed
regions is the hottest loop in the whole system (~3/4 of wall time on
cache-friendly workloads).  This module moves every piece of per-step
work that does not depend on the run's dynamic state out of the walk
loop and into a one-time compilation pass at install time — mirroring
how a Dynamo-style system copies, links and patches cache-resident
code *once* and then executes it without consulting its own tables:

* :class:`BlockInterner` — every basic block is interned to its dense
  ``block_id`` at program load, so all hot lookups index flat lists
  instead of hashing dict keys (residency, deciders, walk tables).
* :class:`TraceWalkTable` / :class:`CFGWalkTable` — an immutable flat
  walk table per installed region: per-position block, instruction
  count, pre-bound branch-decision closure (shared with the
  interpreter, so per-site state never forks), icache offsets, and
  *static-run* metadata — maximal spans of positions whose transfer is
  statically known to advance, which the walker executes in one bound.
* Direct trace→trace **link patching** — whenever a region exit's
  statically-known target is another resident region's entry, the walk
  table slot holds a direct reference to that region's table, so the
  fast path chains region to region without bouncing through
  ``CodeCache.lookup`` or selector dispatch.  Links are patched on
  install (:meth:`DispatchTable.install`) and invalidated on
  eviction/flush (:meth:`DispatchTable.retire`), which keeps
  bounded-cache runs correct: a slot is non-``None`` exactly when the
  region at its target address is resident *right now*.

The tables are semantics-free: every decision they encode replicates
the reference pipeline bit for bit (``tests/test_fast_path.py`` holds
the two pipelines equal), and the link metrics of
:mod:`repro.metrics.linking` agree between the patched fast path and
the reference pipeline (``tests/test_fast_path.py::TestLinkingIdentity``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.region import Region
from repro.errors import CacheError
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.program.program import Program

#: Field indices of one CFG walk-table record (a small mutable list so
#: the link slots can be patched in place; see :class:`CFGWalkTable`).
REC_DECIDE = 0
REC_COUNT = 1
REC_STAY = 2
REC_OFFSET = 3
REC_SIZE = 4
REC_LINK_TAKEN = 5
REC_LINK_FALL = 6
REC_DYNAMIC = 7

_DIRECT_TAKEN_KINDS = (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL)


class BlockInterner:
    """Dense integer ids for every block of one finalized program.

    Finalization already stamps each block with a dense ``block_id``
    (layout order); the interner validates that density once and then
    serves as the authority for flat, id-indexed tables.  ``id_of`` /
    ``block_of`` round-trip exactly — the property suite in
    ``tests/test_dispatch.py`` holds the bijection.
    """

    __slots__ = ("program", "blocks", "size")

    def __init__(self, program: Program) -> None:
        blocks = tuple(program.blocks)
        for index, block in enumerate(blocks):
            if block.block_id != index:
                raise CacheError(
                    f"block {block.full_label} carries id {block.block_id} "
                    f"but sits at index {index}; ids must be dense layout "
                    f"order (finalize the program first)"
                )
        self.program = program
        self.blocks = blocks
        self.size = len(blocks)

    def id_of(self, block: BasicBlock) -> int:
        """The block's dense id, verifying it belongs to this program."""
        bid = block.block_id
        if bid is None or bid >= self.size or self.blocks[bid] is not block:
            raise CacheError(
                f"block {block.full_label} is not interned in program "
                f"{self.program.name!r}"
            )
        return bid

    def block_of(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]


class _LinkSite:
    """One patchable link slot: ``container[key]`` holds the walk table
    of the resident region at the slot's exit target (or ``None``)."""

    __slots__ = ("container", "key")

    def __init__(self, container: list, key: int) -> None:
        self.container = container
        self.key = key


class TraceWalkTable:
    """Flat per-position walk table for one installed trace region.

    Parallel tuples indexed by path position; the walker touches no
    region/block attributes per step.  ``run_len[i]`` is the length of
    the maximal *static run* starting at ``i``: consecutive positions
    whose pre-bound decision is a constant ``(taken, target)`` tuple
    that advances to the next path position — the walker consumes the
    whole span in one loop iteration (``run_insts[i]`` instructions)
    and tallies the walked edges via ``run_hits``.

    ``adv``/``cyc``/``run_hits`` accumulate walked-edge counts by
    position; :meth:`fold_edges` folds them into the run's shared edge
    profile once at end of run (the walked edge is fully determined by
    the position, and dict equality does not see insertion order).
    """

    is_trace = True

    __slots__ = (
        "region", "path", "path_len", "path0", "deciders", "counts",
        "offsets", "sizes", "run_len", "run_insts", "dyn_exit",
        "link_taken", "link_fall", "adv", "cyc", "run_hits", "sites",
        "arena_base", "arena_tidx", "arena_entry",
    )

    def __init__(self, region: Region) -> None:
        self.region = region
        self.path: Tuple[BasicBlock, ...] = tuple(region.path)
        n = len(self.path)
        self.path_len = n
        self.path0 = self.path[0]
        self.counts = tuple(b.bundle.count for b in self.path)
        self.offsets = tuple(region.position_offsets)
        self.sizes = tuple(b.byte_size for b in self.path)
        self.dyn_exit = tuple(
            b.terminator.kind.target_is_dynamic for b in self.path
        )
        self.deciders: List[object] = []
        self.run_len: Tuple[int, ...] = ()
        self.run_insts: Tuple[int, ...] = ()
        self.link_taken: List[Optional[object]] = [None] * n
        self.link_fall: List[Optional[object]] = [None] * n
        self.adv = [0] * n
        self.cyc = [0] * n
        self.run_hits = [0] * n
        #: ``(target block id, site)`` for every link slot this table
        #: registered — unregistered again when the table is retired.
        self.sites: List[Tuple[int, _LinkSite]] = []
        #: Position of this table in a batched-execution arena (set by
        #: :meth:`repro.batch.kernel.FleetKernel.register_table`); -1
        #: outside batched runs.  ``arena_entry`` is the absolute arena
        #: position a transfer *into* this table lands on (for a trace,
        #: its base — traces are entered at path position 0).
        self.arena_base = -1
        self.arena_tidx = -1
        self.arena_entry = -1

    def fold_edges(self, edge_profile: Dict) -> None:
        """Fold the batched walked-edge counts into ``edge_profile``."""
        adv = self.adv
        run_len = self.run_len
        for i, hits in enumerate(self.run_hits):
            if hits:
                for j in range(i, i + run_len[i]):
                    adv[j] += hits
        self.run_hits = [0] * self.path_len
        path = self.path
        get = edge_profile.get
        for i, count in enumerate(adv):
            if count:
                edge = (path[i], path[i + 1])
                edge_profile[edge] = get(edge, 0) + count
        self.adv = [0] * self.path_len
        top = path[0]
        for i, count in enumerate(self.cyc):
            if count:
                edge = (path[i], top)
                edge_profile[edge] = get(edge, 0) + count
        self.cyc = [0] * self.path_len


class CFGWalkTable:
    """Per-block walk records for one installed multi-path region.

    ``records[block]`` is a small list (indexed by the ``REC_*``
    constants): pre-bound decision closure, instruction count, the set
    of targets a *taken* transfer may stay internal on (observed edges
    for dynamic blocks, the whole block set otherwise), icache layout
    offsets, the two patchable link slots, and the dynamic-target flag.

    The records are *flat by position* too: ``block_list`` fixes a
    deterministic block order (the region's own), ``index_of`` inverts
    it, and ``entry_pos`` locates the region entry — which is what
    lets the batched kernel concatenate CFG tables into the same
    global walk arena as traces (one arena row per block, internal
    successors precomputed per branch direction).
    """

    is_trace = False

    __slots__ = ("region", "entry", "blocks", "records", "entry_record",
                 "sites", "block_list", "index_of", "entry_pos",
                 "arena_base", "arena_tidx", "arena_entry")

    def __init__(self, region: Region) -> None:
        self.region = region
        self.entry = region.entry
        self.blocks = region.block_set
        self.records: Dict[BasicBlock, list] = {}
        self.entry_record: Optional[list] = None
        self.sites: List[Tuple[int, _LinkSite]] = []
        self.block_list: Tuple[BasicBlock, ...] = tuple(region.block_list)
        self.index_of: Dict[BasicBlock, int] = {
            block: position for position, block in enumerate(self.block_list)
        }
        self.entry_pos = self.index_of[region.entry]
        #: Arena coordinates, mirroring :class:`TraceWalkTable`;
        #: ``arena_entry`` is ``arena_base + entry_pos`` (CFG regions
        #: are always entered at their entry block).
        self.arena_base = -1
        self.arena_tidx = -1
        self.arena_entry = -1


class DispatchTable:
    """The compile-on-install layer between region install and the walk.

    One instance serves one run of the fused fast path: the simulator
    binds it to the code cache before the loop starts, the cache calls
    :meth:`install` / :meth:`retire` as regions come and go, and the
    walker reads ``tables_by_entry`` (a flat list indexed by interned
    block id — the HASH-LOOKUP of Figures 5/13 reduced to one list
    index) plus the per-table link slots.

    ``decider_for`` supplies the pre-bound branch-decision closure for
    a block; it must be shared with the interpreter's dispatch so that
    per-site decision state (loop trip cells, periodic cursors) never
    forks between contexts.
    """

    def __init__(
        self,
        program: Program,
        decider_for: Callable[[BasicBlock], object],
    ) -> None:
        self.interner = BlockInterner(program)
        self.decider_for = decider_for
        #: Flat residency: entry block id -> walk table of the resident
        #: region entered there, ``None`` when nothing is resident.
        self.tables_by_entry: List[Optional[object]] = (
            [None] * self.interner.size
        )
        #: Every trace table ever compiled this run, for edge folding
        #: (tables of evicted regions keep their walked-edge counts).
        self.trace_tables: List[TraceWalkTable] = []
        #: Every CFG table ever compiled this run — the batched kernel
        #: banks walked-edge and region counts per arena row and folds
        #: them at lane finish, exactly like the trace tables.
        self.cfg_tables: List[CFGWalkTable] = []
        self._link_sites: Dict[int, List[_LinkSite]] = {}
        #: Optional ``hook(site, table_or_None)`` invoked after every
        #: link-slot patch — a mirror point for layers that shadow the
        #: link slots elsewhere (the batched kernel keeps arena link
        #: columns in sync through it).  ``None`` costs nothing.
        self.on_link_patch: Optional[Callable] = None

    # -- compilation -----------------------------------------------------
    def _register(
        self,
        table,
        target: Optional[BasicBlock],
        container: list,
        key: int,
    ) -> None:
        """Wire one link slot: seed it from current residency and keep
        it patched as regions install/retire at ``target``."""
        if target is None:
            return
        tid = target.block_id
        container[key] = self.tables_by_entry[tid]
        site = _LinkSite(container, key)
        self._link_sites.setdefault(tid, []).append(site)
        table.sites.append((tid, site))

    def compile(self, region: Region):
        """Compile a region into its walk table (no residency change)."""
        if region.is_trace:
            return self._compile_trace(region)
        return self._compile_cfg(region)

    def _compile_trace(self, region: Region) -> TraceWalkTable:
        table = TraceWalkTable(region)
        path = table.path
        n = table.path_len
        decider_for = self.decider_for
        deciders = [decider_for(block) for block in path]
        table.deciders = deciders
        # Static runs: position i advances unconditionally when its
        # decision is a constant tuple whose target is the next path
        # block.  (The last position never advances, so runs never
        # reach past n-1; a span landing there is handled stepwise.)
        counts = table.counts
        run_len = [0] * n
        run_insts = [0] * n
        for i in range(n - 2, -1, -1):
            decide = deciders[i]
            if decide.__class__ is tuple and decide[1] is path[i + 1]:
                run_len[i] = 1 + run_len[i + 1]
                run_insts[i] = counts[i] + run_insts[i + 1]
        table.run_len = tuple(run_len)
        table.run_insts = tuple(run_insts)
        for i, block in enumerate(path):
            term = block.terminator
            kind = term.kind
            if kind.target_is_dynamic:
                continue
            if kind in _DIRECT_TAKEN_KINDS:
                self._register(table, term.taken_target, table.link_taken, i)
            if kind.may_fall_through:
                self._register(table, block.fallthrough, table.link_fall, i)
        self.trace_tables.append(table)
        return table

    def _compile_cfg(self, region: Region) -> CFGWalkTable:
        table = CFGWalkTable(region)
        blocks = region.block_set
        edges = region.edges
        dynamic = region.dynamic_blocks
        offsets = region.block_offsets
        decider_for = self.decider_for
        records = table.records
        for block in region.block_list:
            term = block.terminator
            kind = term.kind
            if block in dynamic:
                # Dynamic transfers stay internal only along observed
                # edges — the inlined target-compare chain.
                stay_taken = frozenset(
                    dst for src, dst in edges if src is block
                )
            else:
                stay_taken = blocks
            record = [
                decider_for(block),
                block.bundle.count,
                stay_taken,
                offsets[block],
                block.byte_size,
                None,
                None,
                kind.target_is_dynamic,
            ]
            records[block] = record
            if not kind.target_is_dynamic:
                if kind in _DIRECT_TAKEN_KINDS:
                    self._register(
                        table, term.taken_target, record, REC_LINK_TAKEN
                    )
                if kind.may_fall_through:
                    self._register(
                        table, block.fallthrough, record, REC_LINK_FALL
                    )
        table.entry_record = records[region.entry]
        self.cfg_tables.append(table)
        return table

    # -- residency and link patching -------------------------------------
    def install(self, region: Region):
        """Compile ``region`` and patch every link slot aimed at it."""
        table = self.compile(region)
        entry_id = region.entry.block_id
        self.tables_by_entry[entry_id] = table
        hook = self.on_link_patch
        for site in self._link_sites.get(entry_id, ()):
            site.container[site.key] = table
            if hook is not None:
                hook(site, table)
        return table

    def retire(self, region: Region) -> None:
        """Invalidate ``region``'s table: null every link slot aimed at
        its entry and unregister the table's own outgoing slots."""
        entry_id = region.entry.block_id
        table = self.tables_by_entry[entry_id]
        if table is None or table.region is not region:
            return
        self.tables_by_entry[entry_id] = None
        hook = self.on_link_patch
        for site in self._link_sites.get(entry_id, ()):
            site.container[site.key] = None
            if hook is not None:
                hook(site, None)
        link_sites = self._link_sites
        for tid, site in table.sites:
            sites = link_sites.get(tid)
            if sites is not None:
                sites.remove(site)
                if not sites:
                    del link_sites[tid]
        table.sites = []

    def table_for(self, region: Region):
        """The region's resident table, or a fresh (non-resident)
        compilation — selectors may hand back regions they chose not to
        install, and the walker still needs a table to walk them."""
        table = self.tables_by_entry[region.entry.block_id]
        if table is not None and table.region is region:
            return table
        return self.compile(region)

    # -- verification (tests and debugging) ------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`CacheError` if any link slot dangles.

        Invariant: every registered link slot holds exactly
        ``tables_by_entry[target id]`` — a patched link exists iff the
        region at its target address is resident right now.
        """
        for entry_id, table in enumerate(self.tables_by_entry):
            if table is None:
                continue
            if table.region.entry.block_id != entry_id:
                raise CacheError(
                    f"walk table at entry id {entry_id} belongs to a "
                    f"region entered at block id "
                    f"{table.region.entry.block_id}"
                )
        for tid, sites in self._link_sites.items():
            expected = self.tables_by_entry[tid]
            for site in sites:
                if site.container[site.key] is not expected:
                    raise CacheError(
                        f"dangling link slot for block id {tid}: slot "
                        f"holds {site.container[site.key]!r}, residency "
                        f"says {expected!r}"
                    )
