"""Exit-stub accounting.

Every way control can leave a cached region needs an *exit stub*: a
small landing pad that saves state and transfers to the dispatcher (or,
once linked, jumps straight to another region).  Hazelwood [14] reports
stubs appear roughly every six instructions and cost at least three
instructions each, so stub counts materially affect cache size — the
paper's Figure 19 tracks them explicitly and Figure 18's size estimate
charges 10 bytes per stub.

Counting rules (matching Section 2.1/4.2.3):

* a conditional branch contributes a stub for each side that does not
  continue inside the region;
* direct jumps/calls contribute a stub only when their target is
  outside the region;
* returns and indirect branches always contribute one stub (the
  fallback lookup path), regardless of how many observed targets stay
  inside;
* a fall-through off the end of the region is a stub;
* a trace whose final branch re-enters its own top (a spanned cycle)
  needs no stub for that branch.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Tuple

from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock


def _direct_outcomes(block: BasicBlock):
    """Yield the statically-known successor blocks of a block.

    Yields ``(target, is_dynamic)`` pairs; dynamic transfers yield a
    single ``(None, True)`` marker since their targets are unknown.
    """
    term = block.terminator
    kind = term.kind
    if kind is BranchKind.COND:
        yield term.taken_target, False
        yield block.fallthrough, False
    elif kind in (BranchKind.JUMP, BranchKind.CALL):
        yield term.taken_target, False
    elif kind is BranchKind.FALLTHROUGH:
        yield block.fallthrough, False
    elif kind in (BranchKind.RETURN, BranchKind.INDIRECT):
        yield None, True
    # HALT: nothing.


def trace_exit_stubs(path: Sequence[BasicBlock], spans_cycle: bool) -> int:
    """Count the exit stubs a trace needs.

    For every block, each possible outcome that does not continue to the
    next path block is a stub.  The final block's continuation is the
    trace end: if the trace spans a cycle, the branch back to the top is
    internal; otherwise every outcome of the last block exits.
    """
    stubs = 0
    last_index = len(path) - 1
    for index, block in enumerate(path):
        successor = path[index + 1] if index < last_index else None
        cycle_target = path[0] if (index == last_index and spans_cycle) else None
        for target, is_dynamic in _direct_outcomes(block):
            if is_dynamic:
                # One fallback stub; if the dynamic transfer continues the
                # trace it still needs the mismatch exit.
                stubs += 1
            elif target is not successor and target is not cycle_target:
                stubs += 1
    return stubs


def cfg_region_exit_stubs(
    blocks: FrozenSet[BasicBlock],
    edges: FrozenSet[Tuple[BasicBlock, BasicBlock]],
) -> int:
    """Count the exit stubs a CFG region needs.

    Direct outcomes whose target block lies inside the region are
    internal edges (Section 4.2.3's exit-replacement); everything else
    is a stub.  Dynamic transfers keep one fallback stub each.
    """
    stubs = 0
    for block in blocks:
        for target, is_dynamic in _direct_outcomes(block):
            if is_dynamic:
                stubs += 1
            elif target is None or target not in blocks:
                stubs += 1
    return stubs
