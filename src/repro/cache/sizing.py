"""Cache size estimation, exactly as Section 4.3.4 specifies.

"To estimate its size, we compute the total number of instruction bytes
inserted in the code cache and conservatively add 10 bytes for each
exit stub."  Optimization effects on region size and inter-region link
memory are ignored, as in the paper.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.region import Region

#: Conservative per-stub size: at least three instructions at 3-4 bytes
#: each would exceed this, so 10 bytes understates stub cost — the same
#: conservative direction the paper chooses.
STUB_BYTES = 10


def estimate_cache_bytes(regions: Iterable[Region], stub_bytes: int = STUB_BYTES) -> int:
    """Estimated code cache footprint in bytes."""
    total = 0
    for region in regions:
        total += region.instruction_bytes + stub_bytes * region.exit_stub_count
    return total
