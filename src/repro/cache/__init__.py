"""Code cache substrate: regions, exit stubs, and the cache itself.

A *region* is the unit of code selected, optimized and cached by the
dynamic optimization system (Section 1).  Two concrete kinds exist:

* :class:`~repro.cache.region.TraceRegion` — an interprocedural
  superblock: one entry, a straight-line block path, side exits.  This
  is what NET and LEI select.
* :class:`~repro.cache.region.CFGRegion` — a single-entry multi-path
  region with internal split and join points.  This is what trace
  combination (Section 4) selects.

The cache is unbounded (per Section 2.3) and addressed by region entry
block; exits whose targets are cached entries are linked directly,
which the simulator models by checking the cache at every region exit.
"""

from repro.cache.region import CFGRegion, Region, TraceRegion
from repro.cache.codecache import BoundedCodeCache, CodeCache, make_cache
from repro.cache.sizing import STUB_BYTES, estimate_cache_bytes

__all__ = [
    "Region",
    "TraceRegion",
    "CFGRegion",
    "CodeCache",
    "BoundedCodeCache",
    "make_cache",
    "STUB_BYTES",
    "estimate_cache_bytes",
]
