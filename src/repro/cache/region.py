"""Regions: traces and multi-path CFG regions in the code cache.

A region holds *copies* of original program blocks (modelled by
referencing the original :class:`~repro.program.cfg.BasicBlock`
objects; block identity in the original program is what all metrics
are defined over).  Each region also accumulates its own execution
statistics, which the metrics package aggregates after a run:

* ``entry_count`` — entries from the interpreter or from other regions,
* ``cycle_backs`` — taken branches from inside the region to its own
  entry (the *executed cycle* events of Section 3.2.1),
* ``exit_count`` — executions that left the region,
* ``executed_instructions`` — instructions executed from this region's
  cached copy (drives hit rate and the 90% cover set).
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.cache.stubs import cfg_region_exit_stubs, trace_exit_stubs
from repro.errors import CacheError
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock


class Region(abc.ABC):
    """Base class for cached regions."""

    kind: str = "region"
    #: Class-level discriminator for the simulator's hot loops: reading
    #: an attribute is far cheaper than ``isinstance`` against an ABC
    #: (which routes through ``_abc_instancecheck`` on every region
    #: entry and transition).
    is_trace: bool = False

    def __init__(self, entry: BasicBlock) -> None:
        self.entry = entry
        #: Order in which the region was selected; set by the cache.
        self.selection_order: Optional[int] = None
        #: Simulation step at which the region was installed.
        self.selected_at_step: Optional[int] = None
        #: Byte address of the region inside the code cache's layout
        #: (assigned by the cache at insert time).
        self.cache_address: Optional[int] = None
        # Execution statistics, updated by the simulator.
        self.entry_count = 0
        self.cycle_backs = 0
        self.exit_count = 0
        self.executed_instructions = 0

    # -- static shape ---------------------------------------------------
    @property
    @abc.abstractmethod
    def block_list(self) -> Sequence[BasicBlock]:
        """All block copies in the region (duplicates possible in traces)."""

    @property
    @abc.abstractmethod
    def block_set(self) -> FrozenSet[BasicBlock]:
        """The distinct original blocks the region contains."""

    @property
    @abc.abstractmethod
    def exit_stub_count(self) -> int:
        """Number of exit stubs the cached region requires."""

    @abc.abstractmethod
    def internal_edges(self) -> Set[Tuple[BasicBlock, BasicBlock]]:
        """Edges (by original blocks) kept inside the region."""

    @property
    def instruction_count(self) -> int:
        """Instructions copied into the cache for this region.

        This is the paper's *code expansion* contribution of the region:
        every block copy counts, so a block duplicated across regions is
        counted once per region.
        """
        return sum(block.instruction_count for block in self.block_list)

    @property
    def instruction_bytes(self) -> int:
        return sum(block.byte_size for block in self.block_list)

    @property
    @abc.abstractmethod
    def spans_cycle(self) -> bool:
        """True when repeated execution of a cycle can stay in the region."""

    # -- execution-end accounting ---------------------------------------
    @property
    def execution_ends(self) -> int:
        """Number of completed passes through the region.

        Each pass ends either by branching back to the region top (an
        executed cycle) or by exiting; the *executed cycle ratio* of
        Section 3.2.1 is ``cycle_backs / execution_ends``.
        """
        return self.cycle_backs + self.exit_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} #{self.selection_order} "
            f"entry={self.entry.full_label} blocks={len(self.block_list)}>"
        )


class TraceRegion(Region):
    """An interprocedural superblock: single entry, straight-line path.

    ``path`` is the ordered block sequence.  ``final_target`` is the
    block the trace-ending branch targets (``None`` when the trace was
    cut by a size limit, the end of the program, or a fall-through into
    an existing region); when ``final_target is path[0]`` the trace
    *spans a cycle* — its last branch re-enters its own top.
    """

    kind = "trace"
    is_trace = True

    def __init__(
        self,
        path: Sequence[BasicBlock],
        final_target: Optional[BasicBlock] = None,
    ) -> None:
        if not path:
            raise CacheError("a trace must contain at least one block")
        super().__init__(path[0])
        self.path: Tuple[BasicBlock, ...] = tuple(path)
        self.final_target = final_target
        self._block_set = frozenset(self.path)
        self._stub_count = trace_exit_stubs(self.path, self.spans_cycle)
        offsets = []
        cursor = 0
        for block in self.path:
            offsets.append(cursor)
            cursor += block.byte_size
        #: Byte offset of each path position inside the region's layout.
        self.position_offsets: Tuple[int, ...] = tuple(offsets)

    @property
    def block_list(self) -> Sequence[BasicBlock]:
        return self.path

    @property
    def block_set(self) -> FrozenSet[BasicBlock]:
        return self._block_set

    @property
    def spans_cycle(self) -> bool:
        return self.final_target is self.path[0]

    @property
    def exit_stub_count(self) -> int:
        return self._stub_count

    def internal_edges(self) -> Set[Tuple[BasicBlock, BasicBlock]]:
        edges = {
            (self.path[i], self.path[i + 1]) for i in range(len(self.path) - 1)
        }
        if self.spans_cycle:
            edges.add((self.path[-1], self.path[0]))
        return edges

    def position_after(
        self, position: int, taken: bool, target: Optional[BasicBlock]
    ) -> Optional[int]:
        """Next path position for a transfer, or ``None`` when it exits.

        The block at ``position`` just executed.  Control stays in the
        trace when the actual target is the next path block, or when a
        taken branch re-enters the trace top (position 0) — the linked
        self-loop of a cycle-spanning trace.
        """
        if target is None:
            return None
        next_position = position + 1
        if next_position < len(self.path) and target is self.path[next_position]:
            return next_position
        if taken and target is self.path[0]:
            return 0
        return None


class CFGRegion(Region):
    """A single-entry multi-path region produced by trace combination.

    ``blocks`` are the marked blocks that survived pruning; ``edges``
    are the observed control-flow edges between them (plus, per
    Section 4.2.3, any static exit that targets an in-region block,
    which the constructor folds in for direct transfers).
    """

    kind = "cfg"

    def __init__(
        self,
        entry: BasicBlock,
        blocks: Iterable[BasicBlock],
        edges: Iterable[Tuple[BasicBlock, BasicBlock]],
    ) -> None:
        super().__init__(entry)
        block_set = frozenset(blocks)
        if entry not in block_set:
            raise CacheError(
                f"CFG region entry {entry.full_label} is not among its blocks"
            )
        self._blocks = block_set
        edge_set = {
            (src, dst)
            for src, dst in edges
            if src in block_set and dst in block_set
        }
        # Section 4.2.3: replace region exits that target in-region
        # blocks with edges.  Only direct transfers can be rewritten
        # (their targets are known statically); indirect transfers and
        # returns keep using observed edges only.
        for block in block_set:
            term = block.terminator
            kind = term.kind
            if kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL):
                target = term.taken_target
                if target is not None and target in block_set:
                    edge_set.add((block, target))
            if kind.may_fall_through:
                if block.fallthrough is not None and block.fallthrough in block_set:
                    edge_set.add((block, block.fallthrough))
        self._edges = frozenset(edge_set)
        #: Blocks whose transfer target is dynamic (returns, indirect
        #: jumps) — precomputed so the simulator's fused walk can apply
        #: the observed-edge rule without re-deriving it per step.
        self.dynamic_blocks: FrozenSet[BasicBlock] = frozenset(
            block for block in block_set
            if block.terminator.kind.target_is_dynamic
        )
        # Deterministic iteration order for reporting: address order.
        self._ordered = tuple(
            sorted(block_set, key=lambda b: b.require_address())
        )
        self._stub_count = cfg_region_exit_stubs(block_set, self._edges)
        self._spans_cycle = any(dst is entry for _, dst in self._edges)
        offsets: Dict[BasicBlock, int] = {}
        cursor = 0
        for block in self._ordered:
            offsets[block] = cursor
            cursor += block.byte_size
        #: Byte offset of each block inside the region's layout.
        self.block_offsets: Dict[BasicBlock, int] = offsets

    @property
    def block_list(self) -> Sequence[BasicBlock]:
        return self._ordered

    @property
    def block_set(self) -> FrozenSet[BasicBlock]:
        return self._blocks

    @property
    def edges(self) -> FrozenSet[Tuple[BasicBlock, BasicBlock]]:
        return self._edges

    @property
    def spans_cycle(self) -> bool:
        return self._spans_cycle

    @property
    def exit_stub_count(self) -> int:
        return self._stub_count

    def internal_edges(self) -> Set[Tuple[BasicBlock, BasicBlock]]:
        return set(self._edges)

    def stays_internal(
        self, block: BasicBlock, taken: bool, target: Optional[BasicBlock]
    ) -> bool:
        """True when a transfer out of ``block`` remains in the region.

        Direct transfers stay whenever the target block is in the
        region (the rewritten-exit rule); dynamic transfers (returns,
        indirect jumps) stay only along observed edges, modelling the
        inlined target-compare chain a real system emits.
        """
        if target is None or target not in self._blocks:
            return False
        if taken and block in self.dynamic_blocks:
            return (block, target) in self._edges
        return True
