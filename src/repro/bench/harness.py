"""Run the pinned bench workloads and serialize the measurements.

The workload set is deliberately small and fixed: the same four
(benchmark, selector) pairs at the same scale and seed every run, so
two ``BENCH_run.json`` files from different commits are comparable
point-for-point.  Each workload simulates under a fresh
:class:`~repro.obs.profile.SpanTimer`, giving per-phase self-time
(``interpret``, ``cache_walk``, ``selector_decide``, ``region_build``)
plus steps and throughput; a couple of report fields (hit rate, region
count) ride along as a behaviour fingerprint — a perf delta paired
with a fingerprint change means the code changed *what* it computes,
not just how fast.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.experiments.manifest import git_sha
from repro.metrics.summary import MetricReport
from repro.obs import Observer, SpanTimer
from repro.system.simulator import simulate
from repro.workloads import build_benchmark
from repro.workloads.micro import build_micro

#: Bumped on incompatible changes to the BENCH_run.json schema.
BENCH_VERSION = 1

#: Default output file name — the perf-trajectory sample for this run.
BENCH_RUN_NAME = "BENCH_run.json"


@dataclass(frozen=True)
class BenchWorkload:
    """One pinned measurement: a (benchmark, selector) pair at a scale."""

    name: str
    benchmark: str
    selector: str
    scale: float
    seed: int = 1


#: The pinned set: the two headline selectors plus both combined
#: variants, over benchmarks that stress different paths (gzip = tight
#: loops, gcc = the largest CFG, mcf = cycle-heavy, vortex = call-heavy,
#: chain = region->region transfers, i.e. the trace-linking fast path).
STANDARD_WORKLOADS: Tuple[BenchWorkload, ...] = (
    BenchWorkload("gzip-net", "gzip", "net", scale=0.5),
    BenchWorkload("gcc-lei", "gcc", "lei", scale=0.5),
    BenchWorkload("mcf-combined-lei", "mcf", "combined-lei", scale=0.5),
    BenchWorkload("vortex-combined-net", "vortex", "combined-net", scale=0.5),
    BenchWorkload("chain-net", "micro:linked_chain", "net", scale=0.5),
)

#: Iterations a ``micro:`` workload runs at ``scale=1.0``; scaled
#: linearly like the SPEC stand-ins so quick and standard runs stay
#: proportional.
MICRO_BASE_ITERATIONS = 6000


def _build_bench_program(benchmark: str, scale: float):
    """Build a bench program; ``micro:<name>`` selects a microbenchmark."""
    if benchmark.startswith("micro:"):
        iterations = max(1, int(round(scale * MICRO_BASE_ITERATIONS)))
        return build_micro(benchmark[len("micro:"):], iterations=iterations)
    return build_benchmark(benchmark, scale=scale)

#: Reduced-scale variant for CI smoke runs (same pairs, same seeds).
QUICK_WORKLOADS: Tuple[BenchWorkload, ...] = tuple(
    BenchWorkload(w.name, w.benchmark, w.selector, scale=0.1, seed=w.seed)
    for w in STANDARD_WORKLOADS
)


#: Passes per workload; the fastest pass is recorded.  Wall time on a
#: shared machine is one-sided noise (preemption only ever adds time),
#: so min-of-N is the standard low-variance throughput estimator.
DEFAULT_REPEATS = 3


def _run_workload(workload: BenchWorkload, config: SystemConfig,
                  repeats: int = DEFAULT_REPEATS) -> Dict[str, object]:
    """Measure one workload; returns its JSON-ready record.

    The workload is simulated ``repeats`` times and the fastest pass
    provides the timing and per-phase profile.  Every pass must
    produce the identical behaviour fingerprint — the runs are
    deterministic, so a mismatch means the simulator is broken, and
    the harness refuses to report a throughput number for it.
    """
    program = _build_bench_program(workload.benchmark, workload.scale)
    best_snapshot = None
    fingerprint = None
    for _ in range(max(1, repeats)):
        profiler = SpanTimer()
        observer = Observer(profiler=profiler)
        result = simulate(program, workload.selector, config,
                          seed=workload.seed, observer=observer)
        report = MetricReport.from_result(result)
        snapshot = profiler.snapshot()
        current = (report.hit_rate, report.region_count,
                   report.total_instructions, int(snapshot["steps"]))
        if fingerprint is None:
            fingerprint = current
        elif current != fingerprint:
            raise ReproError(
                f"bench workload {workload.name!r} is non-deterministic: "
                f"fingerprint {current} != {fingerprint}"
            )
        if (best_snapshot is None
                or snapshot["wall_seconds"] < best_snapshot["wall_seconds"]):
            best_snapshot = snapshot
            best_report = report
    snapshot = best_snapshot
    report = best_report
    return {
        **asdict(workload),
        "repeats": max(1, repeats),
        "wall_seconds": round(float(snapshot["wall_seconds"]), 6),
        "steps": int(snapshot["steps"]),
        "events_per_second": round(float(snapshot["steps_per_second"]), 1),
        "phases": {
            name: {
                "seconds": round(float(data["seconds"]), 6),
                "entries": int(data["entries"]),
            }
            for name, data in snapshot["phases"].items()
        },
        # Behaviour fingerprint: if these move, the delta is not (only)
        # a performance change.
        "hit_rate": report.hit_rate,
        "region_count": report.region_count,
        "total_instructions": report.total_instructions,
    }


def run_bench(
    quick: bool = False,
    workloads: Optional[Sequence[BenchWorkload]] = None,
    config: Optional[SystemConfig] = None,
    repeats: int = DEFAULT_REPEATS,
    service: bool = False,
    batched: bool = False,
) -> Dict[str, object]:
    """Run the pinned workload set and assemble the bench record.

    ``service=True`` additionally boots the grid server against a fresh
    store and records warm/cold request-latency percentiles under the
    ``service`` key (see :mod:`repro.bench.service`); the CLI turns it
    on by default, library callers opt in.

    ``batched=True`` additionally measures the pinned batched fleets —
    serial fused versus one vectorized sweep each, with an in-harness
    bit-identity assertion — under the ``batched`` key (see
    :mod:`repro.bench.batch`); same CLI-on/library-off default.  The
    key is *always* a list: empty when the fleets were skipped, so a
    later ``--check`` against this run never trips over a
    shape-shifting schema (dict, ``None``, list).
    """
    if workloads is None:
        workloads = QUICK_WORKLOADS if quick else STANDARD_WORKLOADS
    config = config if config is not None else SystemConfig()
    records: List[Dict[str, object]] = []
    started = time.monotonic()
    for workload in workloads:
        records.append(_run_workload(workload, config, repeats=repeats))
    service_record = None
    if service:
        from repro.bench.service import run_service_bench

        service_record = run_service_bench(quick=quick)
    batched_records: List[Dict[str, object]] = []
    if batched:
        from repro.bench.batch import run_batched_benches

        batched_records = run_batched_benches(quick=quick)
    total_wall = sum(float(r["wall_seconds"]) for r in records)
    total_steps = sum(int(r["steps"]) for r in records)
    return {
        "bench_version": BENCH_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick": bool(quick),
        "workloads": records,
        "service": service_record,
        "batched": batched_records,
        "totals": {
            "wall_seconds": round(total_wall, 6),
            "steps": total_steps,
            "events_per_second": (
                round(total_steps / total_wall, 1) if total_wall > 0 else 0.0
            ),
            "harness_seconds": round(time.monotonic() - started, 6),
        },
    }


def write_bench_run(run: Dict[str, object], path: str) -> str:
    """Write the bench record as JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run, handle, indent=2)
        handle.write("\n")
    return path


def format_bench_table(run: Dict[str, object],
                       deltas: Optional[Dict[str, object]] = None) -> str:
    """Human-readable summary (one line per workload, plus totals)."""
    lines = [
        f"{'workload':<22s} {'steps':>9s} {'wall s':>9s} "
        f"{'events/s':>12s} {'vs baseline':>12s}"
    ]
    per_workload = (deltas or {}).get("workloads", {})
    for record in run["workloads"]:
        delta = per_workload.get(record["name"])
        if delta is None:
            delta_text = "-"
        else:
            ratio = delta["events_per_second_ratio"]
            delta_text = f"{(ratio - 1) * 100:+.1f}%"
        lines.append(
            f"{record['name']:<22s} {record['steps']:>9d} "
            f"{record['wall_seconds']:>9.4f} "
            f"{record['events_per_second']:>12,.0f} {delta_text:>12s}"
        )
    totals = run["totals"]
    if deltas is None:
        total_text = "-"
    else:
        ratio = deltas["totals"]["events_per_second_ratio"]
        total_text = f"{(ratio - 1) * 100:+.1f}%"
    lines.append(
        f"{'total':<22s} {totals['steps']:>9d} "
        f"{totals['wall_seconds']:>9.4f} "
        f"{totals['events_per_second']:>12,.0f} {total_text:>12s}"
    )
    if run.get("service"):
        from repro.bench.service import format_service_record

        lines.append(format_service_record(run["service"]))
    from repro.bench.baseline import batched_records
    from repro.bench.batch import format_batched_record

    batched_deltas = (deltas or {}).get("batched") or {}
    for record in batched_records(run.get("batched")):
        batched_line = format_batched_record(record)
        delta = batched_deltas.get(record["name"])
        if delta is not None:
            ratio = delta["events_per_second_ratio"]
            batched_line += f" [{(ratio - 1) * 100:+.1f}% vs baseline]"
        lines.append(batched_line)
    return "\n".join(lines)
