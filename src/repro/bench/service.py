"""Service-latency workload for ``repro bench``.

Raw events/s measures how fast one simulation runs; this workload
measures how fast the *service* answers — the SLO the ROADMAP's
simulation-as-a-service item asks for.  A real server is booted on a
loopback socket with a fresh (empty) store, then:

* **cold**: each pinned cell is submitted once, sequentially, so every
  request pays a full simulation through the job engine;
* **warm**: the same cells are submitted repeatedly round-robin, so
  every request is a content-addressed store hit.

p50/p99 of both phases land in ``BENCH_run.json`` under ``service``.
The record is informational (no baseline gate — wall-clock latency on
a shared runner is far noisier than throughput ratios), but the
*shape* is load-bearing: warm p50 collapsing toward cold p50 means the
store path broke, and the acceptance bar for the service subsystem is
warm p50 at least 10x under cold p50.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.client import ServiceClient
from repro.serve.server import ServerThread

#: The pinned service cells: distinct (benchmark, selector) pairs so
#: cold requests exercise different simulation paths.
SERVICE_CELLS: Tuple[Tuple[str, str], ...] = (
    ("gzip", "net"),
    ("mcf", "lei"),
    ("vortex", "combined-net"),
)

#: Cell scale for the standard / quick variants.  Small on purpose:
#: the workload measures service overhead and store reads, not
#: simulation throughput (the raw workloads already cover that).
SERVICE_SCALE = 0.2
SERVICE_SCALE_QUICK = 0.05

#: Warm requests measured round-robin across the cells.
WARM_REQUESTS = 60
WARM_REQUESTS_QUICK = 30


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``samples``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _phase_record(samples: List[float]) -> Dict[str, object]:
    total = sum(samples)
    return {
        "requests": len(samples),
        "p50_ms": round(percentile(samples, 0.50) * 1000, 3),
        "p99_ms": round(percentile(samples, 0.99) * 1000, 3),
        "mean_ms": round(total / len(samples) * 1000, 3) if samples else 0.0,
    }


def run_service_bench(
    quick: bool = False,
    cells: Optional[Sequence[Tuple[str, str]]] = None,
    warm_requests: Optional[int] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Boot a server, measure warm/cold request latency, return the record."""
    cells = tuple(cells) if cells is not None else SERVICE_CELLS
    scale = SERVICE_SCALE_QUICK if quick else SERVICE_SCALE
    if warm_requests is None:
        warm_requests = WARM_REQUESTS_QUICK if quick else WARM_REQUESTS
    cold_samples: List[float] = []
    warm_samples: List[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        # workers=1 keeps dispatch on the serial in-process path:
        # sequential cold submissions never batch, so the measurement
        # has no subprocess-spawn noise in it.
        with ServerThread(root, workers=1) as handle:
            with ServiceClient("127.0.0.1", handle.port) as client:
                for benchmark, selector in cells:
                    body, latency = client.simulate(
                        benchmark, selector, scale=scale, seed=seed
                    )
                    assert body["source"] == "computed", body["source"]
                    cold_samples.append(latency)
                for i in range(warm_requests):
                    benchmark, selector = cells[i % len(cells)]
                    body, latency = client.simulate(
                        benchmark, selector, scale=scale, seed=seed
                    )
                    assert body["source"] == "store", body["source"]
                    warm_samples.append(latency)
                stats = client.stats()["service"]
    cold = _phase_record(cold_samples)
    warm = _phase_record(warm_samples)
    speedup = (cold["p50_ms"] / warm["p50_ms"]
               if warm["p50_ms"] > 0 else None)
    return {
        "cells": [f"{b}:{s}" for b, s in cells],
        "scale": scale,
        "seed": seed,
        "cold": cold,
        "warm": warm,
        "warm_speedup_p50": round(speedup, 1) if speedup else None,
        "service_stats": stats,
    }


def format_service_record(record: Dict[str, object]) -> str:
    """One-paragraph rendering for the bench table footer."""
    cold = record["cold"]
    warm = record["warm"]
    speedup = record.get("warm_speedup_p50")
    return (
        f"service latency ({len(record['cells'])} cells, scale "
        f"{record['scale']}): cold p50 {cold['p50_ms']:.1f} ms "
        f"p99 {cold['p99_ms']:.1f} ms | warm p50 {warm['p50_ms']:.2f} ms "
        f"p99 {warm['p99_ms']:.2f} ms | warm speedup "
        f"{speedup if speedup is not None else '-'}x"
    )
