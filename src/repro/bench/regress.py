"""The bench-regression sentinel (``repro bench --analyze``).

The ±tolerance gate in :mod:`repro.bench.baseline` answers one blunt
question — "did throughput fall off a cliff versus the committed
baseline?".  This module reads the whole measurement more carefully:

* **per-workload deltas** against the pinned baseline, classified into
  ``ok`` / ``warn`` / ``regression`` verdicts at two thresholds (a CI
  gate wants one number; a human reading the report wants the early
  warning too) — batched fleet records are scored by the same rules,
  matched on fleet name + array backend + group composition so a
  re-pinned or freshly added fleet never false-alarms;
* **per-phase deltas**: the share of wall time each profiler phase
  (``interpret``, ``cache_walk``, ``selector_decide``,
  ``region_build``) consumes, compared against the baseline's shares —
  a regression that moved time *between* phases names its suspect even
  when total throughput barely moved;
* **trailing-trajectory statistics**: when several runs are available
  (a JSON list, or several ``BENCH_run.json`` files concatenated), the
  current run is scored against the robust center (median) and spread
  (scaled MAD) of the trailing window, which separates "this machine is
  noisy" from "this commit is slow" better than any fixed tolerance.

Everything returns plain dicts; :func:`format_analysis` renders the
terminal/Markdown report.  Wall-clock numbers are machine-dependent, so
the sentinel is advisory by design — CI runs it as a non-blocking
warning step next to the blunt gate.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError

#: Fractional throughput drop that downgrades a workload to ``warn``.
WARN_TOLERANCE = 0.10
#: Fractional throughput drop classified as a ``regression``.
FAIL_TOLERANCE = 0.25
#: Phase whose share of wall time grew by more than this (absolute,
#: in [0, 1]) is named as the suspect in the verdict notes.
PHASE_SHARE_DELTA = 0.10
#: Trailing trajectory runs considered by the robust statistics.
TRAJECTORY_WINDOW = 5
#: Robust z-score below which the trajectory flags the current run.
TRAJECTORY_Z = 3.0

_VERDICT_RANK = {"ok": 0, "warn": 1, "regression": 2}


def load_trajectory(path: str) -> List[Dict[str, object]]:
    """Load bench runs from ``path``, oldest first.

    Accepts either one run object (the shape ``repro bench`` writes to
    ``BENCH_run.json``) or a JSON list of run objects (a concatenated
    trajectory); a single run normalizes to a one-element list.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ConfigError(f"no bench run at {path!r}") from None
    except ValueError as exc:
        raise ConfigError(
            f"bench trajectory {path!r} is not valid JSON: {exc}"
        ) from None
    if isinstance(data, dict):
        return [data]
    if isinstance(data, list) and all(isinstance(r, dict) for r in data):
        return list(data)
    raise ConfigError(
        f"bench trajectory {path!r} must hold a run object or a list of "
        f"run objects"
    )


def robust_center(values: Sequence[float]) -> float:
    """The median (robust location estimator)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_spread(values: Sequence[float]) -> float:
    """Scaled median absolute deviation (consistent with sigma under
    normality: MAD * 1.4826)."""
    center = robust_center(values)
    deviations = [abs(value - center) for value in values]
    return 1.4826 * robust_center(deviations)


def _phase_shares(record: Dict[str, object]) -> Dict[str, float]:
    """Each phase's share of the workload's wall time, in [0, 1]."""
    wall = float(record.get("wall_seconds", 0.0))
    phases = record.get("phases", {})
    if wall <= 0 or not isinstance(phases, dict):
        return {}
    return {
        name: float(data.get("seconds", 0.0)) / wall
        for name, data in phases.items()
    }


def _workload_history(
    trajectory: Sequence[Dict[str, object]], name: str
) -> List[float]:
    """events/sec for ``name`` over the trajectory, oldest first."""
    history = []
    for run in trajectory:
        for record in run.get("workloads", []):
            if record.get("name") == name:
                history.append(float(record.get("events_per_second", 0.0)))
                break
    return history


def _fleet_history(
    trajectory: Sequence[Dict[str, object]], name: str
) -> List[float]:
    """Batched events/sec for fleet ``name`` over the trajectory."""
    from repro.bench.baseline import batched_records

    history = []
    for run in trajectory:
        for record in batched_records(run.get("batched")):
            if record.get("name") == name:
                history.append(float(record.get("events_per_second", 0.0)))
                break
    return history


def _classify(drop: float, warn_tolerance: float,
              fail_tolerance: float) -> str:
    if drop >= fail_tolerance:
        return "regression"
    if drop >= warn_tolerance:
        return "warn"
    return "ok"


def analyze_run(
    run: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
    trajectory: Optional[Sequence[Dict[str, object]]] = None,
    warn_tolerance: float = WARN_TOLERANCE,
    fail_tolerance: float = FAIL_TOLERANCE,
    window: int = TRAJECTORY_WINDOW,
) -> Dict[str, object]:
    """Score one bench run against its baseline and trajectory.

    Returns a verdict document::

        {"verdict": "ok"|"warn"|"regression",
         "workloads": {name: {"verdict": ..., "baseline_ratio": ...,
                              "notes": [...], ...}},
         "fingerprint_changes": [...], ...}

    ``trajectory`` is the full run history *excluding nothing*; if the
    current run is its last element it is dropped from the trailing
    window automatically (a run cannot be evidence about itself).
    """
    base_workloads = {
        record["name"]: record
        for record in (baseline or {}).get("workloads", [])
    }
    history_runs = list(trajectory or [])
    if history_runs and history_runs[-1] is run:
        history_runs = history_runs[:-1]
    history_runs = history_runs[-window:]

    workloads: Dict[str, Dict[str, object]] = {}
    fingerprint_changes: List[str] = []
    worst = "ok"
    for record in run.get("workloads", []):
        name = str(record.get("name"))
        eps = float(record.get("events_per_second", 0.0))
        verdicts: List[str] = []
        notes: List[str] = []
        entry: Dict[str, object] = {
            "events_per_second": eps,
        }

        reference = base_workloads.get(name)
        comparable = (
            reference is not None
            and reference.get("scale") == record.get("scale")
            and reference.get("seed") == record.get("seed")
        )
        if comparable:
            base_eps = float(reference.get("events_per_second", 0.0))
            ratio = eps / base_eps if base_eps > 0 else 0.0
            entry["baseline_ratio"] = round(ratio, 4)
            verdicts.append(
                _classify(1.0 - ratio, warn_tolerance, fail_tolerance)
            )
            if verdicts[-1] != "ok":
                notes.append(
                    f"throughput at {100 * ratio:.0f}% of baseline"
                )
            # Behaviour fingerprint: a perf delta paired with a
            # fingerprint change is not (only) a performance change.
            for field in ("hit_rate", "region_count",
                          "total_instructions", "steps"):
                if record.get(field) != reference.get(field):
                    fingerprint_changes.append(
                        f"{name}: {field} "
                        f"{reference.get(field)} -> {record.get(field)}"
                    )
            # Per-phase shares: name the phase that absorbed the time.
            shares = _phase_shares(record)
            base_shares = _phase_shares(reference)
            grown = {
                phase: shares[phase] - base_shares.get(phase, 0.0)
                for phase in shares
                if shares[phase] - base_shares.get(phase, 0.0)
                >= PHASE_SHARE_DELTA
            }
            if grown:
                entry["phase_share_growth"] = {
                    phase: round(delta, 4)
                    for phase, delta in sorted(grown.items())
                }
                if verdicts[-1] != "ok":
                    suspects = ", ".join(sorted(grown))
                    notes.append(f"wall-time share grew in: {suspects}")
        else:
            entry["baseline_ratio"] = None
            notes.append("no comparable baseline workload")

        history = _workload_history(history_runs, name)
        if history:
            center = robust_center(history)
            spread = robust_spread(history)
            entry["trajectory"] = {
                "runs": len(history),
                "median_events_per_second": round(center, 1),
                "mad_events_per_second": round(spread, 1),
            }
            if center > 0:
                drop = 1.0 - eps / center
                # Demand both a meaningful drop and statistical
                # separation: MAD near zero (identical reruns) must not
                # turn measurement jitter into a finding.
                floor = max(spread * TRAJECTORY_Z,
                            center * warn_tolerance)
                if center - eps >= floor and drop >= warn_tolerance:
                    verdicts.append(_classify(
                        drop, warn_tolerance, fail_tolerance
                    ))
                    notes.append(
                        f"below trailing-{len(history)} median by "
                        f"{100 * drop:.0f}%"
                    )

        verdict = max(verdicts, key=_VERDICT_RANK.get, default="ok")
        entry["verdict"] = verdict
        entry["notes"] = notes
        workloads[name] = entry
        if _VERDICT_RANK[verdict] > _VERDICT_RANK[worst]:
            worst = verdict

    # Batched fleet records are scored by the same rules as workloads
    # (baseline ratio at two thresholds, trailing trajectory, behaviour
    # fingerprints).  A baseline fleet only qualifies when its name,
    # array backend and full group composition match — a re-pinned or
    # newly added fleet contributes no ratio rather than a false alarm.
    from repro.bench.baseline import batched_records

    base_fleets = {
        record["name"]: record
        for record in batched_records((baseline or {}).get("batched"))
    }
    fleets: Dict[str, Dict[str, object]] = {}
    for record in batched_records(run.get("batched")):
        name = str(record.get("name"))
        eps = float(record.get("events_per_second", 0.0))
        verdicts = []
        notes = []
        entry = {"events_per_second": eps}

        reference = base_fleets.get(name)
        comparable = (
            reference is not None
            and reference.get("backend") == record.get("backend")
            and reference.get("groups") == record.get("groups")
        )
        if comparable:
            base_eps = float(reference.get("events_per_second", 0.0))
            ratio = eps / base_eps if base_eps > 0 else 0.0
            entry["baseline_ratio"] = round(ratio, 4)
            verdicts.append(
                _classify(1.0 - ratio, warn_tolerance, fail_tolerance)
            )
            if verdicts[-1] != "ok":
                notes.append(
                    f"batched throughput at {100 * ratio:.0f}% of baseline"
                )
            # Steps are the fleet's behaviour fingerprint (bit-identity
            # pins them); max_lanes/refills pin the admission schedule.
            for field in ("steps", "lanes", "max_lanes", "refills"):
                if record.get(field) != reference.get(field):
                    fingerprint_changes.append(
                        f"fleet {name}: {field} "
                        f"{reference.get(field)} -> {record.get(field)}"
                    )
        else:
            entry["baseline_ratio"] = None
            notes.append("no comparable baseline fleet")

        history = _fleet_history(history_runs, name)
        if history:
            center = robust_center(history)
            spread = robust_spread(history)
            entry["trajectory"] = {
                "runs": len(history),
                "median_events_per_second": round(center, 1),
                "mad_events_per_second": round(spread, 1),
            }
            if center > 0:
                drop = 1.0 - eps / center
                floor = max(spread * TRAJECTORY_Z,
                            center * warn_tolerance)
                if center - eps >= floor and drop >= warn_tolerance:
                    verdicts.append(_classify(
                        drop, warn_tolerance, fail_tolerance
                    ))
                    notes.append(
                        f"below trailing-{len(history)} median by "
                        f"{100 * drop:.0f}%"
                    )

        verdict = max(verdicts, key=_VERDICT_RANK.get, default="ok")
        entry["verdict"] = verdict
        entry["notes"] = notes
        fleets[name] = entry
        if _VERDICT_RANK[verdict] > _VERDICT_RANK[worst]:
            worst = verdict

    totals_entry: Dict[str, object] = {}
    if baseline is not None:
        base_totals = baseline.get("totals", {})
        run_totals = run.get("totals", {})
        base_eps = float(base_totals.get("events_per_second", 0.0))
        eps = float(run_totals.get("events_per_second", 0.0))
        if base_eps > 0:
            totals_entry["baseline_ratio"] = round(eps / base_eps, 4)

    return {
        "verdict": worst,
        "warn_tolerance": warn_tolerance,
        "fail_tolerance": fail_tolerance,
        "workloads": workloads,
        "batched": fleets,
        "totals": totals_entry,
        "fingerprint_changes": fingerprint_changes,
        "trajectory_runs": len(history_runs),
    }


def analyze_path(
    path: str,
    baseline: Optional[Dict[str, object]] = None,
    **kwargs,
) -> Dict[str, object]:
    """Analyze the last run of the trajectory file at ``path``."""
    trajectory = load_trajectory(path)
    return analyze_run(trajectory[-1], baseline=baseline,
                       trajectory=trajectory, **kwargs)


_MARKS = {"ok": "ok", "warn": "WARN", "regression": "REGRESSION"}


def format_analysis(analysis: Dict[str, object],
                    markdown: bool = False) -> str:
    """Render a verdict document for the terminal (or as Markdown)."""
    lines: List[str] = []
    overall = str(analysis.get("verdict", "ok"))
    if markdown:
        lines.append("## Bench regression analysis")
        lines.append("")
        lines.append(f"**Overall: {_MARKS.get(overall, overall)}**")
        lines.append("")
        lines.append("| workload | events/s | vs baseline | verdict | notes |")
        lines.append("|---|---:|---:|---|---|")
    else:
        lines.append(f"bench regression analysis: {_MARKS.get(overall)}")
    rows = list(sorted(analysis.get("workloads", {}).items()))
    rows += [
        (f"fleet:{name}", entry)
        for name, entry in sorted(analysis.get("batched", {}).items())
    ]
    for name, entry in rows:
        ratio = entry.get("baseline_ratio")
        ratio_text = f"{(ratio - 1) * 100:+.1f}%" if ratio else "-"
        notes = "; ".join(entry.get("notes", [])) or "-"
        if markdown:
            lines.append(
                f"| {name} | {entry['events_per_second']:,.0f} "
                f"| {ratio_text} | {_MARKS[entry['verdict']]} | {notes} |"
            )
        else:
            lines.append(
                f"  {name:<22s} {entry['events_per_second']:>12,.0f} ev/s "
                f"{ratio_text:>8s}  {_MARKS[entry['verdict']]:<10s} {notes}"
            )
    changes = analysis.get("fingerprint_changes", [])
    if changes:
        lines.append("")
        lines.append("fingerprint changes (behaviour, not just speed):")
        for change in changes:
            lines.append(f"  - {change}")
    totals_ratio = analysis.get("totals", {}).get("baseline_ratio")
    if totals_ratio:
        lines.append("")
        lines.append(
            f"total throughput vs baseline: {(totals_ratio - 1) * 100:+.1f}%"
        )
    if analysis.get("trajectory_runs"):
        lines.append(
            f"trailing trajectory window: {analysis['trajectory_runs']} "
            f"run(s)"
        )
    return "\n".join(lines)
