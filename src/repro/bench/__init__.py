"""Perf-trajectory bench harness (``repro bench``).

Runs a pinned set of simulator workloads under the :mod:`repro.obs`
span profiler, records per-phase wall time and events/sec (one
simulated basic-block event per step), compares the numbers against
the committed baseline in ``BASELINE.json``, and writes the whole run
as ``BENCH_run.json`` — one point on the repository's performance
trajectory.  See ``docs/experiments.md``.
"""

from repro.bench.baseline import (
    DEFAULT_BASELINE_PATH,
    QUICK_BASELINE_PATH,
    compare_to_baseline,
    default_baseline_path,
    load_baseline,
    regression_failures,
    write_baseline,
)
from repro.bench.harness import (
    BENCH_VERSION,
    BenchWorkload,
    QUICK_WORKLOADS,
    STANDARD_WORKLOADS,
    format_bench_table,
    run_bench,
    write_bench_run,
)
from repro.bench.batch import (
    BATCHED_FLEETS,
    BatchedFleet,
    FleetGroup,
    format_batched_record,
    run_batched_bench,
    run_batched_benches,
)
from repro.bench.regress import (
    analyze_path,
    analyze_run,
    format_analysis,
    load_trajectory,
)
from repro.bench.service import format_service_record, run_service_bench

__all__ = [
    "BATCHED_FLEETS",
    "BENCH_VERSION",
    "BatchedFleet",
    "BenchWorkload",
    "FleetGroup",
    "DEFAULT_BASELINE_PATH",
    "QUICK_BASELINE_PATH",
    "default_baseline_path",
    "QUICK_WORKLOADS",
    "STANDARD_WORKLOADS",
    "compare_to_baseline",
    "format_bench_table",
    "load_baseline",
    "regression_failures",
    "run_bench",
    "write_baseline",
    "write_bench_run",
    "analyze_path",
    "analyze_run",
    "format_analysis",
    "format_batched_record",
    "format_service_record",
    "load_trajectory",
    "run_batched_bench",
    "run_batched_benches",
    "run_service_bench",
]
