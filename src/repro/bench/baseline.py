"""Baseline comparison: this run versus the committed reference.

``BASELINE.json`` (shipped inside the package, regenerated with
``repro bench --update-baseline``) records a full bench run from a
known-good commit.  Comparison is ratio-based — events/sec and wall
time of the current run divided by the baseline's — because absolute
numbers are machine-dependent; so are the ratios, strictly, which is
why regression *checking* is opt-in (``--check``) with a generous
tolerance, while the deltas themselves are always reported and
recorded in ``BENCH_run.json`` for the trajectory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import ConfigError

#: The committed baselines, shipped with the package: one for the
#: standard workload set, one for the reduced-scale quick set (the two
#: are not cross-comparable — different scales simulate different
#: work, so each needs its own reference).
DEFAULT_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BASELINE.json"
)
QUICK_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BASELINE_quick.json"
)


def default_baseline_path(quick: bool = False) -> str:
    return QUICK_BASELINE_PATH if quick else DEFAULT_BASELINE_PATH


def load_baseline(path: Optional[str] = None,
                  quick: bool = False) -> Optional[Dict[str, object]]:
    """Load a baseline bench record; ``None`` when absent."""
    path = path if path is not None else default_baseline_path(quick)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise ConfigError(
            f"baseline file {path!r} is not valid JSON: {exc}"
        ) from None


def write_baseline(run: Dict[str, object],
                   path: Optional[str] = None,
                   quick: bool = False) -> str:
    """Commit the given run as the new baseline; returns the path."""
    path = path if path is not None else default_baseline_path(quick)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run, handle, indent=2)
        handle.write("\n")
    return path


def batched_records(value) -> List[Dict[str, object]]:
    """Normalize a run's ``batched`` entry to a list of fleet records.

    The schema has been, over time: absent, ``None`` (fleet skipped via
    ``--no-batched`` or missing numpy), a single dict (one pinned
    fleet), and now a list.  Comparisons and rendering all go through
    this normalizer so a ``--check`` against an older run or baseline
    never trips over the shape.  Legacy single records are upgraded in
    place-shape (not mutated) to carry a ``groups`` list.
    """
    if not value:
        return []
    if isinstance(value, dict):
        value = [value]
    out = []
    for record in value:
        if "groups" not in record:
            record = dict(record)
            record["groups"] = [{
                "benchmark": record.get("benchmark"),
                "selector": record.get("selector"),
                "lanes": record.get("lanes"),
                "scale": record.get("scale"),
            }]
        out.append(record)
    return out


def _ratios(current: Dict[str, object],
            reference: Dict[str, object]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for field, ratio_name in (("events_per_second", "events_per_second_ratio"),
                              ("wall_seconds", "wall_ratio")):
        ref = float(reference.get(field, 0.0))
        cur = float(current.get(field, 0.0))
        out[ratio_name] = round(cur / ref, 4) if ref > 0 else 0.0
    return out


def compare_to_baseline(run: Dict[str, object],
                        baseline: Dict[str, object]) -> Dict[str, object]:
    """Per-workload and total throughput/wall ratios (run / baseline).

    Only workloads present in both records are compared; a quick run
    against a full baseline (different scales) compares nothing per
    workload and flags the mismatch instead.
    """
    base_workloads = {
        record["name"]: record for record in baseline.get("workloads", [])
    }
    comparable = {}
    skipped = []
    for record in run.get("workloads", []):
        reference = base_workloads.get(record["name"])
        if (reference is None
                or reference.get("scale") != record.get("scale")
                or reference.get("seed") != record.get("seed")):
            skipped.append(record["name"])
            continue
        comparable[record["name"]] = _ratios(record, reference)
    # A batched-fleet record compares only when both runs carried one
    # for the same fleet composition on the same array substrate; a
    # baseline pinned before a fleet existed (or without numpy) simply
    # contributes no ratio for it — never a failure.
    base_fleets = {
        record["name"]: record
        for record in batched_records(baseline.get("batched"))
    }
    batched = {}
    for record in batched_records(run.get("batched")):
        reference = base_fleets.get(record["name"])
        if (reference is not None
                and record.get("backend") == reference.get("backend")
                and record.get("groups") == reference.get("groups")):
            batched[record["name"]] = _ratios(record, reference)
    batched = batched or None
    return {
        "baseline_git_sha": baseline.get("git_sha"),
        "baseline_created_at": baseline.get("created_at"),
        "comparable": bool(comparable),
        "skipped": skipped,
        "workloads": comparable,
        "batched": batched,
        "totals": _ratios(run.get("totals", {}), baseline.get("totals", {})),
    }


def regression_failures(deltas: Dict[str, object],
                        tolerance: float = 0.35) -> List[str]:
    """Workloads whose throughput regressed beyond ``tolerance``.

    ``tolerance`` is the allowed fractional drop in events/sec: 0.35
    accepts anything above 65% of baseline throughput — wide on
    purpose, since CI machines are noisy; the trajectory file, not the
    gate, is the precise record.
    """
    failures = []
    for name, ratio in sorted(deltas.get("workloads", {}).items()):
        if ratio["events_per_second_ratio"] < 1.0 - tolerance:
            failures.append(
                f"{name}: events/s at "
                f"{100 * ratio['events_per_second_ratio']:.0f}% of baseline"
            )
    for name, ratio in sorted((deltas.get("batched") or {}).items()):
        if ratio["events_per_second_ratio"] < 1.0 - tolerance:
            failures.append(
                f"batched fleet {name}: events/s at "
                f"{100 * ratio['events_per_second_ratio']:.0f}% of baseline"
            )
    return failures
