"""Batched-fleet bench workloads: the ``batched`` list of BENCH_run.json.

Four pinned fleets, each measured twice — every cell through the
serial fused pipeline, then all cells as a single
:func:`repro.batch.run_fleet` sweep.  Each record carries both walls
and both aggregate events/sec plus their ratio (``speedup``), and the
harness refuses to report a number unless every lane's
:class:`~repro.metrics.summary.MetricReport` equals its serial twin —
the bit-identity contract of ``docs/batching.md``, enforced on every
bench run, not only in the test suite.

The fleets pin the three throughput regimes the kernel is built for:

* ``chain-net-fleet`` — region-to-region transitions dominate (the
  trace-linking fast path), so nearly every simulated step stays
  inside the vectorized rounds.  The headline number.
* ``gzip-net-fleet`` — a SPEC-shaped model: interp warmup into
  trace-resident steady state, decisions split across constant,
  Bernoulli and loop kinds.
* ``mixed-fleet`` — interp, CFG-region and trace cells in one 128-lane
  fleet; the shape that degraded to 0.4-0.7x before CFG vector rounds
  and lane compaction, pinned so it cannot quietly regress again.
* ``short-tail-fleet`` — 256 short, divergent lanes (a staircase of
  eight program lengths) streamed through 128 slots; the
  tail-dominated shape that decayed into the scalar cutover
  (~0.6-0.9x serial) before the kernel refilled settled slots from a
  cell queue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.metrics.summary import MetricReport
from repro.system.simulator import simulate


@dataclass(frozen=True)
class FleetGroup:
    """One homogeneous slice of a pinned fleet.

    ``lanes`` cells of (benchmark, selector) at ``scale``; lane ``i``
    of the *fleet* runs seed ``i`` (a seed-stability-shaped sweep).
    The quick variant substitutes ``quick_scale`` (and ``quick_lanes``
    when set) — CI checks the quick numbers against the quick
    baseline, so quick and full records are never cross-compared.
    """

    benchmark: str
    selector: str
    lanes: int
    scale: float
    quick_scale: float
    quick_lanes: Optional[int] = None

    def sized(self, quick: bool) -> Tuple[int, float]:
        if quick:
            lanes = self.quick_lanes if self.quick_lanes else self.lanes
            return lanes, self.quick_scale
        return self.lanes, self.scale


@dataclass(frozen=True)
class BatchedFleet:
    """A named, pinned fleet composition.

    ``max_lanes`` pins a streaming admission schedule: the kernel holds
    that many live lanes and feeds the rest from a cell queue as lanes
    settle (``None`` = the whole fleet at once).  A scheduling knob
    only — the bit-identity assertion runs regardless.
    """

    name: str
    groups: Tuple[FleetGroup, ...]
    max_lanes: Optional[int] = None


BATCHED_FLEETS: Tuple[BatchedFleet, ...] = (
    BatchedFleet("chain-net-fleet", (
        FleetGroup("micro:linked_chain", "net", 1024, 0.5, 0.15),
    )),
    BatchedFleet("gzip-net-fleet", (
        FleetGroup("gzip", "net", 512, 0.5, 0.05, quick_lanes=128),
    )),
    BatchedFleet("mixed-fleet", (
        FleetGroup("micro:linked_chain", "net", 96, 0.5, 0.15),
        FleetGroup("gzip", "net", 8, 0.05, 0.02),
        FleetGroup("gzip", "lei", 8, 0.05, 0.02),
        FleetGroup("gzip", "combined-net", 8, 0.05, 0.02),
        FleetGroup("gzip", "combined-lei", 8, 0.05, 0.02),
    )),
    # 256 short lanes over a staircase of eight program lengths — lanes
    # finish at very different times, the tail-dominated shape that
    # used to decay into the scalar cutover at ~0.6-0.9x serial.  The
    # pinned streaming schedule (128 live slots, the other half of the
    # fleet queued) re-seeds slots as lanes settle, so memory stays
    # bounded at half the fleet while the vector population stays wide
    # until the queue drains.
    BatchedFleet("short-tail-fleet", tuple(
        FleetGroup("micro:linked_chain", "net", 32,
                   round(0.03 + 0.02 * step, 2),
                   round(0.02 + 0.01 * step, 2))
        for step in range(8)
    ), max_lanes=128),
)


def run_batched_bench(
    fleet: Optional[BatchedFleet] = None,
    quick: bool = False,
    config: Optional[SystemConfig] = None,
    lanes: Optional[int] = None,
    scale: Optional[float] = None,
    backend: str = "auto",
) -> Dict[str, object]:
    """Measure one pinned fleet serial-vs-batched; returns its record.

    The ``wall_seconds`` / ``events_per_second`` fields describe the
    *batched* pass (so baseline ratio math treats the record like any
    workload); the serial reference rides along as ``serial_*`` and
    ``speedup`` is their throughput ratio.  ``lanes``/``scale``
    override every group — test hooks for shrinking a fleet.  Raises
    :class:`~repro.errors.ReproError` if any lane's report differs
    from its serial twin.
    """
    from repro.batch import BatchCell, build_fleet_program, get_backend, run_fleet

    if fleet is None:
        fleet = BATCHED_FLEETS[0]
    config = config if config is not None else SystemConfig()
    cells: List[BatchCell] = []
    groups: List[Dict[str, object]] = []
    for group in fleet.groups:
        n, s = group.sized(quick)
        if lanes is not None:
            n = lanes
        if scale is not None:
            s = scale
        base = len(cells)
        cells.extend(
            BatchCell(group.benchmark, group.selector, scale=s, seed=base + k)
            for k in range(n)
        )
        groups.append({
            "benchmark": group.benchmark,
            "selector": group.selector,
            "lanes": n,
            "scale": s,
        })

    programs = {}
    serial_reports = {}
    serial_steps = 0
    started = time.perf_counter()
    for cell in cells:
        key = (cell.benchmark, cell.scale)
        if key not in programs:
            programs[key] = build_fleet_program(cell.benchmark, cell.scale)
        result = simulate(programs[key], cell.selector, config,
                          seed=cell.seed)
        serial_steps += (result.stats.interp_steps + result.stats.cache_steps)
        serial_reports[cell] = MetricReport.from_result(result)
    serial_wall = time.perf_counter() - started

    fleet_result = run_fleet(cells, config=config, backend=backend,
                             max_lanes=fleet.max_lanes)
    mismatched = [
        cell for cell in cells
        if fleet_result.reports[cell] != serial_reports[cell]
    ]
    if mismatched or fleet_result.steps != serial_steps:
        first = mismatched[0] if mismatched else cells[0]
        raise ReproError(
            f"batched bench fleet {fleet.name!r} is not bit-identical to "
            f"the serial pipeline ({len(mismatched)} of {len(cells)} lanes "
            f"differ; first: {first.benchmark}/{first.selector} seed "
            f"{first.seed}) — the kernel is broken, refusing to "
            f"report a throughput number"
        )

    batched_wall = fleet_result.wall_seconds
    return {
        "name": fleet.name,
        "groups": groups,
        "lanes": len(cells),
        "max_lanes": fleet_result.max_lanes,
        "refills": fleet_result.refills,
        "backend": fleet_result.backend,
        "requested_backend": get_backend(backend),
        "rounds": fleet_result.rounds,
        "steps": fleet_result.steps,
        "wall_seconds": round(float(batched_wall), 6),
        "events_per_second": (
            round(fleet_result.steps / batched_wall, 1)
            if batched_wall > 0 else 0.0
        ),
        "serial_wall_seconds": round(float(serial_wall), 6),
        "serial_events_per_second": (
            round(serial_steps / serial_wall, 1) if serial_wall > 0 else 0.0
        ),
        "speedup": (
            round(serial_wall / batched_wall, 3) if batched_wall > 0 else 0.0
        ),
        "identical": True,
    }


def run_batched_benches(
    quick: bool = False,
    config: Optional[SystemConfig] = None,
    backend: str = "auto",
) -> List[Dict[str, object]]:
    """Measure every pinned fleet; returns the ``batched`` record list."""
    return [
        run_batched_bench(fleet, quick=quick, config=config, backend=backend)
        for fleet in BATCHED_FLEETS
    ]


def format_batched_record(record: Dict[str, object]) -> str:
    """One summary line for the bench table."""
    groups = record.get("groups") or ()
    if len(groups) == 1:
        shape = f"{groups[0]['benchmark']}/{groups[0]['selector']}"
    else:
        shape = f"{len(groups)} cell groups"
    return (
        f"batched fleet {record['name']} [{shape}] "
        f"({record['lanes']} lanes, {record['backend']}): "
        f"{record['events_per_second']:,.0f} events/s batched vs "
        f"{record['serial_events_per_second']:,.0f} serial "
        f"({record['speedup']}x, bit-identical)"
    )
