"""Batched-fleet bench workload: the ``batched`` key of BENCH_run.json.

One pinned trace-friendly fleet — ``micro:linked_chain`` under the NET
selector, one lane per seed — measured twice: every cell through the
serial fused pipeline, then all cells as a single
:func:`repro.batch.run_fleet` sweep.  The record carries both walls and
both aggregate events/sec plus their ratio (``speedup``), and the
harness refuses to report a number unless every lane's
:class:`~repro.metrics.summary.MetricReport` equals its serial twin —
the bit-identity contract of ``docs/batching.md``, enforced on every
bench run, not only in the test suite.

The linked-chain fleet is the workload where batching earns its keep:
region-to-region transitions dominate (the trace-linking fast path),
so nearly every simulated step stays inside the vectorized rounds.
Interp-heavy fleets spend their time in the per-lane scalar
complement and gain little — ``docs/batching.md`` quantifies both.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.metrics.summary import MetricReport
from repro.system.simulator import simulate

#: The pinned fleet: (benchmark, selector, lanes, scale).  Lane ``i``
#: runs seed ``i`` — a seed-stability-shaped sweep.  The quick variant
#: trims per-lane work, not lane count: fleet-level speedup needs wide
#: fleets, and CI checks the quick number against the quick baseline.
BATCHED_BENCHMARK = "micro:linked_chain"
BATCHED_SELECTOR = "net"
BATCHED_LANES = 1024
BATCHED_SCALE = 0.5
BATCHED_SCALE_QUICK = 0.15


def run_batched_bench(
    quick: bool = False,
    config: Optional[SystemConfig] = None,
    lanes: int = BATCHED_LANES,
    scale: Optional[float] = None,
    backend: str = "auto",
) -> Dict[str, object]:
    """Measure the pinned fleet serial-vs-batched; returns its record.

    The ``wall_seconds`` / ``events_per_second`` fields describe the
    *batched* pass (so baseline ratio math treats the record like any
    workload); the serial reference rides along as ``serial_*`` and
    ``speedup`` is their throughput ratio.  Raises
    :class:`~repro.errors.ReproError` if any lane's report differs
    from its serial twin.
    """
    from repro.batch import BatchCell, build_fleet_program, get_backend, run_fleet

    config = config if config is not None else SystemConfig()
    if scale is None:
        scale = BATCHED_SCALE_QUICK if quick else BATCHED_SCALE
    cells = [
        BatchCell(BATCHED_BENCHMARK, BATCHED_SELECTOR, scale=scale, seed=seed)
        for seed in range(lanes)
    ]

    program = build_fleet_program(BATCHED_BENCHMARK, scale)
    serial_reports = {}
    serial_steps = 0
    started = time.perf_counter()
    for cell in cells:
        result = simulate(program, cell.selector, config, seed=cell.seed)
        serial_steps += (result.stats.interp_steps + result.stats.cache_steps)
        serial_reports[cell] = MetricReport.from_result(result)
    serial_wall = time.perf_counter() - started

    fleet = run_fleet(cells, config=config, backend=backend)
    mismatched = [
        cell for cell in cells
        if fleet.reports[cell] != serial_reports[cell]
    ]
    if mismatched or fleet.steps != serial_steps:
        first = mismatched[0] if mismatched else cells[0]
        raise ReproError(
            f"batched bench fleet is not bit-identical to the serial "
            f"pipeline ({len(mismatched)} of {lanes} lanes differ; "
            f"first: {first.benchmark}/{first.selector} seed "
            f"{first.seed}) — the kernel is broken, refusing to "
            f"report a throughput number"
        )

    batched_wall = fleet.wall_seconds
    return {
        "name": "chain-net-fleet",
        "benchmark": BATCHED_BENCHMARK,
        "selector": BATCHED_SELECTOR,
        "lanes": lanes,
        "scale": scale,
        "backend": fleet.backend,
        "requested_backend": get_backend(backend),
        "rounds": fleet.rounds,
        "steps": fleet.steps,
        "wall_seconds": round(float(batched_wall), 6),
        "events_per_second": (
            round(fleet.steps / batched_wall, 1) if batched_wall > 0 else 0.0
        ),
        "serial_wall_seconds": round(float(serial_wall), 6),
        "serial_events_per_second": (
            round(serial_steps / serial_wall, 1) if serial_wall > 0 else 0.0
        ),
        "speedup": (
            round(serial_wall / batched_wall, 3) if batched_wall > 0 else 0.0
        ),
        "identical": True,
    }


def format_batched_record(record: Dict[str, object]) -> str:
    """One summary line for the bench table."""
    return (
        f"batched fleet {record['benchmark']}/{record['selector']} "
        f"({record['lanes']} lanes, {record['backend']}): "
        f"{record['events_per_second']:,.0f} events/s batched vs "
        f"{record['serial_events_per_second']:,.0f} serial "
        f"({record['speedup']}x, bit-identical)"
    )
