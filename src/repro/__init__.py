"""repro — reproduction of *Improving Region Selection in Dynamic
Optimization Systems* (Hiniker, Hazelwood & Smith, MICRO 2005).

The library re-creates the paper's whole experimental stack:

* synthetic programs (:mod:`repro.program`, :mod:`repro.behavior`) with
  an execution engine standing in for Pin (:mod:`repro.execution`,
  :mod:`repro.tracing`),
* a simulated Dynamo-style dynamic optimization system
  (:mod:`repro.system`, :mod:`repro.cache`),
* the three region-selection algorithms — NET, LEI, and trace
  combination (:mod:`repro.selection`),
* the paper's metrics (:mod:`repro.metrics`), the twelve synthetic
  SPECint2000 stand-ins (:mod:`repro.workloads`), and the per-figure
  experiment harness (:mod:`repro.experiments`).

Quickstart::

    from repro import simulate
    from repro.workloads import build_benchmark

    program = build_benchmark("gzip")
    for selector in ("net", "lei", "combined-net", "combined-lei"):
        result = simulate(program, selector)
        print(selector, result.hit_rate, result.region_count)
"""

from repro.behavior import (
    Bernoulli,
    LoopTrip,
    MarkovBiased,
    Periodic,
    PhaseShift,
    SplitMix64,
    TableIndirect,
)
from repro.cache import CFGRegion, CodeCache, Region, TraceRegion
from repro.execution import ExecutionEngine, Step
from repro.program import Program, ProgramBuilder
from repro.selection import (
    CombinedLEISelector,
    CombinedNETSelector,
    LEISelector,
    NETSelector,
    RegionSelector,
    make_selector,
)
from repro.system import RunResult, Simulator, SystemConfig, simulate
from repro.tracing import collect_trace, replay_trace, replay_trace_into

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # behaviour
    "SplitMix64",
    "Bernoulli",
    "LoopTrip",
    "Periodic",
    "PhaseShift",
    "MarkovBiased",
    "TableIndirect",
    # program & execution
    "Program",
    "ProgramBuilder",
    "ExecutionEngine",
    "Step",
    "collect_trace",
    "replay_trace",
    "replay_trace_into",
    # cache & selection
    "CodeCache",
    "Region",
    "TraceRegion",
    "CFGRegion",
    "RegionSelector",
    "NETSelector",
    "LEISelector",
    "CombinedNETSelector",
    "CombinedLEISelector",
    "make_selector",
    # system
    "SystemConfig",
    "Simulator",
    "RunResult",
    "simulate",
]
