"""The paper's evaluation metrics (Section 2.3 and per-section metrics).

Each metric lives in its own module and consumes a
:class:`~repro.system.results.RunResult`:

* :mod:`~repro.metrics.locality` — hit rate, region transitions;
* :mod:`~repro.metrics.expansion` — code expansion, average region
  size, exit stubs;
* :mod:`~repro.metrics.coverset` — the X% cover set (90% by default),
  the paper's best performance predictor;
* :mod:`~repro.metrics.cycles` — spanned / executed cycle ratios
  (Section 3.2.1);
* :mod:`~repro.metrics.domination` — exit domination and
  exit-dominated duplication (Section 4.1);
* :mod:`~repro.metrics.memory` — profiling counters (Figure 10) and
  observed-trace memory relative to the cache size (Figure 18);
* :mod:`~repro.metrics.summary` — one :class:`MetricReport` per run,
  plus ratio helpers for the relative figures.
"""

from repro.metrics.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    estimated_speedup,
    estimated_time,
    interpreter_only_time,
)
from repro.metrics.coverset import cover_set_size
from repro.metrics.linking import inter_region_links
from repro.metrics.cycles import executed_cycle_ratio, spanned_cycle_ratio
from repro.metrics.domination import DominationReport, analyze_exit_domination
from repro.metrics.expansion import (
    average_region_instructions,
    code_expansion,
    exit_stub_count,
)
from repro.metrics.locality import hit_rate, region_transitions
from repro.metrics.memory import observed_trace_memory_fraction, peak_counter_memory
from repro.metrics.summary import MetricReport, safe_ratio

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "estimated_time",
    "estimated_speedup",
    "interpreter_only_time",
    "inter_region_links",
    "cover_set_size",
    "spanned_cycle_ratio",
    "executed_cycle_ratio",
    "DominationReport",
    "analyze_exit_domination",
    "code_expansion",
    "average_region_instructions",
    "exit_stub_count",
    "hit_rate",
    "region_transitions",
    "peak_counter_memory",
    "observed_trace_memory_fraction",
    "MetricReport",
    "safe_ratio",
]
