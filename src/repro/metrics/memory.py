"""Profiling memory metrics (Sections 3.2.4 and 4.3.4).

Two distinct costs:

* **Counter memory** (Figure 10): the maximum number of profiling
  counters simultaneously live.  Both NET and LEI recycle counters at
  the threshold, so peak concurrency — not total allocations — is what
  a real implementation must reserve.
* **Observed-trace memory** (Figure 18): the peak bytes of stored
  compact traces during trace combination, reported as a fraction of
  the estimated final code cache size (instruction bytes plus 10 bytes
  per exit stub), exactly the paper's normalization.
"""

from __future__ import annotations

from typing import Optional

from repro.system.results import RunResult


def peak_counter_memory(result: RunResult) -> int:
    """Maximum number of simultaneously live profiling counters."""
    return result.peak_counters


def observed_trace_memory_fraction(result: RunResult) -> Optional[float]:
    """Peak observed-trace bytes over estimated cache bytes.

    ``None`` when the run cached nothing (the fraction is undefined);
    0.0 for plain (non-combining) selectors.
    """
    cache_bytes = result.cache_size_estimate
    if cache_bytes == 0:
        return None
    return result.peak_observed_trace_bytes / cache_bytes
