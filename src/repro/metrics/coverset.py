"""The X% cover set (Section 2.3) — the paper's trace quality metric.

"[Bala et al.] define the X% cover set of a region-selection algorithm
to be the smallest set of regions that comprise at least X% of program
execution ... the 90% cover sets were a perfect predictor of
performance: a smaller 90% cover set implied a smaller execution
time."

Execution share is measured in instructions, consistent with the hit
rate definition; the greedy largest-first prefix is optimal for this
"smallest set reaching a sum" question.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.system.results import RunResult


def cover_set_size(result: RunResult, fraction: float = 0.9) -> Optional[int]:
    """Size of the smallest region set covering ``fraction`` of execution.

    Returns ``None`` when even all regions together fall short (possible
    only when the hit rate itself is below ``fraction``).
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"cover fraction must be in (0, 1], got {fraction}")
    target = result.total_instructions_executed * fraction
    if target == 0:
        return 0
    covered = 0.0
    for index, executed in enumerate(
        sorted((r.executed_instructions for r in result.regions), reverse=True),
        start=1,
    ):
        covered += executed
        if covered >= target:
            return index
    return None
