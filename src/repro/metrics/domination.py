"""Exit domination analysis (Section 4.1).

"We say that region R exit-dominates region S if three conditions hold.
First, S begins at an exit from R.  Second, the exit block is the only
predecessor to the entrance block of S that executes and is not
contained in S.  Third, R was selected before S."

Domination is computed offline over the run's executed-edge profile
(footnote 5: only *executed* incoming edges matter — a never-executed
predecessor does not make separating the regions useful).
*Exit-dominated duplication* is the instruction mass of blocks the
dominated region shares with its dominator(s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cache.region import Region
from repro.program.cfg import BasicBlock
from repro.system.results import RunResult


@dataclass
class DominationReport:
    """Results of the exit-domination analysis for one run."""

    #: Dominated region -> the regions that exit-dominate it.
    dominators: Dict[Region, Set[Region]] = field(default_factory=dict)
    #: Number of regions selected in total.
    region_count: int = 0
    #: Total instructions selected into the cache.
    selected_instructions: int = 0
    #: Instructions in dominated regions that also appear in a dominator.
    duplicated_instructions: int = 0

    @property
    def dominated_count(self) -> int:
        return len(self.dominators)

    @property
    def dominated_region_fraction(self) -> float:
        """Fraction of regions that are exit-dominated (Figure 12)."""
        if self.region_count == 0:
            return 0.0
        return self.dominated_count / self.region_count

    @property
    def max_dominator_fanout(self) -> int:
        """Most regions exit-dominated by any single region.

        The paper singles out eon for exactly this: "several traces
        that each exit-dominate a large number of other traces"
        (constructors of the widely used ggPoint3 class).
        """
        fanout: Dict[Region, int] = {}
        for dominators in self.dominators.values():
            for dominator in dominators:
                fanout[dominator] = fanout.get(dominator, 0) + 1
        return max(fanout.values(), default=0)

    @property
    def duplication_fraction(self) -> float:
        """Fraction of selected instructions that are exit-dominated
        duplication (Figure 11)."""
        if self.selected_instructions == 0:
            return 0.0
        return self.duplicated_instructions / self.selected_instructions


def analyze_exit_domination(result: RunResult) -> DominationReport:
    """Compute exit domination over a finished run."""
    regions = result.regions
    report = DominationReport(
        region_count=len(regions),
        selected_instructions=sum(r.instruction_count for r in regions),
    )
    if len(regions) < 2:
        return report

    executed_preds: Dict[BasicBlock, Set[BasicBlock]] = {}
    for (src, dst) in result.edge_profile:
        executed_preds.setdefault(dst, set()).add(src)

    containing: Dict[BasicBlock, List[Region]] = {}
    for region in regions:
        for block in region.block_set:
            containing.setdefault(block, []).append(region)

    for dominated in regions:
        entrance = dominated.entry
        preds = executed_preds.get(entrance, set())
        outside = [p for p in preds if p not in dominated.block_set]
        if len(outside) != 1:
            # Either nothing executed into the entrance from outside, or
            # several blocks did — in both cases no single exit block
            # satisfies condition two.
            continue
        exit_block = outside[0]
        assert dominated.selection_order is not None
        for candidate in containing.get(exit_block, ()):
            if candidate is dominated:
                continue
            assert candidate.selection_order is not None
            if candidate.selection_order >= dominated.selection_order:
                continue  # condition three: R selected before S
            if (exit_block, entrance) in candidate.internal_edges():
                continue  # the edge stays inside R: not an exit of R
            report.dominators.setdefault(dominated, set()).add(candidate)

    # Exit-dominated duplication: blocks of a dominated region that also
    # appear in any of its dominators, weighted by instruction count.
    for dominated, dominators in report.dominators.items():
        dominator_blocks: Set[BasicBlock] = set()
        for dominator in dominators:
            dominator_blocks |= dominator.block_set
        for block in dominated.block_set & dominator_blocks:
            report.duplicated_instructions += block.instruction_count

    return report
