"""A simple execution-time cost model for the simulated system.

The paper never reports absolute times — it relies on the 90% cover set
as a validated proxy ("the 90% cover sets were a perfect predictor of
performance").  To make that claim checkable inside the simulation, this
module prices each run with an explicit cost model:

* instructions executed from the code cache run at cost 1 (native),
* interpreted instructions pay an emulation multiplier (software
  interpreters cost tens of native instructions per guest instruction),
* every region transition pays a small penalty (a taken jump between
  distant cache areas: branch + I-cache/ITLB effects),
* every cache exit/entry pays a context-switch penalty (spill/fill of
  machine state through the dispatcher, the cost Section 2.1's linking
  exists to avoid),
* every selected region pays a one-time selection/optimization cost per
  instruction (the "overhead of code translation and optimization" that
  excessive duplication inflates).

Defaults are deliberately round, conservative numbers; the bench sweeps
them to show the *ordering* of selectors is insensitive to the exact
prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.system.results import RunResult


@dataclass(frozen=True)
class CostModel:
    """Unit costs, all expressed in native-instruction equivalents."""

    #: Cost of interpreting one guest instruction.
    interpreted_instruction: float = 20.0
    #: Cost of executing one cached instruction (native).
    cached_instruction: float = 1.0
    #: Cost of a direct region-to-region transition (linked stub jump).
    region_transition: float = 10.0
    #: Cost of leaving the cache for the interpreter (context switch)
    #: and of entering it again.
    cache_switch: float = 50.0
    #: One-time selection + optimization cost per instruction selected.
    selection_per_instruction: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "interpreted_instruction", "cached_instruction",
            "region_transition", "cache_switch", "selection_per_instruction",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.interpreted_instruction < self.cached_instruction:
            raise ConfigError(
                "interpretation cannot be cheaper than native execution"
            )


#: Round defaults, in the range the literature reports for software
#: interpreters and Dynamo-style dispatch.
DEFAULT_COST_MODEL = CostModel()


def estimated_time(result: RunResult, model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Price a run in native-instruction equivalents."""
    stats = result.stats
    return (
        stats.interp_instructions * model.interpreted_instruction
        + stats.cache_instructions * model.cached_instruction
        + stats.region_transitions * model.region_transition
        + (stats.cache_entries + stats.cache_exits) * model.cache_switch
        + result.code_expansion * model.selection_per_instruction
    )


def interpreter_only_time(
    result: RunResult, model: CostModel = DEFAULT_COST_MODEL
) -> float:
    """What the same run would cost with no dynamic optimizer at all."""
    return result.total_instructions_executed * model.interpreted_instruction


def estimated_speedup(
    result: RunResult, model: CostModel = DEFAULT_COST_MODEL
) -> float:
    """Speedup of the simulated system over pure interpretation."""
    time = estimated_time(result, model)
    if time == 0:
        return 0.0
    return interpreter_only_time(result, model) / time
