"""Code expansion metrics (Section 2.3).

"The amount of code expansion is the number of program instructions
that are copied into the code cache" — i.e. the work the optimizer
does, deliberately measured instead of raw cache bytes; stub counts are
reported separately (Figure 19).
"""

from __future__ import annotations

from repro.system.results import RunResult


def code_expansion(result: RunResult) -> int:
    """Instructions copied into the code cache over the whole run."""
    return result.code_expansion


def exit_stub_count(result: RunResult) -> int:
    """Total exit stubs across all cached regions."""
    return result.exit_stubs


def average_region_instructions(result: RunResult) -> float:
    """Mean instructions per cached region.

    The paper reports this rising from 14.8 (NET) to 18.3 (LEI) across
    SPECint2000 even as total expansion *falls* — fewer, larger regions.
    """
    return result.average_trace_instructions
