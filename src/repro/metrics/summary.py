"""Per-run metric reports and ratio helpers for the relative figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.coverset import cover_set_size
from repro.metrics.cycles import executed_cycle_ratio, spanned_cycle_ratio
from repro.metrics.domination import analyze_exit_domination
from repro.metrics.memory import observed_trace_memory_fraction
from repro.system.results import RunResult


def safe_ratio(numerator: float, denominator: float) -> Optional[float]:
    """``numerator / denominator`` with ``None`` for undefined ratios."""
    if denominator == 0:
        return None
    return numerator / denominator


@dataclass(frozen=True)
class MetricReport:
    """Every paper metric for one (benchmark, selector) run."""

    program: str
    selector: str
    hit_rate: float
    code_expansion: int
    exit_stubs: int
    region_count: int
    region_transitions: int
    average_region_instructions: float
    spanned_cycle_ratio: float
    executed_cycle_ratio: float
    cover_set_90: Optional[int]
    peak_counters: int
    observed_trace_memory_fraction: Optional[float]
    exit_dominated_regions: int
    exit_dominated_region_fraction: float
    exit_dominated_duplication_fraction: float
    exit_dominated_duplicated_instructions: int
    max_dominator_fanout: int
    cache_size_estimate: int
    total_instructions: int
    interpreted_instructions: int

    @classmethod
    def from_result(cls, result: RunResult) -> "MetricReport":
        domination = analyze_exit_domination(result)
        return cls(
            program=result.program_name,
            selector=result.selector_name,
            hit_rate=result.hit_rate,
            code_expansion=result.code_expansion,
            exit_stubs=result.exit_stubs,
            region_count=result.region_count,
            region_transitions=result.region_transitions,
            average_region_instructions=result.average_trace_instructions,
            spanned_cycle_ratio=spanned_cycle_ratio(result),
            executed_cycle_ratio=executed_cycle_ratio(result),
            cover_set_90=cover_set_size(result, 0.9),
            peak_counters=result.peak_counters,
            observed_trace_memory_fraction=observed_trace_memory_fraction(result),
            exit_dominated_regions=domination.dominated_count,
            exit_dominated_region_fraction=domination.dominated_region_fraction,
            exit_dominated_duplication_fraction=domination.duplication_fraction,
            exit_dominated_duplicated_instructions=domination.duplicated_instructions,
            max_dominator_fanout=domination.max_dominator_fanout,
            cache_size_estimate=result.cache_size_estimate,
            total_instructions=result.total_instructions_executed,
            interpreted_instructions=result.stats.interp_instructions,
        )
