"""Inter-region link counting (the paper's footnote 9).

"We ignore the memory required for links between regions in the cache.
Our algorithms are very likely to reduce the number of such links, as
fewer regions are selected and each contains more related code."

A *link* exists wherever one region's exit stub can be rewritten to
jump directly to another region's entry.  We count static links over
the final cache: for every region, each direct (statically-known) exit
target that is another cached region's entry.  Dynamic exits (returns,
indirect jumps) resolve through the dispatcher and are not links.
"""

from __future__ import annotations

from typing import Set

from repro.cache.region import Region
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.system.results import RunResult


def _direct_exit_targets(region: Region) -> Set[BasicBlock]:
    """Statically-known blocks a region's exits can jump to."""
    internal = region.internal_edges()
    targets: Set[BasicBlock] = set()
    for block in region.block_set:
        term = block.terminator
        kind = term.kind
        candidates = []
        if kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL):
            candidates.append(term.taken_target)
        if kind.may_fall_through:
            candidates.append(block.fallthrough)
        for target in candidates:
            if target is not None and (block, target) not in internal:
                targets.add(target)
    return targets


def inter_region_links(result: RunResult) -> int:
    """Number of direct exit-stub -> region-entry links in the cache."""
    entries = {region.entry for region in result.regions}
    links = 0
    for region in result.regions:
        for target in _direct_exit_targets(region):
            if target in entries and target is not region.entry:
                links += 1
    return links
