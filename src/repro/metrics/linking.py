"""Inter-region link counting (the paper's footnote 9).

"We ignore the memory required for links between regions in the cache.
Our algorithms are very likely to reduce the number of such links, as
fewer regions are selected and each contains more related code."

A *link* exists wherever one region's exit stub can be rewritten to
jump directly to another region's entry.  We count static links over
the final cache: for every region, each direct (statically-known) exit
target that is another cached region's entry.  Dynamic exits (returns,
indirect jumps) resolve through the dispatcher and are not links.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.cache.region import Region
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.system.results import RunResult


def _direct_exit_targets(region: Region) -> Set[BasicBlock]:
    """Statically-known blocks a region's exits can jump to."""
    internal = region.internal_edges()
    targets: Set[BasicBlock] = set()
    for block in region.block_set:
        term = block.terminator
        kind = term.kind
        candidates = []
        if kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL):
            candidates.append(term.taken_target)
        if kind.may_fall_through:
            candidates.append(block.fallthrough)
        for target in candidates:
            if target is not None and (block, target) not in internal:
                targets.add(target)
    return targets


def _count_links(regions: Iterable[Region]) -> int:
    """Direct exit-stub -> region-entry links within ``regions``."""
    regions = list(regions)
    entries = {region.entry for region in regions}
    links = 0
    for region in regions:
        for target in _direct_exit_targets(region):
            if target in entries and target is not region.entry:
                links += 1
    return links


def inter_region_links(result: RunResult) -> int:
    """Number of direct exit-stub -> region-entry links in the cache.

    Counted over every region ever selected (eviction does not erase
    the optimizer work of emitting a link), matching the other static
    expansion metrics.
    """
    return _count_links(result.regions)


def resident_inter_region_links(result: RunResult) -> int:
    """Links between currently *resident* regions only.

    This is the set of patches the dispatch-compilation layer
    (:mod:`repro.cache.dispatch`) keeps live at any instant: a bounded
    cache that evicted a link's source or target no longer holds that
    link.  Equals :func:`inter_region_links` for unbounded runs.
    """
    return _count_links(result.cache.resident_regions)
