"""Cycle metrics (Section 3.2.1).

"The spanned cycle ratio is the percentage of selected traces that
include a branch to the top of the trace.  The executed cycle ratio is
the percentage of trace executions that end by taking a branch to the
top of the trace, thereby executing the entire spanned cycle."
"""

from __future__ import annotations

from repro.system.results import RunResult


def spanned_cycle_ratio(result: RunResult) -> float:
    """Fraction of selected regions that span a cycle (0..1)."""
    regions = result.regions
    if not regions:
        return 0.0
    return sum(1 for region in regions if region.spans_cycle) / len(regions)


def executed_cycle_ratio(result: RunResult) -> float:
    """Fraction of region executions ending with a branch to the top.

    A region execution ends either by cycling back to the region's
    entry (counted in ``cycle_backs``) or by leaving the region
    (``exit_count``); the ratio is cycles over all execution ends.
    """
    cycles = sum(region.cycle_backs for region in result.regions)
    ends = sum(region.execution_ends for region in result.regions)
    if ends == 0:
        return 0.0
    return cycles / ends
