"""Locality metrics: hit rate and region transitions (Section 2.3).

"The hit rate for a program is the percentage of executed program
instructions that execute from the code cache." ... "A region
transition is a jump between regions in the code cache, which are often
far apart.  Fewer region transitions implies better locality of
execution."
"""

from __future__ import annotations

from repro.system.results import RunResult


def hit_rate(result: RunResult) -> float:
    """Fraction (0..1) of executed instructions run from the cache."""
    return result.hit_rate


def region_transitions(result: RunResult) -> int:
    """Count of direct region-to-region jumps during the run."""
    return result.stats.region_transitions
