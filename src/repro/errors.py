"""Exception hierarchy for the region-selection reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProgramStructureError(ReproError):
    """A synthetic program is structurally invalid.

    Raised by :mod:`repro.program.validate` and by the builder when a
    program violates invariants such as a block having two terminators or
    a branch targeting a block that does not exist.
    """


class LayoutError(ReproError):
    """Address layout failed or was queried before being assigned."""


class ExecutionError(ReproError):
    """The execution engine encountered an impossible machine state.

    Examples: returning with an empty call stack, or a branch model
    producing a target that is not a successor of the current block.
    """


class TraceFormatError(ReproError):
    """A binary trace file or compact trace bitstring is malformed."""


class CacheError(ReproError):
    """The code cache was used inconsistently.

    Examples: inserting two regions with the same entry address, or
    executing a region from a non-entry block.
    """


class SelectionError(ReproError):
    """A region-selection algorithm reached an inconsistent state."""


class ConfigError(ReproError):
    """A system configuration value is out of its legal range."""
