"""Exception hierarchy for the region-selection reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations

from typing import Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Carries an optional *context payload* — ``(benchmark, selector,
    step)`` and whatever else the raise site knew — attached with
    :meth:`with_context` as the exception propagates.  The payload is
    rendered into ``str(exc)`` and mirrored into the ``run_failed``
    observability event, so an aborted run is diagnosable from its
    event log alone.
    """

    def __init__(self, *args: object) -> None:
        super().__init__(*args)
        self.context: Dict[str, object] = {}

    def with_context(self, **context: object) -> "ReproError":
        """Attach diagnostic context; existing keys are not overwritten
        (the innermost frame knew the most)."""
        for key, value in context.items():
            self.context.setdefault(key, value)
        return self

    def __str__(self) -> str:
        message = super().__str__()
        if not self.context:
            return message
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(self.context.items())
        )
        return f"{message} [{rendered}]"


class ProgramStructureError(ReproError):
    """A synthetic program is structurally invalid.

    Raised by :mod:`repro.program.validate` and by the builder when a
    program violates invariants such as a block having two terminators or
    a branch targeting a block that does not exist.
    """


class LayoutError(ReproError):
    """Address layout failed or was queried before being assigned."""


class ExecutionError(ReproError):
    """The execution engine encountered an impossible machine state.

    Examples: returning with an empty call stack, or a branch model
    producing a target that is not a successor of the current block.
    """


class TraceFormatError(ReproError):
    """A binary trace file or compact trace bitstring is malformed."""


class CacheError(ReproError):
    """The code cache was used inconsistently.

    Examples: inserting two regions with the same entry address, or
    executing a region from a non-entry block.
    """


class SelectionError(ReproError):
    """A region-selection algorithm reached an inconsistent state."""


class ConfigError(ReproError):
    """A system configuration value is out of its legal range."""


class ObservabilityError(ReproError):
    """The observability layer was misused or fed a malformed log.

    Examples: registering the same metric name with a different type,
    emitting an event kind missing from the taxonomy, or parsing a
    corrupt JSONL event file.
    """


class StoreError(ReproError):
    """The content-addressed result store was misused.

    Examples: writing a report whose serialized form does not round-trip,
    or opening a store root that exists but is not a directory.  Corrupt
    *entries* are not errors — the store treats them as misses and
    recomputes (see :mod:`repro.store`).
    """


class ServeError(ReproError):
    """A simulation-service request was invalid or could not be served.

    Raised by :mod:`repro.serve` for malformed request payloads (unknown
    benchmark, bad config override), for service-lifecycle misuse
    (resolving through a service that was never started), and by the
    smoke checker when a service-level expectation fails.  The HTTP
    layer renders it as a 400 with the message as the error body.
    """


class JobError(ReproError):
    """A job failed permanently in the experiment job engine.

    Raised when a grid cell (or any scheduled job) exhausts its retry
    budget; the context payload carries ``job_id``, ``attempts`` and the
    final failure ``reason`` so an aborted sweep is diagnosable from the
    exception alone.
    """
