"""JSON-friendly serialization of metric reports and figure tables.

External tooling (dashboards, regression trackers) consumes experiment
output as JSON; these helpers keep the format explicit and round-trip
tested rather than leaking dataclass internals.
"""

from __future__ import annotations

from dataclasses import asdict, fields
from typing import Any, Dict

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.metrics.summary import MetricReport

#: Format marker so consumers can detect incompatible producers.
SCHEMA_VERSION = 1


def report_to_dict(report: MetricReport) -> Dict[str, Any]:
    """Serialize a metric report to plain JSON-compatible types."""
    data = asdict(report)
    data["schema_version"] = SCHEMA_VERSION
    return data


def report_from_dict(data: Dict[str, Any]) -> MetricReport:
    """Rebuild a metric report; rejects unknown schema versions."""
    payload = dict(data)
    version = payload.pop("schema_version", None)
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported metric-report schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    expected = {f.name for f in fields(MetricReport)}
    unknown = set(payload) - expected
    if unknown:
        raise ConfigError(f"unknown metric-report fields: {sorted(unknown)}")
    missing = expected - set(payload)
    if missing:
        raise ConfigError(f"missing metric-report fields: {sorted(missing)}")
    return MetricReport(**payload)


def grid_to_dict(grid) -> Dict[str, Any]:
    """Serialize a whole experiment grid (all cells + parameters)."""
    from dataclasses import asdict as config_asdict

    return {
        "schema_version": SCHEMA_VERSION,
        "scale": grid.scale,
        "seed": grid.seed,
        "config": config_asdict(grid.config),
        "cells": [
            {
                "benchmark": bench,
                "selector": selector,
                "report": report_to_dict(report),
            }
            for (bench, selector), report in grid.reports.items()
        ],
    }


def grid_from_dict(data: Dict[str, Any]):
    """Rebuild an experiment grid saved with :func:`grid_to_dict`."""
    from repro.config import SystemConfig
    from repro.experiments.runner import ExperimentGrid

    if data.get("schema_version") != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported grid schema version {data.get('schema_version')!r}"
        )
    grid = ExperimentGrid(
        scale=data["scale"],
        seed=data["seed"],
        config=SystemConfig(**data["config"]),
    )
    for cell in data["cells"]:
        grid.reports[(cell["benchmark"], cell["selector"])] = report_from_dict(
            cell["report"]
        )
    return grid


def save_grid(grid, path) -> None:
    """Write a grid to a JSON file (figures can be recomputed from it)."""
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(grid_to_dict(grid), fh)


def load_grid(path):
    """Load a grid saved with :func:`save_grid`."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        return grid_from_dict(json.load(fh))


def figure_to_dict(figure: FigureResult) -> Dict[str, Any]:
    """Serialize a figure table (rows plus the computed means)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "figure_id": figure.figure_id,
        "title": figure.title,
        "columns": list(figure.columns),
        "rows": [
            {"benchmark": name, "values": list(values)}
            for name, values in figure.rows
        ],
        "means": list(figure.means),
        "paper_note": figure.paper_note,
    }
