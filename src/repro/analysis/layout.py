"""Code-cache layout maps.

Shows where each region landed in the cache's byte layout — the spatial
story behind the locality metrics: separated related regions sit far
apart (possibly on different pages), which is exactly what Section 2.2
means by "inserted far from the original trace, potentially on a
separate virtual memory page".
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cache.region import Region
from repro.system.results import RunResult

#: Conventional 4 KiB virtual memory pages.
PAGE_BYTES = 4096


def layout_map(result: RunResult) -> str:
    """Text map of the cache layout, in address order."""
    regions = sorted(
        result.regions,
        key=lambda r: r.cache_address if r.cache_address is not None else -1,
    )
    lines: List[str] = [
        f"code cache layout: {result.program_name}/{result.selector_name} "
        f"({len(regions)} regions, {result.cache.resident_bytes} resident bytes)"
    ]
    lines.append(f"{'address':>10s} {'bytes':>6s} {'page':>5s} "
                 f"{'entry':30s} {'executed':>10s}")
    for region in regions:
        address = region.cache_address
        if address is None:
            continue
        size = result.cache.region_bytes(region)
        lines.append(
            f"{address:10d} {size:6d} {address // PAGE_BYTES:5d} "
            f"{region.entry.full_label:30s} {region.executed_instructions:10d}"
        )
    return "\n".join(lines)


def transition_distances(result: RunResult) -> List[Tuple[Region, Region, int]]:
    """Static byte distance between every linked region pair.

    A pair is linked when one region has a direct exit targeting the
    other's entry (the jumps region transitions travel).  Returns
    (source, destination, |address delta|) triples.
    """
    from repro.metrics.linking import _direct_exit_targets

    by_entry = {region.entry: region for region in result.regions}
    pairs: List[Tuple[Region, Region, int]] = []
    for region in result.regions:
        if region.cache_address is None:
            continue
        for target in _direct_exit_targets(region):
            other = by_entry.get(target)
            if other is None or other is region or other.cache_address is None:
                continue
            pairs.append(
                (region, other, abs(other.cache_address - region.cache_address))
            )
    return pairs


def page_crossing_fraction(result: RunResult, page_bytes: int = PAGE_BYTES) -> float:
    """Fraction of linked region pairs living on different pages."""
    pairs = transition_distances(result)
    if not pairs:
        return 0.0
    crossings = sum(
        1 for src, dst, _ in pairs
        if src.cache_address // page_bytes != dst.cache_address // page_bytes
    )
    return crossings / len(pairs)
