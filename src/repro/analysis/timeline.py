"""Timeline analysis: warm-up curves and windowed rates.

The paper reports end-of-run aggregates; these helpers expose the
*transient* story the simulator's samples record: how long each
selector interprets before going hot, and how phase changes
(Section 4.3.1's caveat about observed traces representing only the
current phase) show up as dips in the windowed hit rate.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.errors import ConfigError
from repro.system.results import TimelineSample


class WindowRate(NamedTuple):
    """Per-window rates derived from two consecutive timeline samples."""

    start_step: int
    end_step: int
    hit_rate: float
    instructions: int
    regions_selected: int
    region_transitions: int


def window_rates(samples: Sequence[TimelineSample]) -> List[WindowRate]:
    """Turn cumulative samples into per-window rates.

    Windows with no executed instructions are skipped (they cannot
    define a hit rate).
    """
    rates: List[WindowRate] = []
    for previous, current in zip(samples, samples[1:]):
        cache_delta = current.cache_instructions - previous.cache_instructions
        total_delta = current.total_instructions - previous.total_instructions
        if total_delta <= 0:
            continue
        rates.append(WindowRate(
            start_step=previous.step,
            end_step=current.step,
            hit_rate=cache_delta / total_delta,
            instructions=total_delta,
            regions_selected=current.regions_selected - previous.regions_selected,
            region_transitions=(current.region_transitions
                                - previous.region_transitions),
        ))
    return rates


def warmup_step(
    samples: Sequence[TimelineSample], threshold: float = 0.9
) -> Optional[int]:
    """Earliest sampled step after which execution is hot in aggregate.

    Returns the start step of the earliest window from which the
    *remainder of the run*, taken together, meets the ``threshold`` hit
    rate — or ``None`` when even the full run's tail never does.
    Aggregating the suffix (instead of demanding every later window be
    hot) keeps a tiny cold tail — the few interpreted instructions
    around program exit — from erasing an otherwise-warm run.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigError(f"threshold must be in (0, 1], got {threshold}")
    rates = window_rates(samples)
    if not rates:
        return None
    # Walk suffixes from the earliest candidate forward.
    suffix_cache = 0
    suffix_total = 0
    suffix_stats = []
    for rate in reversed(rates):
        cache_delta = round(rate.hit_rate * rate.instructions)
        suffix_cache += cache_delta
        suffix_total += rate.instructions
        suffix_stats.append(suffix_cache / suffix_total)
    suffix_stats.reverse()
    for rate, suffix_rate in zip(rates, suffix_stats):
        if suffix_rate >= threshold:
            return rate.start_step
    return None


def first_hot_window(
    samples: Sequence[TimelineSample], threshold: float = 0.95
) -> Optional[int]:
    """End step of the first single window meeting ``threshold``.

    A finer-grained warm-up probe than :func:`warmup_step`: on a long
    run the suffix aggregate is dominated by the hot steady state, so
    this looks at individual windows instead.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigError(f"threshold must be in (0, 1], got {threshold}")
    for rate in window_rates(samples):
        if rate.hit_rate >= threshold:
            return rate.end_step
    return None


def coldest_window(samples: Sequence[TimelineSample]) -> Optional[WindowRate]:
    """The window with the lowest hit rate (phase-change detector).

    Ignores the first window, which is always cold (pure warm-up).
    """
    rates = window_rates(samples)[1:]
    if not rates:
        return None
    return min(rates, key=lambda rate: rate.hit_rate)
