"""Human-readable region inventories and cache summaries."""

from __future__ import annotations

from typing import List

from repro.system.results import RunResult


def region_inventory(result: RunResult, limit: int = 0) -> str:
    """A text table of every selected region, hottest first.

    ``limit`` truncates to the N hottest regions (0 = all).
    """
    regions = sorted(
        result.regions, key=lambda r: r.executed_instructions, reverse=True
    )
    if limit:
        regions = regions[:limit]
    lines: List[str] = [
        f"{result.program_name}/{result.selector_name}: "
        f"{result.region_count} regions "
        f"({result.stats.cache_instructions} instructions from cache)"
    ]
    lines.append(
        f"{'order':>5s} {'entry':30s} {'kind':6s} {'blk':>4s} {'insts':>6s} "
        f"{'stubs':>5s} {'executed':>10s} {'cycles':>8s} flags"
    )
    for region in regions:
        flags = []
        if region.spans_cycle:
            flags.append("cycle")
        if region.selected_at_step is not None:
            flags.append(f"@{region.selected_at_step}")
        lines.append(
            f"{region.selection_order if region.selection_order is not None else -1:5d} "
            f"{region.entry.full_label:30s} {region.kind:6s} "
            f"{len(region.block_list):4d} {region.instruction_count:6d} "
            f"{region.exit_stub_count:5d} {region.executed_instructions:10d} "
            f"{region.cycle_backs:8d} {','.join(flags)}"
        )
    return "\n".join(lines)


def cache_summary(result: RunResult) -> str:
    """One-paragraph cache summary for a run."""
    cache = result.cache
    parts = [
        f"{result.program_name}/{result.selector_name}:",
        f"{cache.region_count} regions selected",
        f"({cache.resident_count} resident,",
        f"{cache.resident_bytes} B resident of "
        f"{result.cache_size_estimate} B total estimate),",
        f"{result.code_expansion} instructions expanded,",
        f"{result.exit_stubs} exit stubs,",
        f"hit rate {100 * result.hit_rate:.2f}%.",
    ]
    if cache.evictions:
        parts.append(
            f"Bounded: {cache.evictions} evictions, {cache.flushes} flushes, "
            f"{cache.regenerations} regenerated regions."
        )
    return " ".join(parts)
