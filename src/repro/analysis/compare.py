"""Side-by-side comparison of two runs.

Generalizes the paper's "X relative to Y" presentation: given any two
:class:`~repro.system.results.RunResult` objects over the same program,
produce the ratio of every headline metric, plus the block-level
overlap of what the two selectors cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.errors import ConfigError
from repro.metrics.summary import safe_ratio
from repro.system.results import RunResult


@dataclass(frozen=True)
class RunComparison:
    """Metric ratios of a subject run relative to a baseline run."""

    program: str
    subject: str
    baseline: str
    #: metric name -> subject/baseline ratio (None when undefined).
    ratios: Dict[str, Optional[float]]
    #: Original-program blocks cached by both selectors.
    shared_blocks: int
    #: Blocks only the subject cached.
    subject_only_blocks: int
    #: Blocks only the baseline cached.
    baseline_only_blocks: int

    def ratio(self, metric: str) -> Optional[float]:
        try:
            return self.ratios[metric]
        except KeyError:
            raise ConfigError(
                f"unknown metric {metric!r}; known: {sorted(self.ratios)}"
            ) from None

    def summary_lines(self) -> list:
        lines = [f"{self.subject} relative to {self.baseline} on {self.program}:"]
        for metric, value in sorted(self.ratios.items()):
            text = "-" if value is None else f"{value:.3f}"
            lines.append(f"  {metric:24s} {text}")
        lines.append(
            f"  cached blocks: {self.shared_blocks} shared, "
            f"{self.subject_only_blocks} subject-only, "
            f"{self.baseline_only_blocks} baseline-only"
        )
        return lines


def _cached_blocks(result: RunResult) -> Set:
    blocks = set()
    for region in result.regions:
        blocks |= region.block_set
    return blocks


def compare_runs(subject: RunResult, baseline: RunResult) -> RunComparison:
    """Compare two runs of the *same program* (different selectors)."""
    if subject.program_name != baseline.program_name:
        raise ConfigError(
            f"cannot compare runs of different programs: "
            f"{subject.program_name!r} vs {baseline.program_name!r}"
        )
    ratios: Dict[str, Optional[float]] = {
        "hit_rate": safe_ratio(subject.hit_rate, baseline.hit_rate),
        "code_expansion": safe_ratio(subject.code_expansion, baseline.code_expansion),
        "exit_stubs": safe_ratio(subject.exit_stubs, baseline.exit_stubs),
        "region_transitions": safe_ratio(
            subject.region_transitions, baseline.region_transitions
        ),
        "region_count": safe_ratio(subject.region_count, baseline.region_count),
        "cache_size": safe_ratio(
            subject.cache_size_estimate, baseline.cache_size_estimate
        ),
        "peak_counters": safe_ratio(subject.peak_counters, baseline.peak_counters),
    }
    subject_blocks = _cached_blocks(subject)
    baseline_blocks = _cached_blocks(baseline)
    return RunComparison(
        program=subject.program_name,
        subject=subject.selector_name,
        baseline=baseline.selector_name,
        ratios=ratios,
        shared_blocks=len(subject_blocks & baseline_blocks),
        subject_only_blocks=len(subject_blocks - baseline_blocks),
        baseline_only_blocks=len(baseline_blocks - subject_blocks),
    )
