"""Post-run analysis tools.

* :mod:`~repro.analysis.timeline` — warm-up curves and windowed rates
  from the simulator's timeline samples (how fast a selector goes hot,
  and what program phases do to locality);
* :mod:`~repro.analysis.compare` — side-by-side comparison of two runs
  (the paper's "X relative to Y" figures, generalized);
* :mod:`~repro.analysis.inventory` — human-readable region inventories
  and cache summaries (also used by the CLI);
* :mod:`~repro.analysis.serialize` — JSON round-trips for metric
  reports and figure tables, so external tooling can consume results.
"""

from repro.analysis.compare import RunComparison, compare_runs
from repro.analysis.inventory import cache_summary, region_inventory
from repro.analysis.layout import (
    layout_map,
    page_crossing_fraction,
    transition_distances,
)
from repro.analysis.timeline import (
    WindowRate,
    coldest_window,
    first_hot_window,
    warmup_step,
    window_rates,
)
from repro.analysis.serialize import (
    figure_to_dict,
    grid_from_dict,
    grid_to_dict,
    load_grid,
    report_from_dict,
    report_to_dict,
    save_grid,
)

__all__ = [
    "WindowRate",
    "window_rates",
    "warmup_step",
    "first_hot_window",
    "coldest_window",
    "RunComparison",
    "compare_runs",
    "region_inventory",
    "cache_summary",
    "layout_map",
    "transition_distances",
    "page_crossing_fraction",
    "figure_to_dict",
    "report_to_dict",
    "report_from_dict",
    "grid_to_dict",
    "grid_from_dict",
    "save_grid",
    "load_grid",
]
