"""Observability for the simulator pipeline (zero dependencies).

Three pillars, one handle:

* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms with labels, snapshot-to-dict and a Prometheus-style text
  exporter;
* :mod:`repro.obs.events` + :mod:`repro.obs.sink` — a closed taxonomy
  of typed structured events (``region_installed``, ``cache_evicted``,
  ...) written through pluggable sinks (JSONL file, in-memory ring
  buffer) with severity/category filtering;
* :mod:`repro.obs.profile` — a monotonic-clock span timer with nested
  scopes for per-phase wall time and step throughput.

On top of the pillars sit two aggregation layers:

* :mod:`repro.obs.telemetry` — cross-process shipping: workers bundle
  their registry/profile/event tail into a
  :class:`~repro.obs.telemetry.TelemetryReport` and the parent merges
  every report into one :class:`~repro.obs.telemetry.FleetTelemetry`;
* :mod:`repro.obs.signals` — a rolling-window per-step aggregator
  computing online phase signals (hit rate, region churn, eviction
  pressure) and emitting ``phase_shift`` events on sharp deltas.

:class:`~repro.obs.observer.Observer` bundles the three;
:data:`~repro.obs.observer.NULL_OBSERVER` is the shared disabled
instance every component defaults to.  The design contract is that the
disabled observer adds no measurable work to the simulator's hot loop —
see ``tests/test_obs_guard.py``.
"""

from repro.obs.events import (
    EVENT_KINDS,
    Event,
    event_from_dict,
    load_events,
    make_event,
    parse_events,
)
from repro.obs.inspect import InspectSummary, format_summary, summarize_events
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profile import SpanTimer
from repro.obs.signals import SignalConfig, SignalTracker, SignalWindow
from repro.obs.sink import (
    CollectingSink,
    EventSink,
    JsonlSink,
    RingBufferSink,
    TeeSink,
)
from repro.obs.telemetry import (
    FleetTelemetry,
    TelemetryReport,
    WorkerTelemetry,
    activate_worker_telemetry,
    deactivate_worker_telemetry,
    load_telemetry,
    worker_observer,
)

__all__ = [
    "EVENT_KINDS",
    "Event",
    "event_from_dict",
    "load_events",
    "make_event",
    "parse_events",
    "InspectSummary",
    "format_summary",
    "summarize_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "SpanTimer",
    "CollectingSink",
    "EventSink",
    "JsonlSink",
    "RingBufferSink",
    "TeeSink",
    "SignalConfig",
    "SignalTracker",
    "SignalWindow",
    "FleetTelemetry",
    "TelemetryReport",
    "WorkerTelemetry",
    "activate_worker_telemetry",
    "deactivate_worker_telemetry",
    "load_telemetry",
    "worker_observer",
]


def full_observer(
    sink: "EventSink" = None,
    ring_capacity: int = None,
    profile: bool = False,
) -> "Observer":
    """Convenience constructor used by the CLI and tests.

    With no arguments, enables metrics plus a default 64 Ki-event ring
    buffer.  Pass ``sink`` for an explicit destination (e.g. a
    :class:`JsonlSink`), ``ring_capacity`` for a sized ring buffer, or
    ``profile=True`` to attach a :class:`SpanTimer`.
    """
    if sink is None:
        sink = RingBufferSink(ring_capacity if ring_capacity else 65536)
    return Observer(
        metrics=MetricsRegistry(),
        sink=sink,
        profiler=SpanTimer() if profile else None,
    )
