"""Typed structured events: the qualitative pillar of :mod:`repro.obs`.

An :class:`Event` is one decision or state change inside the simulated
system, stamped with the simulation step at which it happened.  The
taxonomy is closed: every kind is declared in :data:`EVENT_KINDS` with
its category (used for sink filtering) and default severity, so an
event log is self-describing and ``repro inspect`` can summarize one
without knowing which selector produced it.

Beyond the simulation step, every event carries two ordering stamps:

* ``ts`` — a wall-clock timestamp, clamped to be non-decreasing within
  the emitting process;
* ``seq`` — a per-process emission sequence number.

Together they give merged multi-process logs a total order: ``(ts,
seq)`` orders events from one process exactly, and ``ts`` interleaves
processes (job-engine workers ship their event tails back to the
parent, which merges them — see :mod:`repro.obs.telemetry`).  The
simulation step alone cannot do this: job lifecycle events all happen
at step 0, and two workers' step clocks are unrelated.

Events serialize to JSON objects with a flat schema::

    {"step": 812, "kind": "region_installed", "category": "region",
     "severity": "info", "ts": 1754556093.41, "seq": 812,
     "selector": "lei", "entry": "main.L3", ...}

``kind``/``step``/``category``/``severity``/``ts``/``seq`` are
reserved keys; all other keys are event-specific payload fields.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, Iterator, NamedTuple, TextIO, Tuple, Union

from repro.errors import ObservabilityError

#: Severity levels, in increasing order of importance.
SEVERITIES: Tuple[str, ...] = ("debug", "info", "warn", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


class EventKind(NamedTuple):
    """Declaration of one event type in the taxonomy."""

    category: str
    severity: str
    doc: str


#: The closed event taxonomy: kind name -> (category, severity, doc).
EVENT_KINDS: Dict[str, EventKind] = {
    # -- run lifecycle --------------------------------------------------
    "run_started": EventKind("run", "info", "A simulation began."),
    "run_finished": EventKind("run", "info", "A simulation completed."),
    "run_failed": EventKind(
        "run", "error",
        "A simulation aborted with an error; payload carries the "
        "(benchmark, selector, step) context and the message."),
    # -- region selection ----------------------------------------------
    "region_installed": EventKind(
        "region", "info",
        "A selector installed a region into the code cache."),
    "region_rejected": EventKind(
        "region", "debug",
        "A candidate region was abandoned (reason field says why)."),
    "trace_truncated": EventKind(
        "region", "debug",
        "A trace recording/formation hit a size limit and was cut."),
    "combine_attempted": EventKind(
        "region", "debug",
        "Trace combination ran over a target's observed traces."),
    "history_cleared": EventKind(
        "history", "debug",
        "LEI truncated its branch history buffer after a selection."),
    # -- windowed phase signals (repro.obs.signals) ----------------------
    "phase_shift": EventKind(
        "signal", "info",
        "A windowed signal moved sharply window-over-window (hit rate, "
        "churn or eviction pressure) — the program likely changed phase."),
    # -- cache management ------------------------------------------------
    "cache_entered": EventKind(
        "cache", "debug",
        "Execution entered the code cache from the interpreter."),
    "cache_exit": EventKind(
        "cache", "debug",
        "Execution left the code cache back to the interpreter."),
    "cache_evicted": EventKind(
        "cache", "info",
        "A bounded cache evicted one resident region."),
    "cache_flushed": EventKind(
        "cache", "info",
        "A bounded cache preemptively flushed every resident region."),
    # -- job engine (experiment scheduling; step is always 0, so the
    # -- ts/seq stamps carry the ordering and the wall time) -------------
    "job_submitted": EventKind(
        "job", "debug",
        "A job was handed to the engine for execution."),
    "job_completed": EventKind(
        "job", "debug",
        "A job finished; payload carries attempt count and elapsed time."),
    "job_retried": EventKind(
        "job", "warn",
        "A job attempt crashed, timed out or errored and was rescheduled "
        "with backoff (reason field says which)."),
    "job_failed": EventKind(
        "job", "error",
        "A job exhausted its retry budget and the run aborted."),
    "job_restored": EventKind(
        "job", "debug",
        "A job was satisfied from a checkpoint journal without running."),
    # -- result store ----------------------------------------------------
    "store_hit": EventKind(
        "store", "debug",
        "A result was served from the content-addressed store."),
    "store_put": EventKind(
        "store", "debug",
        "A freshly computed result was persisted into the store."),
    "store_corrupt": EventKind(
        "store", "warn",
        "An unreadable store entry was quarantined so it is never "
        "re-parsed; the cell recomputes as a normal miss."),
    "store_gc": EventKind(
        "store", "info",
        "A store GC pass evicted least-recently-accessed entries to "
        "get back under the byte budget."),
    # -- simulation service (repro.serve; step is always 0) --------------
    "serve_started": EventKind(
        "serve", "info",
        "The grid server began accepting requests."),
    "serve_stopped": EventKind(
        "serve", "info",
        "The grid server shut down."),
    "serve_request": EventKind(
        "serve", "debug",
        "An HTTP request reached the grid server."),
    "serve_response": EventKind(
        "serve", "debug",
        "An HTTP response left the grid server; payload carries the "
        "status, resolution source and latency."),
    "serve_coalesced": EventKind(
        "serve", "debug",
        "A request was deduplicated onto an identical in-flight job "
        "(single-flight)."),
    # -- batched fleet execution (repro.batch; step is always 0, batch
    # -- granularity — per-step events are a serial-pipeline concern) ----
    "fleet_started": EventKind(
        "fleet", "info",
        "A batched fleet run began; payload carries the lane count and "
        "the array backend."),
    "fleet_lane_finished": EventKind(
        "fleet", "debug",
        "One fleet lane retired (halted or exhausted its step budget); "
        "payload carries the lane's cell and step count."),
    "fleet_lane_failed": EventKind(
        "fleet", "warn",
        "One fleet lane's cell failed under on_error='continue'; the "
        "slot was refilled and the fleet streamed on.  Payload carries "
        "the cell and the contained error."),
    "fleet_refill": EventKind(
        "fleet", "debug",
        "A streaming fleet admitted a queued cell into a freed lane "
        "slot; payload carries the cell, the slot, and the queue "
        "progress counters (settled / queued / active)."),
    "fleet_finished": EventKind(
        "fleet", "info",
        "A batched fleet run completed; payload carries rounds, "
        "aggregate steps and wall time."),
}

_RESERVED = ("kind", "step", "category", "severity", "ts", "seq")

# Per-process emission stamps.  ``_seq`` counts every event built in
# this process; ``_last_ts`` clamps the wall clock so ``ts`` never goes
# backwards within a process even if the system clock does.
_seq = 0
_last_ts = 0.0


def _stamp() -> Tuple[float, int]:
    """Next (non-decreasing wall-clock ts, per-process seq) pair."""
    global _seq, _last_ts
    now = time.time()
    if now < _last_ts:
        now = _last_ts
    _last_ts = now
    _seq += 1
    return now, _seq


class Event(NamedTuple):
    """One structured event (immutable once emitted)."""

    kind: str
    step: int
    category: str
    severity: str
    fields: Tuple[Tuple[str, object], ...]
    #: Wall-clock timestamp, non-decreasing within the emitting process.
    ts: float = 0.0
    #: Per-process emission sequence number (1-based; 0 = unstamped).
    seq: int = 0

    @property
    def payload(self) -> Dict[str, object]:
        return dict(self.fields)

    @property
    def order_key(self) -> Tuple[float, int]:
        """Sort key giving merged multi-process logs a total order."""
        return (self.ts, self.seq)

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "step": self.step,
            "kind": self.kind,
            "category": self.category,
            "severity": self.severity,
            "ts": self.ts,
            "seq": self.seq,
        }
        data.update(self.fields)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False, default=str)


def make_event(kind: str, step: int, **fields: object) -> Event:
    """Build an :class:`Event`, validating it against the taxonomy."""
    try:
        decl = EVENT_KINDS[kind]
    except KeyError:
        raise ObservabilityError(
            f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}"
        ) from None
    for reserved in _RESERVED:
        if reserved in fields:
            raise ObservabilityError(
                f"event field {reserved!r} is reserved (kind {kind!r})"
            )
    ts, seq = _stamp()
    return Event(kind, step, decl.category, decl.severity,
                 tuple(fields.items()), ts, seq)


def event_from_dict(data: Dict[str, object]) -> Event:
    """Rebuild an :class:`Event` from a parsed JSON object.

    Unknown kinds are accepted (logs must outlive taxonomy changes);
    the recorded category/severity win over the current declaration.
    Logs written before the ordering stamps existed load with
    ``ts=0.0`` / ``seq=0``.
    """
    try:
        kind = str(data["kind"])
        step = int(data["step"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError):
        raise ObservabilityError(f"malformed event object: {data!r}") from None
    decl = EVENT_KINDS.get(kind)
    category = str(data.get("category", decl.category if decl else "unknown"))
    severity = str(data.get("severity", decl.severity if decl else "info"))
    try:
        ts = float(data.get("ts", 0.0))  # type: ignore[arg-type]
        seq = int(data.get("seq", 0))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        ts, seq = 0.0, 0
    fields = tuple(
        (key, value) for key, value in data.items() if key not in _RESERVED
    )
    return Event(kind, step, category, severity, fields, ts, seq)


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (unknown severities rank as info)."""
    return _SEVERITY_RANK.get(severity, _SEVERITY_RANK["info"])


def parse_events(lines: Union[Iterable[str], TextIO]) -> Iterator[Event]:
    """Parse a JSONL event stream, skipping blank lines.

    Raises :class:`~repro.errors.ObservabilityError` on malformed JSON
    so callers can report the offending line number.
    """
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"event log line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ObservabilityError(
                f"event log line {lineno} is not a JSON object"
            )
        yield event_from_dict(data)


def load_events(path: str) -> Iterator[Event]:
    """Stream events from a JSONL file written by :class:`JsonlSink`."""
    with open(path, "r", encoding="utf-8") as handle:
        for event in parse_events(handle):
            yield event
