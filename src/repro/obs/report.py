"""Render a merged telemetry document (``repro obs report``).

Takes the JSON written by :meth:`~repro.obs.telemetry.FleetTelemetry.write`
(``run_grid(telemetry_out=...)``) and turns it into one readable report:
fleet header, merged counter totals, top span phases by wall time, the
event-kind breakdown with the phase-shift timeline, the job-engine
lifecycle summary (via :mod:`repro.obs.inspect` over the merged log),
and — when a bench analysis is supplied — the regression verdicts from
:mod:`repro.bench.regress`.  Terminal text by default, Markdown with
``markdown=True``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.events import event_from_dict
from repro.obs.inspect import format_summary, summarize_events


def _top_spans(profile: Dict[str, object],
               limit: int = 8) -> List[Dict[str, object]]:
    """Phases sorted by accumulated seconds, with wall-time shares."""
    wall = float(profile.get("wall_seconds", 0.0))
    phases = profile.get("phases", {})
    rows = []
    if not isinstance(phases, dict):
        return rows
    for name, record in phases.items():
        seconds = float(record.get("seconds", 0.0))
        rows.append({
            "phase": name,
            "seconds": seconds,
            "entries": int(record.get("entries", 0)),
            "share": seconds / wall if wall > 0 else 0.0,
        })
    rows.sort(key=lambda row: (-row["seconds"], row["phase"]))
    return rows[:limit]


def format_telemetry_report(
    doc: Dict[str, object],
    analysis: Optional[Dict[str, object]] = None,
    markdown: bool = False,
) -> str:
    """Render one merged telemetry document (plus optional bench verdicts)."""
    lines: List[str] = []
    h = (lambda text: f"## {text}") if markdown else (lambda text: f"{text}:")
    bullet = "- " if markdown else "  "

    jobs = doc.get("jobs", [])
    workers = doc.get("workers", [])
    profile = doc.get("profile", {})
    if markdown:
        lines.append("# Fleet telemetry report")
        lines.append("")
    lines.append(
        f"{len(jobs)} job(s) across {len(workers)} worker(s), "
        f"{int(profile.get('steps', 0)):,} steps in "
        f"{float(profile.get('wall_seconds', 0.0)):.3f}s of worker time"
    )
    dropped = int(doc.get("events_dropped", 0))
    if dropped:
        lines.append(
            f"WARNING: {dropped} worker event(s) dropped by ring buffers "
            f"(raise telemetry_ring to keep full tails)"
        )

    totals = doc.get("metric_totals", {})
    if totals:
        lines.append("")
        lines.append(h("merged counter totals"))
        if markdown:
            lines.append("")
        for name in sorted(totals):
            lines.append(f"{bullet}{name:<28s} {totals[name]:,.0f}")

    spans = _top_spans(profile)
    if spans:
        lines.append("")
        lines.append(h("top spans (self time)"))
        if markdown:
            lines.append("")
        for row in spans:
            lines.append(
                f"{bullet}{row['phase']:<18s} {row['seconds']:9.3f}s  "
                f"{100 * row['share']:5.1f}%  x{row['entries']}"
            )

    events = doc.get("events", [])
    if events:
        parsed = [event_from_dict(data) for data in events]
        summary = summarize_events(parsed)
        lines.append("")
        lines.append(h("merged event log"))
        if markdown:
            lines.append("")
            lines.append("```")
        lines.append(format_summary(summary))
        if markdown:
            lines.append("```")

    if analysis is not None:
        from repro.bench.regress import format_analysis

        lines.append("")
        lines.append(format_analysis(analysis, markdown=markdown))
    return "\n".join(lines)
