"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The registry is the quantitative pillar of :mod:`repro.obs`.  Metrics
are created once (``registry.counter("regions_installed_total", ...)``)
and updated with plain method calls; every metric supports a declared
set of label names so one instrument can slice by e.g. rejection
reason.  Two export paths exist:

* :meth:`MetricsRegistry.snapshot` — a plain nested dict, attached to
  :class:`repro.system.results.RunResult` so analysis code can
  reconcile instrumentation against the simulator's own aggregates;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  histogram buckets), written by ``python -m repro run --metrics-out``.

Everything here is zero-dependency and deliberately boring: dicts keyed
by label-value tuples, no background threads, no global state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

LabelValues = Tuple[str, ...]

#: Separator used to flatten a label-value tuple into one snapshot key.
#: Snapshots are the cross-process interchange format
#: (:meth:`MetricsRegistry.merge` splits the keys back), so label
#: values must not contain this character; ``_key`` enforces it.
SNAPSHOT_LABEL_SEP = "|"


def _escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text exposition format.

    The format requires ``\\`` -> ``\\\\``, ``"`` -> ``\\"`` and a raw
    newline -> the two characters ``\\n`` inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )

#: Default histogram buckets (upper bounds) for small-count size
#: distributions such as blocks-per-region.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class _Metric:
    """Shared label plumbing for all three instrument types."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        if len(labels) != len(self.labelnames) or any(
            name not in labels for name in self.labelnames
        ):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        values = tuple(str(labels[name]) for name in self.labelnames)
        for value in values:
            if SNAPSHOT_LABEL_SEP in value:
                raise ObservabilityError(
                    f"metric {self.name!r} label value {value!r} contains "
                    f"the snapshot separator {SNAPSHOT_LABEL_SEP!r}"
                )
        return values

    def _render_labels(self, values: LabelValues) -> str:
        if not self.labelnames:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, values)
        )
        return "{" + pairs + "}"


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    metric_type = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.metric_type,
            "help": self.help,
            "labels": list(self.labelnames),
            "values": {
                SNAPSHOT_LABEL_SEP.join(key) if key else "": value
                for key, value in sorted(self._values.items())
            },
        }

    def render(self, prefix: str) -> List[str]:
        full = prefix + self.name
        lines = [f"# HELP {full} {self.help}"] if self.help else []
        lines.append(f"# TYPE {full} counter")
        if not self._values and not self.labelnames:
            lines.append(f"{full} 0")
        for key, value in sorted(self._values.items()):
            lines.append(f"{full}{self._render_labels(key)} {_fmt(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down (e.g. resident cache bytes)."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.metric_type,
            "help": self.help,
            "labels": list(self.labelnames),
            "values": {
                SNAPSHOT_LABEL_SEP.join(key) if key else "": value
                for key, value in sorted(self._values.items())
            },
        }

    def render(self, prefix: str) -> List[str]:
        full = prefix + self.name
        lines = [f"# HELP {full} {self.help}"] if self.help else []
        lines.append(f"# TYPE {full} gauge")
        if not self._values and not self.labelnames:
            lines.append(f"{full} 0")
        for key, value in sorted(self._values.items()):
            lines.append(f"{full}{self._render_labels(key)} {_fmt(value)}")
        return lines


class Histogram(_Metric):
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, mirroring Prometheus's cumulative
    ``le`` semantics at export time.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                f"histogram {name!r} needs sorted, non-empty buckets"
            )
        self.buckets: Tuple[float, ...] = tuple(buckets)
        # Per label-set: bucket counts (len(buckets) + 1 for +Inf), sum, count.
        self._series: Dict[LabelValues, List[float]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._counts: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0
            self._counts[key] = 0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series[i] += 1
                break
        else:
            series[-1] += 1
        self._sums[key] += value
        self._counts[key] += 1

    def count(self, **labels: object) -> int:
        return self._counts.get(self._key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0)

    def bucket_counts(self, **labels: object) -> Tuple[int, ...]:
        """Non-cumulative per-bucket counts (last entry is the overflow)."""
        key = self._key(labels)
        return tuple(self._series.get(key, [0] * (len(self.buckets) + 1)))

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.metric_type,
            "help": self.help,
            "labels": list(self.labelnames),
            "buckets": list(self.buckets),
            "values": {
                SNAPSHOT_LABEL_SEP.join(key) if key else "": {
                    "counts": list(self._series[key]),
                    "sum": self._sums[key],
                    "count": self._counts[key],
                }
                for key in sorted(self._series)
            },
        }

    def render(self, prefix: str) -> List[str]:
        full = prefix + self.name
        lines = [f"# HELP {full} {self.help}"] if self.help else []
        lines.append(f"# TYPE {full} histogram")
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            for bound, bucket in zip(self.buckets, series):
                cumulative += bucket
                lines.append(
                    f"{full}_bucket{self._bucket_labels(key, _fmt(bound))} "
                    f"{cumulative}"
                )
            cumulative += series[-1]
            lines.append(
                f"{full}_bucket{self._bucket_labels(key, '+Inf')} {cumulative}"
            )
            lines.append(
                f"{full}_sum{self._render_labels(key)} {_fmt(self._sums[key])}"
            )
            lines.append(
                f"{full}_count{self._render_labels(key)} {self._counts[key]}"
            )
        return lines

    def merge_raw(self, counts: Sequence[float], total_sum: float,
                  total_count: int, **labels: object) -> None:
        """Fold pre-bucketed series data (a snapshot record) into this
        histogram.  ``counts`` must match this histogram's buckets
        (plus the overflow slot)."""
        if len(counts) != len(self.buckets) + 1:
            raise ObservabilityError(
                f"histogram {self.name!r} has {len(self.buckets)} buckets "
                f"but the merged series carries {len(counts)} counts"
            )
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0
            self._counts[key] = 0
        for i, value in enumerate(counts):
            series[i] += value
        self._sums[key] += total_sum
        self._counts[key] += total_count

    def _bucket_labels(self, values: LabelValues, le: str) -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, values)
        ]
        pairs.append(f'le="{le}"')
        return "{" + ",".join(pairs) + "}"


def _fmt(value: float) -> str:
    """Render a number the way Prometheus expects (ints without .0)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Create-or-get store for all instruments of one run."""

    def __init__(self, prefix: str = "repro_") -> None:
        self.prefix = prefix
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type} with labels "
                    f"{list(existing.labelnames)}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict dump of every metric (stable key order)."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def merge(
        self,
        snapshot: Dict[str, Dict[str, object]],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is the cross-process aggregation primitive: each job-engine
        worker ships ``registry.snapshot()`` back over the result pipe
        and the parent merges every snapshot into one fleet registry.
        ``labels`` (e.g. ``{"job_id": ..., "worker": ...}``) are appended
        to every merged series so per-worker slices stay recoverable.

        Merging is additive: counters and histogram series accumulate,
        and gauges accumulate too (each worker's series is expected to be
        distinguished by ``labels``, so summing is only observable when
        two snapshots collide on the exact same series).
        """
        extra = dict(labels or {})
        for extra_value in extra.values():
            if SNAPSHOT_LABEL_SEP in str(extra_value):
                raise ObservabilityError(
                    f"merge label value {extra_value!r} contains the "
                    f"snapshot separator {SNAPSHOT_LABEL_SEP!r}"
                )
        for name in sorted(snapshot):
            data = snapshot[name]
            mtype = data.get("type")
            help_text = str(data.get("help", ""))
            base_names = tuple(str(n) for n in data.get("labels", ()))
            for extra_name in extra:
                if extra_name in base_names:
                    raise ObservabilityError(
                        f"merge label {extra_name!r} collides with a label "
                        f"of metric {name!r}"
                    )
            labelnames = base_names + tuple(extra)
            values = data.get("values", {})
            if not isinstance(values, dict):
                raise ObservabilityError(
                    f"malformed snapshot for metric {name!r}: values is "
                    f"{type(values).__name__}, expected dict"
                )
            if mtype == "counter":
                counter = self.counter(name, help_text, labelnames)
                for key, value in values.items():
                    series = self._split_series_key(name, key, base_names)
                    series.update(extra)
                    counter.inc(value, **series)
            elif mtype == "gauge":
                gauge = self.gauge(name, help_text, labelnames)
                for key, value in values.items():
                    series = self._split_series_key(name, key, base_names)
                    series.update(extra)
                    gauge.inc(value, **series)
            elif mtype == "histogram":
                buckets = list(data.get("buckets", ()))
                hist = self.histogram(name, help_text, labelnames, buckets)
                if list(hist.buckets) != buckets:
                    raise ObservabilityError(
                        f"histogram {name!r} bucket mismatch on merge: "
                        f"{list(hist.buckets)} vs {buckets}"
                    )
                for key, record in values.items():
                    series = self._split_series_key(name, key, base_names)
                    series.update(extra)
                    hist.merge_raw(
                        record["counts"], record["sum"], record["count"],
                        **series,
                    )
            else:
                raise ObservabilityError(
                    f"cannot merge metric {name!r} of unknown type {mtype!r}"
                )

    @staticmethod
    def _split_series_key(
        name: str, key: str, labelnames: Tuple[str, ...]
    ) -> Dict[str, str]:
        """Rebuild a label dict from one flattened snapshot value key."""
        parts = key.split(SNAPSHOT_LABEL_SEP) if labelnames else []
        if len(parts) != len(labelnames):
            raise ObservabilityError(
                f"snapshot key {key!r} of metric {name!r} does not match "
                f"labels {list(labelnames)}"
            )
        return dict(zip(labelnames, parts))

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, one block per metric."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render(self.prefix))
        return "\n".join(lines) + ("\n" if lines else "")
