"""Windowed phase signals: online run dynamics from the per-step hook.

The end-of-run aggregates in :class:`~repro.system.results.RunStats`
answer "how did the run go"; a dynamic optimizer needs "how is the run
going *right now*".  :class:`SignalTracker` is a
:class:`~repro.system.simulator.StepHook` that slices the run into
fixed-size step windows and computes, per window, the online signals
the paper's selectors live or die on:

* **hit rate** — fraction of the window's instructions executed inside
  the code cache;
* **region churn** — regions newly selected during the window;
* **eviction pressure** — evictions plus full flushes during the window;
* **interpret/cache-walk ratio** — interpreted steps per cached step.

Between consecutive windows the tracker compares signals and emits a
``phase_shift`` event through its observer when a delta crosses the
configured thresholds — the exact stream a future meta-selector
consumes to react to program phase changes (the phase-dip benchmarks,
e.g. ``perlbmk``, produce textbook examples: the hit rate collapses
when the new phase's working set misses the cache, then recovers as
regions for it are selected).

The tracker only *reads* the simulator's aggregates (``RunStats`` and
the cache's cumulative counters) at window boundaries; it keeps no
per-step state of its own and never mutates simulation state, so
enabling it cannot change any simulation outcome (the obs guard suite
holds this for the whole observability layer).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.errors import ObservabilityError
from repro.obs.observer import NULL_OBSERVER, Observer

#: Default window width, in steps.  Matches the timeline-sampling
#: granularity used by the phase-dip figures.
DEFAULT_WINDOW_STEPS = 5000


class SignalConfig(NamedTuple):
    """Window width and phase-shift thresholds for a :class:`SignalTracker`.

    A ``phase_shift`` fires when, window over window, the hit rate
    moves by at least ``hit_rate_delta`` (absolute, in [0, 1]), the
    per-window churn moves by at least ``churn_delta`` regions, or the
    per-window eviction pressure moves by at least ``eviction_delta``
    evictions.  Set a threshold to ``None`` to disable that trigger.
    """

    window: int = DEFAULT_WINDOW_STEPS
    hit_rate_delta: Optional[float] = 0.10
    churn_delta: Optional[int] = 8
    eviction_delta: Optional[int] = 8


class SignalWindow(NamedTuple):
    """One window's signals (all deltas are within-window, not cumulative)."""

    start_step: int
    end_step: int
    hit_rate: float
    churn: int
    evictions: int
    interp_ratio: float

    def to_dict(self) -> dict:
        return {
            "start_step": self.start_step,
            "end_step": self.end_step,
            "hit_rate": self.hit_rate,
            "churn": self.churn,
            "evictions": self.evictions,
            "interp_ratio": self.interp_ratio,
        }


class SignalTracker:
    """Rolling-window signal aggregator, driven as a simulator step hook."""

    def __init__(
        self,
        config: SignalConfig,
        stats,
        cache,
        observer: Optional[Observer] = None,
    ) -> None:
        if config.window < 1:
            raise ObservabilityError(
                f"signal window must be >= 1 step, got {config.window}"
            )
        self.config = config
        self.stats = stats
        self.cache = cache
        self.observer = observer if observer is not None else NULL_OBSERVER
        #: Closed windows, oldest first.
        self.windows: List[SignalWindow] = []
        #: ``phase_shift`` emissions as (step, signal, delta) triples,
        #: kept locally as well so signals work without an event sink.
        self.shifts: List[tuple] = []
        self._window_start = 0
        # Cumulative counters at the last window boundary.
        self._interp_steps = 0
        self._cache_steps = 0
        self._interp_instructions = 0
        self._cache_instructions = 0
        self._regions = 0
        self._evictions = 0

    # -- StepHook protocol -------------------------------------------------
    def on_step(self, step_index: int) -> None:
        if step_index - self._window_start >= self.config.window:
            self._close_window(step_index)

    def on_finish(self, step_index: int) -> None:
        # Close the trailing partial window so short runs and run tails
        # still produce a signal (a zero-width tail would be vacuous).
        if step_index > self._window_start:
            self._close_window(step_index)

    # -- internals ---------------------------------------------------------
    def _cumulative_evictions(self) -> int:
        cache = self.cache
        return int(getattr(cache, "evictions", 0)) + int(
            getattr(cache, "flushes", 0)
        )

    def _close_window(self, step_index: int) -> None:
        stats = self.stats
        interp_steps = stats.interp_steps - self._interp_steps
        cache_steps = stats.cache_steps - self._cache_steps
        interp_instructions = (
            stats.interp_instructions - self._interp_instructions
        )
        cache_instructions = (
            stats.cache_instructions - self._cache_instructions
        )
        regions = len(self.cache.regions)
        evictions = self._cumulative_evictions()

        total_instructions = interp_instructions + cache_instructions
        hit_rate = (
            cache_instructions / total_instructions
            if total_instructions else 0.0
        )
        window = SignalWindow(
            start_step=self._window_start,
            end_step=step_index,
            hit_rate=hit_rate,
            churn=regions - self._regions,
            evictions=evictions - self._evictions,
            interp_ratio=(
                interp_steps / cache_steps if cache_steps
                else float(interp_steps)
            ),
        )
        previous = self.windows[-1] if self.windows else None
        self.windows.append(window)

        self._window_start = step_index
        self._interp_steps = stats.interp_steps
        self._cache_steps = stats.cache_steps
        self._interp_instructions = stats.interp_instructions
        self._cache_instructions = stats.cache_instructions
        self._regions = regions
        self._evictions = evictions

        if previous is not None:
            self._detect_shift(step_index, previous, window)

    def _detect_shift(
        self, step_index: int, previous: SignalWindow, current: SignalWindow
    ) -> None:
        config = self.config
        triggers = []
        if config.hit_rate_delta is not None:
            delta = current.hit_rate - previous.hit_rate
            if abs(delta) >= config.hit_rate_delta:
                triggers.append(
                    ("hit_rate", previous.hit_rate, current.hit_rate, delta)
                )
        if config.churn_delta is not None:
            delta = current.churn - previous.churn
            if abs(delta) >= config.churn_delta:
                triggers.append(
                    ("churn", previous.churn, current.churn, delta)
                )
        if config.eviction_delta is not None:
            delta = current.evictions - previous.evictions
            if abs(delta) >= config.eviction_delta:
                triggers.append(
                    ("evictions", previous.evictions, current.evictions,
                     delta)
                )
        for signal, before, after, delta in triggers:
            self.shifts.append((step_index, signal, delta))
            self.observer.event(
                "phase_shift",
                step_index,
                signal=signal,
                previous=round(before, 6) if isinstance(before, float)
                else before,
                current=round(after, 6) if isinstance(after, float)
                else after,
                delta=round(delta, 6) if isinstance(delta, float) else delta,
                window=self.config.window,
            )

    def timeline(self) -> List[dict]:
        """The window signals as plain dicts (report/JSON friendly)."""
        return [window.to_dict() for window in self.windows]
