"""Cross-process telemetry: ship worker observability back to the parent.

Everything recorded inside a job-engine worker process — metrics,
span-profile totals, the event tail — used to die with the worker:
the result pipe carried only the job's return value.  This module
closes that gap with three pieces:

* :class:`TelemetryReport` — the serializable bundle one worker ships
  back over the existing result pipe: a metrics-registry snapshot, a
  span-profile snapshot and the ring-buffered tail of its events (plus
  how many the ring dropped).  Plain dicts and lists only, so it
  pickles/JSONs without ceremony.
* the **worker-side activation protocol** —
  :func:`activate_worker_telemetry` installs a process-local
  :class:`WorkerTelemetry` bundle; job payload callables fetch its
  observer with :func:`worker_observer` (falling back to
  :data:`~repro.obs.observer.NULL_OBSERVER` when telemetry is off, so
  workers need no flag threading); :func:`deactivate_worker_telemetry`
  returns the finished report.  The job engine drives this around each
  attempt in both its serial and parallel paths, which is what makes
  the merged totals bit-identical between the two.
* :class:`FleetTelemetry` — the parent-side aggregator.  Each worker
  report merges into one registry under ``job_id``/``worker`` labels
  (:meth:`~repro.obs.metrics.MetricsRegistry.merge`), profile phases
  accumulate, and worker events are tagged and interleaved with the
  parent's own lifecycle events by their ``(ts, seq)`` order stamps —
  one coherent registry, profile and event log for a whole ``run_grid``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.events import Event, event_from_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profile import SpanTimer
from repro.obs.sink import CollectingSink, EventSink, RingBufferSink, TeeSink

#: Default event-tail capacity of a worker's ring buffer.  Big enough
#: for every job-lifecycle and region/cache "info" event a grid cell
#: emits; per-step "debug" chatter may overflow, which is exactly what
#: the ring's ``dropped`` counter reports.
DEFAULT_RING_CAPACITY = 512


@dataclass
class TelemetryReport:
    """What one worker ships back: metrics + profile + event tail."""

    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    profile: Dict[str, object] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)
    events_dropped: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "metrics": self.metrics,
            "profile": self.profile,
            "events": self.events,
            "events_dropped": self.events_dropped,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TelemetryReport":
        if not isinstance(data, dict):
            raise ObservabilityError(
                f"telemetry report must be a dict, got {type(data).__name__}"
            )
        return cls(
            metrics=dict(data.get("metrics", {})),
            profile=dict(data.get("profile", {})),
            events=list(data.get("events", [])),
            events_dropped=int(data.get("events_dropped", 0)),
        )


class WorkerTelemetry:
    """The per-process recording bundle behind :func:`worker_observer`."""

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.metrics = MetricsRegistry()
        self.ring = RingBufferSink(ring_capacity)
        self.profiler = SpanTimer()
        self.observer = Observer(
            metrics=self.metrics, sink=self.ring, profiler=self.profiler
        )

    def report(self) -> TelemetryReport:
        return TelemetryReport(
            metrics=self.metrics.snapshot(),
            profile=self.profiler.snapshot(),
            events=[event.to_dict() for event in self.ring.events],
            events_dropped=self.ring.dropped,
        )


# The process-local active bundle.  One slot, not a stack: a worker
# process runs one job attempt at a time, and the serial engine path
# activates/deactivates around each attempt in the parent.
_active: Optional[WorkerTelemetry] = None


def activate_worker_telemetry(
    ring_capacity: int = DEFAULT_RING_CAPACITY,
) -> WorkerTelemetry:
    """Install a fresh recording bundle for this process's current job."""
    global _active
    _active = WorkerTelemetry(ring_capacity)
    return _active


def worker_observer() -> Observer:
    """The active worker observer, or the null observer when telemetry
    is off — job payload callables call this unconditionally."""
    return _active.observer if _active is not None else NULL_OBSERVER


def deactivate_worker_telemetry() -> Optional[TelemetryReport]:
    """Tear down the active bundle and return its finished report."""
    global _active
    if _active is None:
        return None
    report = _active.report()
    _active = None
    return report


def _tag_event(event: Event, job_id: str, worker: str) -> Event:
    """Append job/worker provenance fields (without clobbering)."""
    present = {name for name, _ in event.fields}
    extra: Tuple[Tuple[str, object], ...] = ()
    if "job_id" not in present:
        extra += (("job_id", job_id),)
    if "worker" not in present:
        extra += (("worker", worker),)
    if not extra:
        return event
    return event._replace(fields=event.fields + extra)


class FleetTelemetry:
    """Parent-side aggregator: one coherent view of a multi-process run.

    The job engine calls :meth:`absorb` with each worker's report; the
    parent's own lifecycle events are captured by teeing the engine
    observer through :meth:`attach_parent`.  Afterwards:

    * :attr:`metrics` is one registry holding every worker series under
      appended ``job_id``/``worker`` labels;
    * :meth:`merged_events` interleaves worker and parent events by
      their ``(ts, seq)`` order stamps;
    * :meth:`metric_totals` collapses the counters back to fleet-wide
      sums (in deterministic sorted-series order, so a parallel run's
      totals are bit-identical to the serial run's).
    """

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY) -> None:
        #: Event-tail ring capacity each worker is activated with.
        self.ring_capacity = ring_capacity
        self.metrics = MetricsRegistry()
        #: Per-(job_id, worker) raw reports, in absorption order.
        self.reports: Dict[Tuple[str, str], TelemetryReport] = {}
        #: Accumulated span-profile phases: name -> {seconds, entries}.
        self.profile_phases: Dict[str, Dict[str, float]] = {}
        self.wall_seconds = 0.0
        self.steps = 0
        #: Worker events evicted from ring buffers before shipping.
        self.events_dropped = 0
        self._worker_events: List[Event] = []
        self._parent_sink = CollectingSink()

    # -- ingestion --------------------------------------------------------
    def absorb(self, report, job_id: str, worker: str) -> None:
        """Merge one worker's report under ``job_id``/``worker`` labels."""
        if isinstance(report, dict):
            report = TelemetryReport.from_dict(report)
        job_id = str(job_id)
        worker = str(worker)
        self.metrics.merge(
            report.metrics, {"job_id": job_id, "worker": worker}
        )
        phases = report.profile.get("phases", {})
        if isinstance(phases, dict):
            for name, record in phases.items():
                slot = self.profile_phases.setdefault(
                    name, {"seconds": 0.0, "entries": 0}
                )
                slot["seconds"] += float(record.get("seconds", 0.0))
                slot["entries"] += int(record.get("entries", 0))
        self.wall_seconds += float(report.profile.get("wall_seconds", 0.0))
        self.steps += int(report.profile.get("steps", 0))
        self.events_dropped += report.events_dropped
        for data in report.events:
            event = event_from_dict(data)
            self._worker_events.append(_tag_event(event, job_id, worker))
        self.reports[(job_id, worker)] = report

    def attach_parent(self, observer: Optional[Observer] = None) -> Observer:
        """An observer whose events also land in this aggregator.

        With no ``observer``, the parent (engine) records straight into
        the fleet's own sink and registry.  With one, its pillars keep
        working and events are teed into the fleet as well.
        """
        if observer is None or not observer.enabled:
            parent = Observer(metrics=self.metrics, sink=self._parent_sink)
            if observer is not None:
                parent.common.update(observer.common)
            return parent
        sinks: List[EventSink] = [self._parent_sink]
        if observer.sink is not None:
            sinks.append(observer.sink)
        teed = Observer(
            metrics=observer.metrics,
            sink=TeeSink(sinks),
            profiler=observer.profiler,
        )
        teed.common.update(observer.common)
        return teed

    # -- views ------------------------------------------------------------
    @property
    def parent_events(self) -> List[Event]:
        """The parent process's own captured events (emission order)."""
        return list(self._parent_sink.events)

    def merged_events(self) -> List[Event]:
        """Worker + parent events in one totally ordered log."""
        return sorted(
            self._worker_events + self._parent_sink.events,
            key=lambda event: event.order_key,
        )

    def metric_totals(self) -> Dict[str, float]:
        """Fleet-wide counter sums, by metric name.

        Series are summed in sorted snapshot-key order — not merge
        order — so totals are reproducible no matter which worker
        finished first.
        """
        totals: Dict[str, float] = {}
        for name in self.metrics.names():
            snap = self.metrics.get(name).snapshot()
            if snap["type"] != "counter":
                continue
            values = snap["values"]
            totals[name] = sum(values[key] for key in sorted(values))
        return totals

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """One JSON-able document: the merged telemetry report."""
        return {
            "telemetry_version": 1,
            "workers": sorted({worker for _, worker in self.reports}),
            "jobs": sorted({job_id for job_id, _ in self.reports}),
            "metrics": self.metrics.snapshot(),
            "profile": {
                "phases": {
                    name: dict(self.profile_phases[name])
                    for name in sorted(self.profile_phases)
                },
                "wall_seconds": self.wall_seconds,
                "steps": self.steps,
            },
            "events": [event.to_dict() for event in self.merged_events()],
            "events_dropped": self.events_dropped,
            "metric_totals": self.metric_totals(),
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")


def load_telemetry(path: str) -> Dict[str, object]:
    """Read a merged telemetry document written by :meth:`FleetTelemetry.write`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ObservabilityError(
            f"telemetry file {path!r} does not hold a JSON object"
        )
    return data
