"""The observer: one handle bundling the three observability pillars.

Every instrumented component (simulator, cache, selectors) holds an
:class:`Observer`.  The default is :data:`NULL_OBSERVER`, whose three
pillars are all ``None``; instrumentation sites are written so that a
disabled pillar costs one attribute read on a slow path and *zero*
work on hot paths — the simulator hoists ``observer.events_enabled``
and ``observer.profiler`` into locals before its loop and branches on
them, so a run without observability executes the same per-step
instructions as the uninstrumented simulator did.

Conventions for emission sites::

    obs = self.obs
    if obs.events_enabled:
        obs.emit("region_rejected", step=..., reason="empty_recording")

``emit`` itself re-checks nothing: callers gate on ``events_enabled``
(or call :meth:`Observer.event`, the self-guarding convenience for
cold paths).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import Event, make_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_SPAN, SpanTimer
from repro.obs.sink import EventSink


class Observer:
    """Bundle of metrics registry, event sink and span timer."""

    __slots__ = ("metrics", "sink", "profiler", "common")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        sink: Optional[EventSink] = None,
        profiler: Optional[SpanTimer] = None,
    ) -> None:
        self.metrics = metrics
        self.sink = sink
        self.profiler = profiler
        #: Fields merged into every emitted event (the simulator sets
        #: ``benchmark`` and ``selector`` here at run start, so every
        #: component's events identify their run without threading the
        #: names through each call site).
        self.common: dict = {}

    # -- state ------------------------------------------------------------
    @property
    def events_enabled(self) -> bool:
        return self.sink is not None

    @property
    def metrics_enabled(self) -> bool:
        return self.metrics is not None

    @property
    def profiling_enabled(self) -> bool:
        return self.profiler is not None

    @property
    def enabled(self) -> bool:
        """True when any pillar is active."""
        return (
            self.sink is not None
            or self.metrics is not None
            or self.profiler is not None
        )

    def __bool__(self) -> bool:
        return self.enabled

    # -- events -----------------------------------------------------------
    def emit(self, kind: str, step: int, **fields: object) -> Event:
        """Build and write an event.  Caller must gate on
        ``events_enabled``; emitting through a disabled observer is a
        programming error surfaced as an ``AttributeError``."""
        if self.common:
            merged = dict(self.common)
            merged.update(fields)
            fields = merged
        event = make_event(kind, step, **fields)
        self.sink.write(event)  # type: ignore[union-attr]
        return event

    def event(self, kind: str, step: int, **fields: object) -> Optional[Event]:
        """Self-guarding emit for cold paths (no-op when disabled)."""
        if self.sink is None:
            return None
        return self.emit(kind, step, **fields)

    # -- metrics ----------------------------------------------------------
    def count(self, name: str, amount: float = 1, **labels: object) -> None:
        """Bump a counter if metrics are enabled (cold paths only).

        The counter is created on first use with the (sorted) label
        names supplied — call sites for one name must use one label set.
        """
        if self.metrics is None:
            return
        self.metrics.counter(name, labelnames=sorted(labels)).inc(
            amount, **labels
        )

    # -- profiling --------------------------------------------------------
    def span(self, name: str):
        """Context manager timing ``name`` (shared no-op when disabled)."""
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.span(name)

    def close(self) -> None:
        """Close the sink (flush files); metrics/profiler need no close."""
        if self.sink is not None:
            self.sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pillars = [
            name
            for name, active in (
                ("metrics", self.metrics is not None),
                ("events", self.sink is not None),
                ("profile", self.profiler is not None),
            )
            if active
        ]
        return f"<Observer {'+'.join(pillars) if pillars else 'disabled'}>"


#: The shared disabled observer: every pillar off, safe to use anywhere.
NULL_OBSERVER = Observer()
