"""Profiling hooks: a monotonic-clock span timer with nested scopes.

The simulator's hot loop spends its time in a handful of phases —
``interpret`` (feeding the selector), ``cache_walk`` (matching the
stream against the current region), ``selector_decide`` (the per-branch
selection decision) and ``region_build`` (forming + installing a
region).  :class:`SpanTimer` attributes wall time to those phases with
*self-time* semantics: entering a nested span pauses its parent, so the
per-phase totals sum to (almost exactly) the measured wall time and a
phase can never be double-counted.

Two usage styles:

* explicit :meth:`~SpanTimer.enter` / :meth:`~SpanTimer.exit` /
  :meth:`~SpanTimer.switch` calls for the simulator's hot loop, where a
  context manager per step would dominate the cost being measured;
* the :meth:`~SpanTimer.span` context manager for coarse scopes
  (selectors timing ``region_build``).

The timer is opt-in: when profiling is disabled the simulator holds no
timer at all and executes zero profiling instructions per step.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.errors import ObservabilityError


class _Span:
    """Context-manager adapter over enter/exit (rare scopes only)."""

    __slots__ = ("_timer", "_name")

    def __init__(self, timer: "SpanTimer", name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> "SpanTimer":
        self._timer.enter(self._name)
        return self._timer

    def __exit__(self, *exc_info) -> None:
        self._timer.exit()


class _NullSpan:
    """Shared no-op context manager for disabled profiling."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class SpanTimer:
    """Accumulates self-time per named scope on a monotonic clock."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        #: Self-time per scope name, seconds.
        self.totals: Dict[str, float] = {}
        #: Times each scope was entered.
        self.counts: Dict[str, int] = {}
        # The span stack, as parallel lists (names / resume timestamps)
        # rather than a list of tuples: enter/exit/switch run once per
        # selector decision on the simulator's hot path, and mutating a
        # float slot in place beats re-allocating a tuple every call.
        # The top scope is running; scopes below are paused with their
        # elapsed time already banked.
        self._names: List[str] = []
        self._resumed: List[float] = []
        #: Steps attributed to the run (for throughput); set by the caller.
        self.steps = 0
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # -- scope control ---------------------------------------------------
    def enter(self, name: str) -> None:
        now = self._clock()
        if self._started_at is None:
            self._started_at = now
        names = self._names
        resumed = self._resumed
        if names:
            parent = names[-1]
            totals = self.totals
            prior = totals.get(parent)
            elapsed = now - resumed[-1]
            totals[parent] = elapsed if prior is None else prior + elapsed
            resumed[-1] = now
        names.append(name)
        resumed.append(now)
        counts = self.counts
        seen = counts.get(name)
        counts[name] = 1 if seen is None else seen + 1

    def exit(self) -> None:
        names = self._names
        if not names:
            raise ObservabilityError("SpanTimer.exit() with no open span")
        now = self._clock()
        name = names.pop()
        resumed = self._resumed
        elapsed = now - resumed.pop()
        totals = self.totals
        prior = totals.get(name)
        totals[name] = elapsed if prior is None else prior + elapsed
        if names:
            resumed[-1] = now
        else:
            self._stopped_at = now

    def switch(self, name: str) -> None:
        """Close the current span and open ``name`` at the same depth.

        Equivalent to ``exit(); enter(name)`` with a single clock read;
        this is the per-phase transition the simulator uses when
        execution moves between interpreting and walking the cache.
        """
        now = self._clock()
        names = self._names
        if names:
            current = names[-1]
            names[-1] = name
            resumed = self._resumed
            totals = self.totals
            prior = totals.get(current)
            elapsed = now - resumed[-1]
            totals[current] = elapsed if prior is None else prior + elapsed
            resumed[-1] = now
        else:
            if self._started_at is None:
                self._started_at = now
            names.append(name)
            self._resumed.append(now)
        counts = self.counts
        seen = counts.get(name)
        counts[name] = 1 if seen is None else seen + 1

    def stop(self) -> None:
        """Close every open span (end of run / abnormal exit)."""
        while self._names:
            self.exit()

    def span(self, name: str) -> _Span:
        """Context manager form, for scopes entered rarely."""
        return _Span(self, name)

    # -- reporting -------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._names)

    @property
    def total_seconds(self) -> float:
        """Wall time between the first enter and the last exit."""
        if self._started_at is None:
            return 0.0
        end = self._stopped_at
        if self._names or end is None:
            end = self._clock()
        return end - self._started_at

    def throughput(self) -> float:
        """Steps per second over the measured wall time (0 if unknown)."""
        wall = self.total_seconds
        if wall <= 0 or self.steps == 0:
            return 0.0
        return self.steps / wall

    def snapshot(self) -> Dict[str, object]:
        return {
            "phases": {
                name: {
                    "seconds": self.totals[name],
                    "entries": self.counts.get(name, 0),
                }
                for name in sorted(self.totals)
            },
            "wall_seconds": self.total_seconds,
            "steps": self.steps,
            "steps_per_second": self.throughput(),
        }

    def format_table(self) -> str:
        """Human-readable per-phase timing table (for stderr)."""
        wall = self.total_seconds
        lines = ["phase             seconds      %    entries"]
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            seconds = self.totals[name]
            share = (100.0 * seconds / wall) if wall > 0 else 0.0
            lines.append(
                f"{name:<16s} {seconds:9.4f} {share:6.1f} "
                f"{self.counts.get(name, 0):10d}"
            )
        lines.append(f"{'wall':<16s} {wall:9.4f} {100.0 if wall else 0.0:6.1f}")
        if self.steps:
            lines.append(
                f"steps: {self.steps}  throughput: {self.throughput():,.0f} "
                f"steps/s"
            )
        return "\n".join(lines)
