"""Summarize an event log without re-running the simulation.

``python -m repro inspect events.jsonl`` feeds a recorded JSONL stream
through :func:`summarize_events` and prints :func:`format_summary`.
The summary answers the questions the paper's evaluation keeps asking
of a run — which targets kept getting rejected, how much eviction
churn a bounded cache suffered, how each selector's decisions split —
straight from the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import Event


@dataclass
class InspectSummary:
    """Aggregates computed from one event stream."""

    total_events: int = 0
    first_step: Optional[int] = None
    last_step: Optional[int] = None
    #: kind -> count.
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: category -> count.
    by_category: Dict[str, int] = field(default_factory=dict)
    #: selector -> {decision kind -> count} over region-category events.
    decisions_by_selector: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: entry label -> times a candidate region at that entry was rejected.
    rejected_entries: Dict[str, int] = field(default_factory=dict)
    #: rejection reason -> count.
    rejection_reasons: Dict[str, int] = field(default_factory=dict)
    #: entry label -> times a region at that entry was evicted.
    evicted_entries: Dict[str, int] = field(default_factory=dict)
    evictions: int = 0
    flushes: int = 0
    evicted_bytes: int = 0
    installed: int = 0
    cache_exits: int = 0
    truncations: int = 0
    history_clears: int = 0
    #: The terminal run_failed event, if the run aborted.
    failure: Optional[Event] = None

    def top_rejected(self, limit: int = 10) -> List[Tuple[str, int]]:
        return sorted(
            self.rejected_entries.items(), key=lambda item: (-item[1], item[0])
        )[:limit]

    def top_evicted(self, limit: int = 10) -> List[Tuple[str, int]]:
        return sorted(
            self.evicted_entries.items(), key=lambda item: (-item[1], item[0])
        )[:limit]


def summarize_events(events: Iterable[Event]) -> InspectSummary:
    """One pass over an event stream -> :class:`InspectSummary`."""
    summary = InspectSummary()
    for event in events:
        summary.total_events += 1
        if summary.first_step is None:
            summary.first_step = event.step
        summary.last_step = event.step
        summary.by_kind[event.kind] = summary.by_kind.get(event.kind, 0) + 1
        summary.by_category[event.category] = (
            summary.by_category.get(event.category, 0) + 1
        )
        kind = event.kind
        if event.category in ("region", "history"):
            selector = str(event.get("selector", "?"))
            decisions = summary.decisions_by_selector.setdefault(selector, {})
            decisions[kind] = decisions.get(kind, 0) + 1
        if kind == "region_installed":
            summary.installed += 1
        elif kind == "region_rejected":
            entry = str(event.get("entry", "?"))
            summary.rejected_entries[entry] = (
                summary.rejected_entries.get(entry, 0) + 1
            )
            reason = str(event.get("reason", "?"))
            summary.rejection_reasons[reason] = (
                summary.rejection_reasons.get(reason, 0) + 1
            )
        elif kind == "trace_truncated":
            summary.truncations += 1
        elif kind == "history_cleared":
            summary.history_clears += 1
        elif kind == "cache_exit":
            summary.cache_exits += 1
        elif kind == "cache_evicted":
            summary.evictions += 1
            entry = str(event.get("entry", "?"))
            summary.evicted_entries[entry] = (
                summary.evicted_entries.get(entry, 0) + 1
            )
            bytes_freed = event.get("bytes", 0)
            if isinstance(bytes_freed, (int, float)):
                summary.evicted_bytes += int(bytes_freed)
        elif kind == "cache_flushed":
            summary.flushes += 1
        elif kind == "run_failed":
            summary.failure = event
    return summary


def format_summary(summary: InspectSummary) -> str:
    """Render an :class:`InspectSummary` as the ``inspect`` CLI output."""
    lines: List[str] = []
    span = ""
    if summary.first_step is not None:
        span = f" (steps {summary.first_step}..{summary.last_step})"
    lines.append(f"{summary.total_events} events{span}")

    lines.append("")
    lines.append("events by kind:")
    for kind, count in sorted(
        summary.by_kind.items(), key=lambda item: (-item[1], item[0])
    ):
        lines.append(f"  {kind:<20s} {count}")

    if summary.decisions_by_selector:
        lines.append("")
        lines.append("selection decisions by selector:")
        for selector in sorted(summary.decisions_by_selector):
            decisions = summary.decisions_by_selector[selector]
            parts = " ".join(
                f"{kind}={count}" for kind, count in sorted(decisions.items())
            )
            lines.append(f"  {selector:<14s} {parts}")

    if summary.rejected_entries:
        lines.append("")
        lines.append("top rejected region entries:")
        for entry, count in summary.top_rejected():
            lines.append(f"  {entry:<30s} x{count}")
        reasons = " ".join(
            f"{reason}={count}"
            for reason, count in sorted(summary.rejection_reasons.items())
        )
        lines.append(f"  reasons: {reasons}")

    if summary.evictions or summary.flushes:
        lines.append("")
        lines.append(
            f"eviction churn: {summary.evictions} evictions, "
            f"{summary.flushes} flushes, {summary.evicted_bytes} bytes freed"
        )
        for entry, count in summary.top_evicted(5):
            lines.append(f"  {entry:<30s} evicted x{count}")

    if summary.failure is not None:
        lines.append("")
        payload = summary.failure.payload
        context = " ".join(f"{k}={v}" for k, v in sorted(payload.items()))
        lines.append(f"RUN FAILED at step {summary.failure.step}: {context}")
    return "\n".join(lines)
