"""Summarize an event log without re-running the simulation.

``python -m repro inspect events.jsonl`` feeds a recorded JSONL stream
through :func:`summarize_events` and prints :func:`format_summary`.
The summary answers the questions the paper's evaluation keeps asking
of a run — which targets kept getting rejected, how much eviction
churn a bounded cache suffered, how each selector's decisions split —
straight from the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import Event


@dataclass
class InspectSummary:
    """Aggregates computed from one event stream."""

    total_events: int = 0
    first_step: Optional[int] = None
    last_step: Optional[int] = None
    #: kind -> count.
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: category -> count.
    by_category: Dict[str, int] = field(default_factory=dict)
    #: selector -> {decision kind -> count} over region-category events.
    decisions_by_selector: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: entry label -> times a candidate region at that entry was rejected.
    rejected_entries: Dict[str, int] = field(default_factory=dict)
    #: rejection reason -> count.
    rejection_reasons: Dict[str, int] = field(default_factory=dict)
    #: entry label -> times a region at that entry was evicted.
    evicted_entries: Dict[str, int] = field(default_factory=dict)
    evictions: int = 0
    flushes: int = 0
    evicted_bytes: int = 0
    installed: int = 0
    cache_exits: int = 0
    truncations: int = 0
    history_clears: int = 0
    #: Job-engine lifecycle counts (category "job").
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_retried: int = 0
    jobs_failed: int = 0
    jobs_restored: int = 0
    #: job_id -> wall seconds, from the submitted->completed timestamp
    #: delta (falls back to the completed event's ``elapsed`` payload
    #: for logs written before events carried timestamps).
    job_wall_seconds: Dict[str, float] = field(default_factory=dict)
    #: job_id -> retry reasons observed.
    job_retry_reasons: Dict[str, List[str]] = field(default_factory=dict)
    #: Windowed phase-shift signals: (step, signal, delta) triples.
    phase_shifts: List[Tuple[int, str, object]] = field(default_factory=list)
    #: The terminal run_failed event, if the run aborted.
    failure: Optional[Event] = None
    #: job_id -> submission timestamp (internal, for wall-time deltas).
    _job_submitted_ts: Dict[str, float] = field(default_factory=dict)

    @property
    def total_job_events(self) -> int:
        return (self.jobs_submitted + self.jobs_completed
                + self.jobs_retried + self.jobs_failed + self.jobs_restored)

    def top_rejected(self, limit: int = 10) -> List[Tuple[str, int]]:
        return sorted(
            self.rejected_entries.items(), key=lambda item: (-item[1], item[0])
        )[:limit]

    def top_evicted(self, limit: int = 10) -> List[Tuple[str, int]]:
        return sorted(
            self.evicted_entries.items(), key=lambda item: (-item[1], item[0])
        )[:limit]


def summarize_events(events: Iterable[Event]) -> InspectSummary:
    """One pass over an event stream -> :class:`InspectSummary`."""
    summary = InspectSummary()
    for event in events:
        summary.total_events += 1
        if summary.first_step is None:
            summary.first_step = event.step
        summary.last_step = event.step
        summary.by_kind[event.kind] = summary.by_kind.get(event.kind, 0) + 1
        summary.by_category[event.category] = (
            summary.by_category.get(event.category, 0) + 1
        )
        kind = event.kind
        if event.category in ("region", "history"):
            selector = str(event.get("selector", "?"))
            decisions = summary.decisions_by_selector.setdefault(selector, {})
            decisions[kind] = decisions.get(kind, 0) + 1
        if kind == "region_installed":
            summary.installed += 1
        elif kind == "region_rejected":
            entry = str(event.get("entry", "?"))
            summary.rejected_entries[entry] = (
                summary.rejected_entries.get(entry, 0) + 1
            )
            reason = str(event.get("reason", "?"))
            summary.rejection_reasons[reason] = (
                summary.rejection_reasons.get(reason, 0) + 1
            )
        elif kind == "trace_truncated":
            summary.truncations += 1
        elif kind == "history_cleared":
            summary.history_clears += 1
        elif kind == "cache_exit":
            summary.cache_exits += 1
        elif kind == "cache_evicted":
            summary.evictions += 1
            entry = str(event.get("entry", "?"))
            summary.evicted_entries[entry] = (
                summary.evicted_entries.get(entry, 0) + 1
            )
            bytes_freed = event.get("bytes", 0)
            if isinstance(bytes_freed, (int, float)):
                summary.evicted_bytes += int(bytes_freed)
        elif kind == "cache_flushed":
            summary.flushes += 1
        elif kind == "phase_shift":
            summary.phase_shifts.append(
                (event.step, str(event.get("signal", "?")),
                 event.get("delta"))
            )
        elif kind == "job_submitted":
            summary.jobs_submitted += 1
            job_id = str(event.get("job_id", "?"))
            if event.ts > 0:
                summary._job_submitted_ts[job_id] = event.ts
        elif kind == "job_completed":
            summary.jobs_completed += 1
            job_id = str(event.get("job_id", "?"))
            submitted = summary._job_submitted_ts.get(job_id)
            if submitted is not None and event.ts >= submitted:
                summary.job_wall_seconds[job_id] = event.ts - submitted
            else:
                elapsed = event.get("elapsed")
                if isinstance(elapsed, (int, float)):
                    summary.job_wall_seconds[job_id] = float(elapsed)
        elif kind == "job_retried":
            summary.jobs_retried += 1
            job_id = str(event.get("job_id", "?"))
            summary.job_retry_reasons.setdefault(job_id, []).append(
                str(event.get("reason", "?"))
            )
        elif kind == "job_failed":
            summary.jobs_failed += 1
        elif kind == "job_restored":
            summary.jobs_restored += 1
        elif kind == "run_failed":
            summary.failure = event
    return summary


def format_summary(summary: InspectSummary) -> str:
    """Render an :class:`InspectSummary` as the ``inspect`` CLI output."""
    lines: List[str] = []
    span = ""
    if summary.first_step is not None:
        span = f" (steps {summary.first_step}..{summary.last_step})"
    lines.append(f"{summary.total_events} events{span}")

    lines.append("")
    lines.append("events by kind:")
    for kind, count in sorted(
        summary.by_kind.items(), key=lambda item: (-item[1], item[0])
    ):
        lines.append(f"  {kind:<20s} {count}")

    if summary.decisions_by_selector:
        lines.append("")
        lines.append("selection decisions by selector:")
        for selector in sorted(summary.decisions_by_selector):
            decisions = summary.decisions_by_selector[selector]
            parts = " ".join(
                f"{kind}={count}" for kind, count in sorted(decisions.items())
            )
            lines.append(f"  {selector:<14s} {parts}")

    if summary.rejected_entries:
        lines.append("")
        lines.append("top rejected region entries:")
        for entry, count in summary.top_rejected():
            lines.append(f"  {entry:<30s} x{count}")
        reasons = " ".join(
            f"{reason}={count}"
            for reason, count in sorted(summary.rejection_reasons.items())
        )
        lines.append(f"  reasons: {reasons}")

    if summary.evictions or summary.flushes:
        lines.append("")
        lines.append(
            f"eviction churn: {summary.evictions} evictions, "
            f"{summary.flushes} flushes, {summary.evicted_bytes} bytes freed"
        )
        for entry, count in summary.top_evicted(5):
            lines.append(f"  {entry:<30s} evicted x{count}")

    if summary.total_job_events:
        lines.append("")
        lines.append(
            f"job engine: {summary.jobs_submitted} submitted, "
            f"{summary.jobs_completed} completed, "
            f"{summary.jobs_retried} retried, "
            f"{summary.jobs_failed} failed, "
            f"{summary.jobs_restored} restored from checkpoint"
        )
        if summary.job_wall_seconds:
            slowest = sorted(
                summary.job_wall_seconds.items(),
                key=lambda item: (-item[1], item[0]),
            )[:10]
            for job_id, seconds in slowest:
                retries = summary.job_retry_reasons.get(job_id, [])
                suffix = ""
                if retries:
                    suffix = f"  (retried: {', '.join(retries)})"
                lines.append(f"  {job_id:<30s} {seconds:8.3f}s{suffix}")

    if summary.phase_shifts:
        lines.append("")
        lines.append(f"phase shifts: {len(summary.phase_shifts)}")
        for step, signal, delta in summary.phase_shifts[:20]:
            lines.append(f"  step {step:<10d} {signal:<12s} delta={delta}")

    if summary.failure is not None:
        lines.append("")
        payload = summary.failure.payload
        context = " ".join(f"{k}={v}" for k, v in sorted(payload.items()))
        lines.append(f"RUN FAILED at step {summary.failure.step}: {context}")
    return "\n".join(lines)
