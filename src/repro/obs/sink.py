"""Event sinks: where emitted events go.

A sink is anything with ``write(event)`` and ``close()``.  The base
class adds severity/category filtering so the hot loop can emit
liberally while a sink keeps only what its consumer wants; filtering
happens in :meth:`EventSink.accepts`, which the observer checks
*before* building the event payload would get expensive.

Provided sinks:

* :class:`JsonlSink` — one JSON object per line to a file or file-like;
  the interchange format consumed by ``python -m repro inspect``.
* :class:`RingBufferSink` — keeps the last N events in memory (flight
  recorder); overflow drops the oldest and counts what was dropped.
* :class:`CollectingSink` — unbounded in-memory list, for tests and
  programmatic use.
* :class:`TeeSink` — fan out one emission to several sinks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, IO, Iterable, List, Optional, Sequence, Union

from repro.errors import ObservabilityError
from repro.obs.events import Event, severity_rank


class EventSink:
    """Base sink: severity/category filter plus the write interface."""

    def __init__(
        self,
        min_severity: str = "debug",
        categories: Optional[Sequence[str]] = None,
    ) -> None:
        self._min_rank = severity_rank(min_severity)
        self._categories = frozenset(categories) if categories is not None else None
        #: Events accepted (post-filter) over the sink's lifetime.
        self.accepted = 0
        #: Events rejected by the filter.
        self.filtered = 0

    def accepts(self, event: Event) -> bool:
        if severity_rank(event.severity) < self._min_rank:
            return False
        if self._categories is not None and event.category not in self._categories:
            return False
        return True

    def write(self, event: Event) -> None:
        if not self.accepts(event):
            self.filtered += 1
            return
        self.accepted += 1
        self._write(event)

    def _write(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further writes are a caller bug."""


class CollectingSink(EventSink):
    """Keep every accepted event in a list (tests, programmatic use)."""

    def __init__(self, **filter_kwargs) -> None:
        super().__init__(**filter_kwargs)
        self.events: List[Event] = []

    def _write(self, event: Event) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]


class RingBufferSink(EventSink):
    """Flight recorder: the last ``capacity`` accepted events.

    When full, the oldest event is silently evicted and counted in
    ``dropped`` — the hot loop never blocks and memory stays bounded.
    """

    def __init__(self, capacity: int, **filter_kwargs) -> None:
        super().__init__(**filter_kwargs)
        if capacity < 1:
            raise ObservabilityError(
                f"ring buffer capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        #: Accepted events evicted because the ring was full.
        self.dropped = 0

    def _write(self, event: Event) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    @property
    def events(self) -> List[Event]:
        """Buffered events, oldest first."""
        return list(self._ring)

    def by_kind(self, kind: str) -> List[Event]:
        return [event for event in self._ring if event.kind == kind]

    def __len__(self) -> int:
        return len(self._ring)


#: Default number of accepted events between explicit flushes of a
#: :class:`JsonlSink` (see its docstring for why this exists at all).
DEFAULT_FLUSH_EVERY = 256


class JsonlSink(EventSink):
    """Write events as JSON Lines to a path or an open text stream.

    The sink flushes the underlying stream every ``flush_every``
    accepted events.  Without that, nothing flushes between
    ``__init__`` and ``close()`` — a worker killed mid-run (the very
    situation an event log exists to debug) would lose every event
    still sitting in the stream's buffer, up to several thousand lines.
    ``flush_every=1`` gives a write-through log for crash forensics at
    the cost of one flush per event.
    """

    def __init__(
        self,
        destination: Union[str, IO[str]],
        flush_every: int = DEFAULT_FLUSH_EVERY,
        **filter_kwargs,
    ) -> None:
        super().__init__(**filter_kwargs)
        if flush_every < 1:
            raise ObservabilityError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self._flush_every = flush_every
        #: Accepted events written since the last explicit flush.
        self._unflushed = 0

    def _write(self, event: Event) -> None:
        handle = self._handle
        handle.write(event.to_json())
        handle.write("\n")
        self._unflushed += 1
        if self._unflushed >= self._flush_every:
            handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
        else:
            try:
                self._handle.flush()
            except ValueError:  # pragma: no cover - already-closed stream
                pass


class TeeSink(EventSink):
    """Forward each accepted event to every child sink.

    The tee's own filter runs first; children may filter further.
    """

    def __init__(self, sinks: Iterable[EventSink], **filter_kwargs) -> None:
        super().__init__(**filter_kwargs)
        self.sinks: List[EventSink] = list(sinks)

    def _write(self, event: Event) -> None:
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        # Close every child even if one raises: a failing child must not
        # leave its siblings unflushed (the tee owns all of them).  The
        # first error is re-raised once the loop has finished.
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.close()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
