"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — available benchmarks and selectors;
* ``run`` — simulate one (benchmark, selector) pair and print metrics;
* ``regions`` — dump the selected-region inventory of a run;
* ``dot`` — export a benchmark's CFG as Graphviz DOT;
* ``collect`` — record a benchmark's execution to a binary trace file;
* ``replay`` — run a selector over a previously collected trace;
* ``inspect`` — summarize a JSONL event log without re-running;
* ``bench`` — run the pinned perf workloads, compare against the
  committed baseline and write ``BENCH_run.json`` (see
  ``docs/experiments.md``); ``bench --analyze`` re-reads that file
  through the regression sentinel (:mod:`repro.bench.regress`) without
  re-running anything;
* ``obs report`` — render the merged fleet-telemetry JSON written by
  ``run_grid(telemetry_out=...)`` (see ``docs/observability.md``);
* ``fleet`` — run a (benchmark x selector x seed) grid as one batched
  fleet through the vectorized kernel (see ``docs/batching.md``);
* ``serve`` — the simulation service: an asyncio HTTP server resolving
  grid-cell requests through the store / single-flight coalescing /
  the job engine (see ``docs/service.md``); ``serve --smoke`` boots a
  throwaway server, checks the cold/warm contract and exits.

``run`` and ``replay`` accept the observability flags
``--trace-events PATH`` (structured JSONL event log),
``--metrics-out PATH`` (Prometheus text metrics) and ``--profile``
(per-phase timing table on stderr); see :mod:`repro.obs`.

The figure-regeneration harness lives one level down:
``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.execution.engine import ExecutionEngine
from repro.metrics.summary import MetricReport
from repro.program.dot import program_to_dot
from repro.selection.registry import SELECTOR_FACTORIES
from repro.system.simulator import Simulator, simulate
from repro.tracing.collector import (
    collect_trace,
    replay_trace,
    replay_trace_into,
    trace_header,
)
from repro.workloads import benchmark_names, build_benchmark


def _add_common(parser: argparse.ArgumentParser, selector: bool = True) -> None:
    parser.add_argument("benchmark", choices=benchmark_names(),
                        help="synthetic SPECint2000 stand-in")
    if selector:
        parser.add_argument("selector", choices=sorted(SELECTOR_FACTORIES),
                            help="region-selection algorithm")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=1,
                        help="execution seed (default 1)")
    parser.add_argument("--cache-capacity", type=int, default=None,
                        metavar="BYTES",
                        help="bound the code cache (default unbounded)")
    parser.add_argument("--eviction", choices=("flush", "fifo"),
                        default="flush", help="bounded-cache policy")
    parser.add_argument("--reference", action="store_true",
                        help="use the reference (pull-generator) pipeline "
                             "instead of the fused fast path; results are "
                             "bit-identical (see docs/performance.md)")


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-events", metavar="PATH", default=None,
                        help="write a structured JSONL event log to PATH")
    parser.add_argument("--events-min-severity", default="debug",
                        choices=("debug", "info", "warn", "error"),
                        help="drop events below this severity (default debug)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write Prometheus-format metrics to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing table to stderr")


def _config_from(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(
        cache_capacity_bytes=getattr(args, "cache_capacity", None),
        cache_eviction_policy=getattr(args, "eviction", "flush"),
    )


def _observer_from(args: argparse.Namespace):
    """Build an Observer from the observability flags (None when off)."""
    trace_events = getattr(args, "trace_events", None)
    metrics_out = getattr(args, "metrics_out", None)
    profile = getattr(args, "profile", False)
    if not (trace_events or metrics_out or profile):
        return None
    from repro.obs import JsonlSink, MetricsRegistry, Observer, SpanTimer

    sink = None
    if trace_events:
        sink = JsonlSink(
            trace_events,
            min_severity=getattr(args, "events_min_severity", "debug"),
        )
    return Observer(
        metrics=MetricsRegistry() if metrics_out else None,
        sink=sink,
        profiler=SpanTimer() if profile else None,
    )


def _finish_observer(observer, args: argparse.Namespace) -> None:
    """Write metrics / profile output and close the event sink."""
    if observer is None:
        return
    observer.close()
    metrics_out = getattr(args, "metrics_out", None)
    if observer.metrics is not None and metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(observer.metrics.to_prometheus())
    trace_events = getattr(args, "trace_events", None)
    if trace_events:
        print(f"event log written to {trace_events}", file=sys.stderr)
    if observer.profiler is not None:
        print(observer.profiler.format_table(), file=sys.stderr)


def _print_report(report: MetricReport) -> None:
    rows = [
        ("hit rate", f"{100 * report.hit_rate:.2f}%"),
        ("regions selected", report.region_count),
        ("code expansion (insts)", report.code_expansion),
        ("exit stubs", report.exit_stubs),
        ("region transitions", report.region_transitions),
        ("90% cover set", report.cover_set_90),
        ("spanned cycle ratio", f"{report.spanned_cycle_ratio:.3f}"),
        ("executed cycle ratio", f"{report.executed_cycle_ratio:.3f}"),
        ("peak counters", report.peak_counters),
        ("exit-dominated regions", report.exit_dominated_regions),
        ("cache size estimate (B)", report.cache_size_estimate),
        ("instructions executed", report.total_instructions),
    ]
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"{name.ljust(width)}  {value}")


def cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks:", " ".join(benchmark_names()))
    print("selectors: ", " ".join(sorted(SELECTOR_FACTORIES)))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = build_benchmark(args.benchmark, scale=args.scale)
    observer = _observer_from(args)
    try:
        result = simulate(program, args.selector, _config_from(args),
                          seed=args.seed, observer=observer,
                          fast=not args.reference)
    finally:
        _finish_observer(observer, args)
    print(f"{args.benchmark} / {args.selector} (scale {args.scale}, "
          f"seed {args.seed})")
    _print_report(MetricReport.from_result(result))
    if result.cache_evictions:
        print(f"{'cache evictions'.ljust(23)}  {result.cache_evictions}")
        print(f"{'regenerated regions'.ljust(23)}  {result.regenerated_regions}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs import format_summary, load_events, summarize_events

    try:
        # load_events streams lazily, so the missing-file error only
        # surfaces once summarization starts consuming it.
        summary = summarize_events(load_events(args.events))
    except (FileNotFoundError, IsADirectoryError):
        print(f"error: no event log at {args.events!r} (write one with "
              f"`repro run ... --trace-events PATH`)", file=sys.stderr)
        return 2
    print(format_summary(summary))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.analyze:
        return _bench_analyze(args)
    from repro.bench import (
        compare_to_baseline,
        format_bench_table,
        load_baseline,
        regression_failures,
        run_bench,
        write_baseline,
        write_bench_run,
    )

    run = run_bench(quick=args.quick, repeats=args.repeats,
                    service=not args.no_service,
                    batched=not args.no_batched)
    deltas = None
    baseline = None if args.no_baseline else load_baseline(
        args.baseline, quick=args.quick)
    if baseline is not None:
        deltas = compare_to_baseline(run, baseline)
        run["baseline"] = deltas
    else:
        run["baseline"] = None
    print(format_bench_table(run, deltas))
    path = write_bench_run(run, args.out)
    print(f"\nbench run written to {path}", file=sys.stderr)
    if args.update_baseline:
        # The baseline is a plain run: drop the self-referential deltas.
        snapshot = {k: v for k, v in run.items() if k != "baseline"}
        baseline_path = write_baseline(snapshot, args.baseline,
                                       quick=args.quick)
        print(f"baseline updated at {baseline_path}", file=sys.stderr)
    if args.check:
        if deltas is None:
            print("error: --check needs a baseline, but none was found "
                  "(run `repro bench --update-baseline` to pin one)",
                  file=sys.stderr)
            return 2
        if deltas["skipped"]:
            missing = ", ".join(deltas["skipped"])
            print(f"error: baseline has no comparable entry for: {missing} "
                  f"(re-pin with `repro bench --update-baseline`)",
                  file=sys.stderr)
            return 2
        failures = regression_failures(deltas, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print("no throughput regression beyond tolerance", file=sys.stderr)
    return 0


def _bench_analyze(args: argparse.Namespace) -> int:
    """``bench --analyze``: sentinel pass over an already-recorded run.

    Reads the trajectory at ``--out`` (no workloads are re-run), scores
    the last run against the pinned baseline and the trailing window,
    and prints the verdict report.  Always exits 0 — the sentinel is
    advisory by design; the blunt gate is ``bench --check``.
    """
    from repro.bench import (
        analyze_run,
        format_analysis,
        load_baseline,
        load_trajectory,
    )
    from repro.errors import ConfigError

    try:
        trajectory = load_trajectory(args.out)
    except ConfigError as exc:
        print(f"error: {exc} (record one with `repro bench`)",
              file=sys.stderr)
        return 2
    run = trajectory[-1]
    baseline = None if args.no_baseline else load_baseline(
        args.baseline, quick=bool(run.get("quick")))
    analysis = analyze_run(run, baseline=baseline, trajectory=trajectory)
    print(format_analysis(analysis, markdown=args.markdown))
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.report import format_telemetry_report
    from repro.obs.telemetry import load_telemetry

    try:
        doc = load_telemetry(args.telemetry)
    except (FileNotFoundError, IsADirectoryError):
        print(f"error: no telemetry document at {args.telemetry!r} "
              f"(write one with run_grid(telemetry_out=...))",
              file=sys.stderr)
        return 2
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    analysis = None
    if args.bench is not None:
        from repro.bench import analyze_run, load_baseline, load_trajectory
        from repro.errors import ConfigError

        try:
            trajectory = load_trajectory(args.bench)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        run = trajectory[-1]
        baseline = load_baseline(None, quick=bool(run.get("quick")))
        analysis = analyze_run(run, baseline=baseline,
                               trajectory=trajectory)
    print(format_telemetry_report(doc, analysis=analysis,
                                  markdown=args.markdown))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the grid server (or its smoke check).

    Startup failures — port already bound, store root that is not a
    directory — exit 2 with a one-line ``error:`` message, matching the
    ``repro inspect`` / ``repro bench --check`` convention.
    """
    import asyncio

    from repro.errors import ServeError, StoreError
    from repro.obs import JsonlSink, MetricsRegistry, Observer
    from repro.serve import GridServer, SimulationService, run_smoke
    from repro.serve.service import DEFAULT_FLEET_MAX_LANES
    from repro.store import ResultStore

    # --store/--port default to None so smoke mode can tell "explicit"
    # from "unset": unset means a throwaway store and an ephemeral port.
    store_root = args.store if args.store is not None else ".repro-store"
    port = args.port if args.port is not None else 8765
    # --max-lanes 0 = unbounded (one fleet regardless of batch size);
    # unset = the service default.
    if args.max_lanes is None:
        fleet_max_lanes = DEFAULT_FLEET_MAX_LANES
    elif args.max_lanes == 0:
        fleet_max_lanes = None
    else:
        fleet_max_lanes = args.max_lanes

    if args.smoke:
        try:
            record = run_smoke(
                store_root=args.store,
                host=args.host,
                port=args.port if args.port is not None else 0,
                latency_out=args.latency_out,
            )
        except (ServeError, StoreError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"smoke ok: cold {record['cold_ms']:.1f} ms, warm p50 "
              f"{record['warm_p50_ms']:.2f} ms "
              f"({record['warm_speedup']}x), 1 job launched")
        if args.latency_out:
            print(f"latency report written to {args.latency_out}",
                  file=sys.stderr)
        return 0

    sink = None
    if args.trace_events:
        sink = JsonlSink(args.trace_events)
    observer = Observer(metrics=MetricsRegistry(), sink=sink)

    async def _serve() -> None:
        store = ResultStore(store_root, observer=observer,
                            shard_width=args.shard_width,
                            max_bytes=args.store_max_bytes)
        service = SimulationService(
            store,
            workers=args.workers,
            job_timeout=args.job_timeout,
            max_retries=args.max_retries,
            observer=observer,
            code_version=args.code_version,
            backend=args.backend,
            fleet_max_lanes=fleet_max_lanes,
        )
        server = GridServer(service, host=args.host, port=port,
                            observer=observer)
        await server.start()
        print(f"serving on http://{server.host}:{server.port} "
              f"(store: {store_root}, workers: {args.workers})",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        return 0
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    except (StoreError, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        observer.close()
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """``repro fleet``: run a (benchmark x selector x seed) grid batched.

    One lane per cell through the vectorized fleet kernel — the CLI
    face of :func:`repro.batch.run_fleet`.  Reports aggregate
    throughput plus a per-cell metric line; every cell's numbers are
    bit-identical to what ``repro run`` prints for it.
    """
    from repro.batch import BatchCell, run_fleet
    from repro.errors import ConfigError
    from repro.obs import CollectingSink, Observer

    benchmarks = (args.benchmarks.split(",") if args.benchmarks
                  else list(benchmark_names()))
    selectors = (args.selectors.split(",") if args.selectors
                 else ["net", "lei"])
    cells = [
        BatchCell(bench, selector, scale=args.scale, seed=seed)
        for bench in benchmarks
        for selector in selectors
        for seed in range(args.seed, args.seed + args.seeds)
    ]
    sink = CollectingSink(categories=("fleet",))
    observer = Observer(sink=sink)
    try:
        fleet = run_fleet(cells, config=_config_from(args),
                          backend=args.backend, max_lanes=args.max_lanes,
                          observer=observer)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{fleet.lanes} lanes ({fleet.backend} backend): "
          f"{fleet.steps:,} events in {fleet.wall_seconds:.2f}s "
          f"({fleet.events_per_second:,.0f} events/s, "
          f"{fleet.rounds} rounds)")
    if fleet.max_lanes < fleet.lanes:
        # Queue progress from the obs event stamps: the last admission
        # says how the stream ended; settled counts finish afterwards.
        refill_events = [e for e in sink.events if e.kind == "fleet_refill"]
        last = refill_events[-1].payload if refill_events else {}
        print(f"queue: {fleet.lanes} cells over {fleet.max_lanes} slots, "
              f"{fleet.refills} refills (last admission: "
              f"{last.get('settled', 0)} settled / "
              f"{last.get('queued', 0)} queued / "
              f"{last.get('active', 0)} active)")
    print(f"{'benchmark':<22s} {'selector':<14s} {'seed':>4s} "
          f"{'hit%':>7s} {'regions':>8s} {'transitions':>12s}")
    for cell in cells:
        report = fleet.reports[cell]
        print(f"{cell.benchmark:<22s} {cell.selector:<14s} "
              f"{cell.seed:>4d} {100 * report.hit_rate:>7.2f} "
              f"{report.region_count:>8d} "
              f"{report.region_transitions:>12d}")
    return 0


def cmd_regions(args: argparse.Namespace) -> int:
    program = build_benchmark(args.benchmark, scale=args.scale)
    result = simulate(program, args.selector, _config_from(args),
                      seed=args.seed, fast=not args.reference)
    print(f"{result.region_count} regions selected "
          f"({args.benchmark} / {args.selector}):")
    for region in result.regions:
        labels = " ".join(block.label for block in region.block_list)
        flags = []
        if region.spans_cycle:
            flags.append("cycle")
        if region.kind == "cfg":
            flags.append("multipath")
        flag_text = f" [{','.join(flags)}]" if flags else ""
        print(f"  #{region.selection_order:<4d} {region.entry.full_label:30s} "
              f"insts={region.instruction_count:<4d} "
              f"stubs={region.exit_stub_count:<3d} "
              f"executed={region.executed_instructions:<9d}{flag_text}")
        print(f"        {labels}")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    program = build_benchmark(args.benchmark, scale=args.scale)
    print(program_to_dot(program, title=args.benchmark))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_runs

    program = build_benchmark(args.benchmark, scale=args.scale)
    config = _config_from(args)
    subject = simulate(program, args.selector, config, seed=args.seed,
                       fast=not args.reference)
    baseline = simulate(program, args.baseline, config, seed=args.seed,
                        fast=not args.reference)
    for line in compare_runs(subject, baseline).summary_lines():
        print(line)
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import warmup_step, window_rates

    program = build_benchmark(args.benchmark, scale=args.scale)
    result = simulate(program, args.selector, _config_from(args),
                      seed=args.seed, sample_every=args.window,
                      fast=not args.reference)
    print(f"{args.benchmark} / {args.selector}: windowed hit rates "
          f"(window = {args.window} steps)")
    print(f"{'steps':>18s} {'hit%':>7s} {'insts':>9s} {'new regions':>12s} "
          f"{'transitions':>12s}")
    for rate in window_rates(result.samples):
        print(f"{rate.start_step:8d}-{rate.end_step:<9d} "
              f"{100 * rate.hit_rate:7.2f} {rate.instructions:9d} "
              f"{rate.regions_selected:12d} {rate.region_transitions:12d}")
    warm = warmup_step(result.samples)
    print(f"warm (>=90% for the rest of the run) from step: "
          f"{warm if warm is not None else 'never'}")
    return 0


def cmd_layout(args: argparse.Namespace) -> int:
    from repro.analysis.layout import layout_map, page_crossing_fraction

    program = build_benchmark(args.benchmark, scale=args.scale)
    result = simulate(program, args.selector, _config_from(args),
                      seed=args.seed, fast=not args.reference)
    print(layout_map(result))
    print(f"linked pairs crossing a 4 KiB page: "
          f"{100 * page_crossing_fraction(result):.1f}%")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    program = build_benchmark(args.benchmark, scale=args.scale)
    engine = ExecutionEngine(program, seed=args.seed)
    steps = collect_trace(engine, args.output)
    print(f"collected {steps} steps of {args.benchmark!r} into {args.output}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    header = trace_header(args.trace)
    program = build_benchmark(header.program_name, scale=args.scale)
    observer = _observer_from(args)
    simulator = Simulator(program, args.selector, _config_from(args),
                          observer=observer)
    try:
        if args.reference:
            result = simulator.run(replay_trace(args.trace, program))
        else:
            result = simulator.run_push(
                lambda consume: replay_trace_into(args.trace, program, consume)
            )
    finally:
        _finish_observer(observer, args)
    print(f"replayed {header.program_name!r} through {args.selector}")
    _print_report(MetricReport.from_result(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Region-selection reproduction toolkit (MICRO 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and selectors").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="simulate and print metrics")
    _add_common(run)
    _add_obs(run)
    run.set_defaults(func=cmd_run)

    inspect = sub.add_parser(
        "inspect", help="summarize a JSONL event log (no simulation)")
    inspect.add_argument("events",
                         help="event log written by `repro run --trace-events`")
    inspect.set_defaults(func=cmd_inspect)

    bench = sub.add_parser(
        "bench", help="run the pinned perf workloads and record the run")
    bench.add_argument("--quick", action="store_true",
                       help="reduced-scale smoke variant (CI)")
    bench.add_argument("--out", metavar="PATH", default="BENCH_run.json",
                       help="where to write the run (default BENCH_run.json)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="baseline file (default: the committed one)")
    bench.add_argument("--no-baseline", action="store_true",
                       help="skip the baseline comparison entirely")
    bench.add_argument("--update-baseline", action="store_true",
                       help="write this run as the new committed baseline")
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero if throughput regressed beyond "
                            "--tolerance")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="passes per workload; the fastest is recorded "
                            "(default: 3)")
    bench.add_argument("--tolerance", type=float, default=0.35,
                       help="allowed fractional events/s drop for --check "
                            "(default 0.35)")
    bench.add_argument("--analyze", action="store_true",
                       help="analyze the run already recorded at --out "
                            "through the regression sentinel (no workloads "
                            "are re-run; always exits 0)")
    bench.add_argument("--markdown", action="store_true",
                       help="with --analyze: emit the report as Markdown")
    bench.add_argument("--no-service", action="store_true",
                       help="skip the service-latency workload (warm/cold "
                            "request p50/p99 through `repro serve`)")
    bench.add_argument("--no-batched", action="store_true",
                       help="skip the batched-fleet workload (serial vs "
                            "vectorized sweep with bit-identity check; "
                            "see docs/batching.md)")
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="serve grid-cell simulations over HTTP")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port (default 8765; --smoke defaults to "
                            "an ephemeral port)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="result-store root (default .repro-store; "
                            "--smoke defaults to a throwaway directory)")
    serve.add_argument("--workers", type=int, default=2,
                       help="max concurrent job-engine workers (default 2)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job timeout for cold cells (default none)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="per-job retry budget (default 2)")
    serve.add_argument("--store-max-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="byte budget enforced by store GC "
                            "(default unbounded)")
    serve.add_argument("--shard-width", type=int, default=2,
                       help="digest chars naming a store shard directory "
                            "(default 2 = 256 shards)")
    serve.add_argument("--code-version", default=None,
                       help="pin the store address component that normally "
                            "tracks the git SHA")
    serve.add_argument("--backend", default="serial",
                       choices=("serial", "batched", "batched-numpy",
                                "batched-python"),
                       help="cold-dispatch backend: per-cell job engine, "
                            "or one vectorized fleet per batch (results "
                            "are bit-identical; see docs/batching.md)")
    serve.add_argument("--max-lanes", type=int, default=None, metavar="N",
                       help="batched backends: cap each fleet's live lane "
                            "population and stream larger batches from a "
                            "queue (default 256; 0 = unbounded)")
    serve.add_argument("--trace-events", metavar="PATH", default=None,
                       help="write a structured JSONL event log to PATH")
    serve.add_argument("--smoke", action="store_true",
                       help="boot a throwaway server, check the cold/warm "
                            "contract (one job, warm from store), exit")
    serve.add_argument("--latency-out", metavar="PATH", default=None,
                       help="with --smoke: write the latency report JSON")
    serve.set_defaults(func=cmd_serve)

    obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a merged fleet-telemetry JSON document")
    obs_report.add_argument(
        "telemetry",
        help="document written by run_grid(telemetry_out=...)")
    obs_report.add_argument(
        "--bench", metavar="PATH", default=None,
        help="also include regression verdicts for this BENCH_run.json")
    obs_report.add_argument("--markdown", action="store_true",
                            help="emit the report as Markdown")
    obs_report.set_defaults(func=cmd_obs_report)

    fleet = sub.add_parser(
        "fleet", help="run a (benchmark x selector x seed) grid batched")
    fleet.add_argument("--benchmarks", default=None, metavar="CSV",
                       help="comma-separated benchmarks (accepts "
                            "micro:<motif>; default: all SPEC stand-ins)")
    fleet.add_argument("--selectors", default=None, metavar="CSV",
                       help="comma-separated selectors (default net,lei)")
    fleet.add_argument("--scale", type=float, default=0.1,
                       help="workload scale factor (default 0.1)")
    fleet.add_argument("--seed", type=int, default=1,
                       help="first execution seed (default 1)")
    fleet.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="seeds per (benchmark, selector) pair, "
                            "counting up from --seed (default 1)")
    fleet.add_argument("--backend", default="auto",
                       choices=("auto", "numpy", "python"),
                       help="array backend (default auto: numpy when "
                            "installed; see docs/batching.md)")
    fleet.add_argument("--max-lanes", type=int, default=None, metavar="N",
                       help="cap the live lane population; remaining "
                            "cells stream from a queue into freed slots "
                            "(default: all cells at once). Results are "
                            "bit-identical either way.")
    fleet.add_argument("--cache-capacity", type=int, default=None,
                       metavar="BYTES",
                       help="bound every lane's code cache "
                            "(default unbounded)")
    fleet.add_argument("--eviction", choices=("flush", "fifo"),
                       default="flush", help="bounded-cache policy")
    fleet.set_defaults(func=cmd_fleet)

    regions = sub.add_parser("regions", help="dump the selected regions")
    _add_common(regions)
    regions.set_defaults(func=cmd_regions)

    dot = sub.add_parser("dot", help="export a benchmark CFG as DOT")
    _add_common(dot, selector=False)
    dot.set_defaults(func=cmd_dot)

    layout = sub.add_parser("layout", help="code-cache layout map")
    _add_common(layout)
    layout.set_defaults(func=cmd_layout)

    compare = sub.add_parser("compare", help="compare two selectors on a benchmark")
    _add_common(compare)
    compare.add_argument("baseline", choices=sorted(SELECTOR_FACTORIES),
                         help="selector to divide by")
    compare.set_defaults(func=cmd_compare)

    timeline = sub.add_parser("timeline", help="windowed hit-rate timeline")
    _add_common(timeline)
    timeline.add_argument("--window", type=int, default=20_000,
                          help="steps per timeline window (default 20000)")
    timeline.set_defaults(func=cmd_timeline)

    collect = sub.add_parser("collect", help="record a binary trace")
    _add_common(collect, selector=False)
    collect.add_argument("--output", "-o", required=True,
                         help="trace file to write (.rtrc)")
    collect.set_defaults(func=cmd_collect)

    replay = sub.add_parser("replay", help="simulate over a recorded trace")
    replay.add_argument("trace", help="trace file written by `repro collect`")
    replay.add_argument("selector", choices=sorted(SELECTOR_FACTORIES))
    replay.add_argument("--scale", type=float, default=1.0,
                        help="scale used when the trace was collected")
    replay.add_argument("--cache-capacity", type=int, default=None)
    replay.add_argument("--eviction", choices=("flush", "fifo"), default="flush")
    replay.add_argument("--reference", action="store_true",
                        help="replay through the reference pull pipeline "
                             "instead of the fused push decoder")
    _add_obs(replay)
    replay.set_defaults(func=cmd_replay)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
