"""The execution engine: interprets a program into a stream of Steps.

This is the performance-critical inner loop of the whole reproduction
(every experiment pushes hundreds of thousands of steps through it), so
it trades a little elegance for speed: branch kinds are compared by
identity, per-site state dicts are created lazily, and a single
:class:`~repro.behavior.models.DecisionContext` instance is reused.

Two execution modes share the same decision semantics:

* :meth:`ExecutionEngine.run` — the *reference* pull-mode generator,
  yielding one :class:`Step` per executed block.  Simple to consume,
  but pays a generator suspension and a ``Step`` allocation per block.
* :meth:`ExecutionEngine.run_into` — the *fast* push mode: the engine
  calls ``consumer(block, taken, target)`` per block, with branch-kind
  dispatch and model lookup resolved **once per block** into a decision
  closure instead of once per execution, and no ``Step`` objects at
  all.  ``(program, seed)`` determines the exact same stream on both
  paths; the bit-identity suite in ``tests/test_fast_path.py`` holds
  them equal.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.behavior.models import (
    AlwaysTaken,
    Bernoulli,
    DecisionContext,
    LoopTrip,
    MarkovBiased,
    NeverTaken,
    Periodic,
    PhaseShift,
    RoundRobinIndirect,
    TableIndirect,
)
from repro.behavior.rng import SplitMix64
from repro.errors import ExecutionError
from repro.execution.events import Step
from repro.execution.stack import CallStack
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.program.program import Program

#: Default step budget.  Most workloads HALT well before this; the cap
#: exists so a mis-modelled loop cannot hang an experiment run.
DEFAULT_MAX_STEPS = 50_000_000


class ExecutionEngine:
    """Deterministically executes a finalized program.

    Parameters
    ----------
    program:
        A finalized :class:`~repro.program.Program`.
    seed:
        Seed for all branch decisions; ``(program, seed)`` fully
        determines the emitted stream.
    max_steps:
        Hard cap on executed blocks.  Reaching the cap is not an error
        (the stream just ends), mirroring how the paper truncates
        nothing but we must bound synthetic programs.
    max_call_depth:
        Bound on the call stack, guarding against runaway recursion.
    """

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        max_steps: Optional[int] = None,
        max_call_depth: int = 4096,
    ) -> None:
        if not program.is_finalized:
            raise ExecutionError(
                f"program {program.name!r} must be finalized before execution"
            )
        self.program = program
        self.seed = seed
        self.max_steps = DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self.max_call_depth = max_call_depth
        #: Number of steps emitted by the last (or current) run.
        self.steps_executed = 0
        #: Number of instructions covered by emitted steps.
        self.instructions_executed = 0

    def run(self) -> Iterator[Step]:
        """Yield one :class:`Step` per executed basic block.

        The generator ends when the program halts, returns from its
        outermost frame, or exhausts ``max_steps``.
        """
        rng = SplitMix64(self.seed)
        stack = CallStack(self.max_call_depth)
        site_states: Dict[BasicBlock, dict] = {}
        ctx = DecisionContext(rng=rng, site_state={}, step=0)

        # Localize hot names (measurably faster in CPython's interpreter).
        cond = BranchKind.COND
        jump = BranchKind.JUMP
        call = BranchKind.CALL
        ret = BranchKind.RETURN
        indirect = BranchKind.INDIRECT
        fall = BranchKind.FALLTHROUGH

        block: Optional[BasicBlock] = self.program.entry
        steps = 0
        instructions = 0
        max_steps = self.max_steps

        # The counters must reflect whatever was actually consumed, even
        # when the caller abandons the generator early (``close()``) or
        # the stream dies mid-run (stack overflow): the finally clause
        # runs on every exit path, so stale counts from a prior run can
        # never leak through.
        try:
            while block is not None and steps < max_steps:
                steps += 1
                instructions += block.bundle.count
                term = block.terminator
                kind = term.kind

                if kind is cond:
                    state = site_states.get(block)
                    if state is None:
                        state = site_states[block] = {}
                    ctx.site_state = state
                    ctx.step = steps
                    assert term.model is not None
                    taken = term.model.next_taken(ctx)
                    target = term.taken_target if taken else block.fallthrough
                elif kind is jump:
                    taken = True
                    target = term.taken_target
                elif kind is call:
                    taken = True
                    target = term.taken_target
                    assert block.fallthrough is not None
                    stack.push(block.fallthrough)
                elif kind is ret:
                    taken = True
                    target = stack.pop()  # None ends the program.
                elif kind is indirect:
                    state = site_states.get(block)
                    if state is None:
                        state = site_states[block] = {}
                    ctx.site_state = state
                    ctx.step = steps
                    assert term.indirect_model is not None
                    index = term.indirect_model.next_target_index(
                        ctx, len(term.indirect_targets)
                    )
                    taken = True
                    target = term.indirect_targets[index]
                elif kind is fall:
                    taken = False
                    target = block.fallthrough
                else:  # HALT
                    taken = False
                    target = None

                yield Step(block, taken, target)
                block = target
        finally:
            self.steps_executed = steps
            self.instructions_executed = instructions

    # -- fast path --------------------------------------------------------
    def _push_state(self) -> Tuple[CallStack, DecisionContext]:
        """Fresh per-run decision state for the push/fused loops.

        Shared by :meth:`run_into` and the simulator's fused loop
        (:meth:`~repro.system.simulator.Simulator.run_program`) so both
        construct the RNG and call stack exactly as :meth:`run` does.
        """
        rng = SplitMix64(self.seed)
        stack = CallStack(self.max_call_depth)
        ctx = DecisionContext(rng=rng, site_state={}, step=0)
        return stack, ctx

    def _decider_for(
        self, block: BasicBlock, stack: CallStack, ctx: DecisionContext
    ):
        """Build the per-block decision rule for :meth:`run_into`.

        Blocks whose transfer is fully static (JUMP / FALLTHROUGH /
        HALT, and conditionals on ``AlwaysTaken``/``NeverTaken``)
        resolve to a plain ``(taken, target)`` tuple — no call at all
        on later executions.  The rest resolve to a closure taking the
        step index and returning a prebuilt tuple, with terminator
        kind, model and targets bound once.  The stock branch models
        are specialized into dedicated closures that replicate their
        decision logic (same RNG consumption, per-site state in a
        closure cell); unknown models are consulted through the shared
        :class:`DecisionContext` exactly as the reference path does.
        Either way the RNG stream is preserved bit-for-bit.
        """
        term = block.terminator
        kind = term.kind
        if kind is BranchKind.COND:
            model = term.model
            assert model is not None
            taken_result = (True, term.taken_target)
            fall_result = (False, block.fallthrough)
            # Known-model specializations.  Each reproduces the exact
            # RNG-consumption pattern of the model's ``next_taken`` (and
            # its per-site state machine, as a closure cell instead of a
            # ``site_state`` dict), so the decision stream stays
            # bit-identical to the reference path.  Exact-type checks
            # only: a subclass overriding ``next_taken`` falls through
            # to the generic closure below.
            model_type = type(model)
            if model_type is AlwaysTaken:
                return taken_result
            if model_type is NeverTaken:
                return fall_result
            if model_type is Bernoulli:

                def decide_bernoulli(step, _random=ctx.rng.random,
                                     _p=model.probability,
                                     _taken=taken_result, _fall=fall_result):
                    return _taken if _random() < _p else _fall

                return decide_bernoulli
            if model_type is LoopTrip:
                trips = model.trips
                jitter = model.jitter
                if jitter == 0:

                    def decide_loop(step, _cell=[None], _trips=trips,
                                    _taken=taken_result, _fall=fall_result):
                        remaining = _cell[0]
                        if remaining is None:
                            remaining = _trips
                        remaining -= 1
                        if remaining <= 0:
                            _cell[0] = None
                            return _fall
                        _cell[0] = remaining
                        return _taken

                    return decide_loop

                def decide_loop_jitter(step, _cell=[None],
                                       _randint=ctx.rng.randint,
                                       _lo=trips - jitter,
                                       _hi=trips + jitter,
                                       _taken=taken_result,
                                       _fall=fall_result):
                    remaining = _cell[0]
                    if remaining is None:
                        remaining = _randint(_lo, _hi)
                    remaining -= 1
                    if remaining <= 0:
                        _cell[0] = None
                        return _fall
                    _cell[0] = remaining
                    return _taken

                return decide_loop_jitter
            if model_type is Periodic:

                def decide_periodic(step, _cell=[0], _pattern=model.pattern,
                                    _n=len(model.pattern),
                                    _taken=taken_result, _fall=fall_result):
                    cursor = _cell[0]
                    _cell[0] = (cursor + 1) % _n
                    return _taken if _pattern[cursor] else _fall

                return decide_periodic
            if model_type is PhaseShift:

                def decide_phase(step, _random=ctx.rng.random,
                                 _prob_at=model.probability_at,
                                 _taken=taken_result, _fall=fall_result):
                    return _taken if _random() < _prob_at(step) else _fall

                return decide_phase
            if model_type is MarkovBiased:

                def decide_markov(step, _cell=[None],
                                  _random=ctx.rng.random,
                                  _stay_t=model.stay_taken,
                                  _stay_n=model.stay_not_taken,
                                  _initial=model.initial_taken,
                                  _taken=taken_result, _fall=fall_result):
                    last = _cell[0]
                    if last is None:
                        taken = _initial
                    elif last:
                        taken = _random() < _stay_t
                    else:
                        taken = not (_random() < _stay_n)
                    _cell[0] = taken
                    return _taken if taken else _fall

                return decide_markov
            state: dict = {}

            def decide_cond(step, _model=model, _ctx=ctx, _state=state,
                            _taken=taken_result, _fall=fall_result):
                _ctx.site_state = _state
                _ctx.step = step
                return _taken if _model.next_taken(_ctx) else _fall

            return decide_cond
        if kind is BranchKind.JUMP:
            return (True, term.taken_target)
        if kind is BranchKind.CALL:
            assert block.fallthrough is not None
            result = (True, term.taken_target)

            # The closures poke at the stack's frame list directly: one
            # list op per call/return instead of a method call.  The
            # depth limit is still enforced — overflow falls back to
            # ``push`` for the canonical error.
            def decide_call(step, _frames=stack._frames,
                            _limit=stack.max_depth, _push=stack.push,
                            _site=block.fallthrough, _r=result):
                if len(_frames) < _limit:
                    _frames.append(_site)
                else:
                    _push(_site)
                return _r

            return decide_call
        if kind is BranchKind.RETURN:

            def decide_ret(step, _frames=stack._frames):
                # An empty stack returns from main: target None ends
                # the program (CallStack.pop's contract).
                return (True, _frames.pop() if _frames else None)

            return decide_ret
        if kind is BranchKind.INDIRECT:
            imodel = term.indirect_model
            assert imodel is not None
            results = tuple((True, target) for target in term.indirect_targets)
            count = len(results)
            imodel_type = type(imodel)
            if imodel_type is RoundRobinIndirect:

                def decide_rr(step, _cell=[0], _results=results,
                              _count=count):
                    cursor = _cell[0]
                    _cell[0] = (cursor + 1) % _count
                    return _results[cursor]

                return decide_rr
            # Weight-count mismatches fall through so the model raises
            # its canonical error on the first execution, as before.
            if imodel_type is TableIndirect and len(imodel.weights) == count:

                def decide_table(step, _weighted=ctx.rng.weighted_index,
                                 _cum=imodel._cumulative, _results=results):
                    return _results[_weighted(_cum)]

                return decide_table
            state = {}

            def decide_indirect(step, _model=imodel, _ctx=ctx, _state=state,
                                _results=results, _count=count):
                _ctx.site_state = _state
                _ctx.step = step
                return _results[_model.next_target_index(_ctx, _count)]

            return decide_indirect
        if kind is BranchKind.FALLTHROUGH:
            return (False, block.fallthrough)
        # HALT
        return (False, None)

    def run_into(
        self,
        consumer: Callable[[BasicBlock, bool, Optional[BasicBlock]], object],
    ) -> int:
        """Push the stream into ``consumer(block, taken, target)``.

        The fast-path twin of :meth:`run`: same stream for the same
        ``(program, seed)``, but with no generator suspension and no
        :class:`Step` allocation — per-block decision closures are
        built on first execution of each block and reused after.
        Returns the number of steps pushed; the ``steps_executed`` /
        ``instructions_executed`` counters are maintained on every exit
        path, exactly as in :meth:`run`.
        """
        stack, ctx = self._push_state()
        deciders: Dict[BasicBlock, object] = {}
        deciders_get = deciders.get
        make_decider = self._decider_for

        block: Optional[BasicBlock] = self.program.entry
        steps = 0
        instructions = 0
        max_steps = self.max_steps

        try:
            while block is not None and steps < max_steps:
                steps += 1
                instructions += block.bundle.count
                decide = deciders_get(block)
                if decide is None:
                    decide = deciders[block] = make_decider(block, stack, ctx)
                if decide.__class__ is tuple:
                    taken, target = decide
                else:
                    taken, target = decide(steps)
                consumer(block, taken, target)
                block = target
        finally:
            self.steps_executed = steps
            self.instructions_executed = instructions
        return steps

    def run_to_list(self) -> list:
        """Materialize the full stream (tests and small programs only)."""
        return list(self.run())
