"""The execution engine: interprets a program into a stream of Steps.

This is the performance-critical inner loop of the whole reproduction
(every experiment pushes hundreds of thousands of steps through it), so
it trades a little elegance for speed: branch kinds are compared by
identity, per-site state dicts are created lazily, and a single
:class:`~repro.behavior.models.DecisionContext` instance is reused.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.behavior.models import DecisionContext
from repro.behavior.rng import SplitMix64
from repro.errors import ExecutionError
from repro.execution.events import Step
from repro.execution.stack import CallStack
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.program.program import Program

#: Default step budget.  Most workloads HALT well before this; the cap
#: exists so a mis-modelled loop cannot hang an experiment run.
DEFAULT_MAX_STEPS = 50_000_000


class ExecutionEngine:
    """Deterministically executes a finalized program.

    Parameters
    ----------
    program:
        A finalized :class:`~repro.program.Program`.
    seed:
        Seed for all branch decisions; ``(program, seed)`` fully
        determines the emitted stream.
    max_steps:
        Hard cap on executed blocks.  Reaching the cap is not an error
        (the stream just ends), mirroring how the paper truncates
        nothing but we must bound synthetic programs.
    max_call_depth:
        Bound on the call stack, guarding against runaway recursion.
    """

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        max_steps: Optional[int] = None,
        max_call_depth: int = 4096,
    ) -> None:
        if not program.is_finalized:
            raise ExecutionError(
                f"program {program.name!r} must be finalized before execution"
            )
        self.program = program
        self.seed = seed
        self.max_steps = DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self.max_call_depth = max_call_depth
        #: Number of steps emitted by the last (or current) run.
        self.steps_executed = 0
        #: Number of instructions covered by emitted steps.
        self.instructions_executed = 0

    def run(self) -> Iterator[Step]:
        """Yield one :class:`Step` per executed basic block.

        The generator ends when the program halts, returns from its
        outermost frame, or exhausts ``max_steps``.
        """
        rng = SplitMix64(self.seed)
        stack = CallStack(self.max_call_depth)
        site_states: Dict[BasicBlock, dict] = {}
        ctx = DecisionContext(rng=rng, site_state={}, step=0)

        # Localize hot names (measurably faster in CPython's interpreter).
        cond = BranchKind.COND
        jump = BranchKind.JUMP
        call = BranchKind.CALL
        ret = BranchKind.RETURN
        indirect = BranchKind.INDIRECT
        fall = BranchKind.FALLTHROUGH

        block: Optional[BasicBlock] = self.program.entry
        steps = 0
        instructions = 0
        max_steps = self.max_steps

        while block is not None and steps < max_steps:
            steps += 1
            instructions += block.bundle.count
            term = block.terminator
            kind = term.kind

            if kind is cond:
                state = site_states.get(block)
                if state is None:
                    state = site_states[block] = {}
                ctx.site_state = state
                ctx.step = steps
                assert term.model is not None
                taken = term.model.next_taken(ctx)
                target = term.taken_target if taken else block.fallthrough
            elif kind is jump:
                taken = True
                target = term.taken_target
            elif kind is call:
                taken = True
                target = term.taken_target
                assert block.fallthrough is not None
                stack.push(block.fallthrough)
            elif kind is ret:
                taken = True
                target = stack.pop()  # None ends the program.
            elif kind is indirect:
                state = site_states.get(block)
                if state is None:
                    state = site_states[block] = {}
                ctx.site_state = state
                ctx.step = steps
                assert term.indirect_model is not None
                index = term.indirect_model.next_target_index(
                    ctx, len(term.indirect_targets)
                )
                taken = True
                target = term.indirect_targets[index]
            elif kind is fall:
                taken = False
                target = block.fallthrough
            else:  # HALT
                taken = False
                target = None

            yield Step(block, taken, target)
            block = target

        self.steps_executed = steps
        self.instructions_executed = instructions

    def run_to_list(self) -> list:
        """Materialize the full stream (tests and small programs only)."""
        return list(self.run())
