"""Call stack used by the execution engine for call/return semantics."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ExecutionError
from repro.program.cfg import BasicBlock


class CallStack:
    """Stack of pending return sites with a bounded depth.

    The depth bound protects against synthetic programs that recurse
    without a terminating model; hitting it is a workload bug, reported
    loudly instead of consuming memory forever.
    """

    __slots__ = ("_frames", "max_depth")

    def __init__(self, max_depth: int = 4096) -> None:
        if max_depth < 1:
            raise ExecutionError(f"max_depth must be >= 1, got {max_depth}")
        self._frames: List[BasicBlock] = []
        self.max_depth = max_depth

    def push(self, return_site: BasicBlock) -> None:
        if len(self._frames) >= self.max_depth:
            raise ExecutionError(
                f"call stack overflow (depth {self.max_depth}); "
                "does a recursive workload lack a base case?"
            )
        self._frames.append(return_site)

    def pop(self) -> Optional[BasicBlock]:
        """Pop the pending return site; ``None`` when returning from main."""
        if not self._frames:
            return None
        return self._frames.pop()

    @property
    def depth(self) -> int:
        return len(self._frames)

    def __bool__(self) -> bool:
        return bool(self._frames)
