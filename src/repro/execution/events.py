"""Events emitted by the execution engine.

A :class:`Step` records one executed basic block together with the
control transfer that ended it.  This is exactly the information Pin's
basic-block instrumentation gives the paper's framework: the block, and
for its terminating branch the source and target addresses and whether
it was taken.  Source/target addresses are derived from the blocks
rather than stored, keeping the event small.

:class:`Step` is a ``__slots__`` record rather than a ``NamedTuple``:
hundreds of thousands of instances are created per run on the reference
(generator) pipeline, and the fused fast path
(:meth:`~repro.system.simulator.Simulator.run_program`) creates them
only where a selector needs one — interpreted steps and cache exits —
so the record must stay as lean as possible.
"""

from __future__ import annotations

from typing import Optional

from repro.program.cfg import BasicBlock


class Step:
    """One executed basic block and its outgoing control transfer.

    Attributes
    ----------
    block:
        The basic block that just executed (all of its instructions ran).
    taken:
        True when the terminating control transfer was a taken branch.
        Fall-throughs and the final HALT are not taken.
    target:
        The block that executes next, or ``None`` when the program ends
        (HALT, or return from the outermost frame).
    """

    __slots__ = ("block", "taken", "target")

    def __init__(
        self, block: BasicBlock, taken: bool, target: Optional[BasicBlock]
    ) -> None:
        self.block = block
        self.taken = taken
        self.target = target

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Step):
            return NotImplemented
        return (
            self.block is other.block
            and self.taken == other.taken
            and self.target is other.target
        )

    def __hash__(self) -> int:
        return hash((self.block, self.taken, self.target))

    @property
    def src_address(self) -> int:
        """Address of the transferring instruction (block's last byte)."""
        assert self.block.end_address is not None
        return self.block.end_address

    @property
    def tgt_address(self) -> Optional[int]:
        if self.target is None:
            return None
        return self.target.address

    @property
    def is_backward(self) -> bool:
        """True for a taken branch to an address not above its source."""
        if not self.taken or self.target is None:
            return False
        assert self.target.address is not None and self.block.end_address is not None
        return self.target.address <= self.block.end_address

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arrow = "=>" if self.taken else "->"
        dst = self.target.full_label if self.target is not None else "END"
        return f"Step({self.block.full_label} {arrow} {dst})"
