"""Execution substrate: the "hardware plus Pin" of the reproduction.

The paper's framework "relies on the Pin dynamic instrumentation system
to report the sequence of basic blocks executed by a program"
(Section 2.3).  Here that role is played by
:class:`~repro.execution.engine.ExecutionEngine`, which interprets a
finalized :class:`~repro.program.Program` and yields one
:class:`~repro.execution.events.Step` per executed basic block.  The
dynamic-optimization-system simulator consumes these steps; it never
needs to know whether they came from a live engine or from a recorded
trace file (:mod:`repro.tracing`).
"""

from repro.execution.events import Step
from repro.execution.engine import ExecutionEngine
from repro.execution.stack import CallStack

__all__ = ["Step", "ExecutionEngine", "CallStack"]
