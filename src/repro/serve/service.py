"""Three-tier request resolution over the store and the job engine.

:class:`SimulationService` is the transport-independent heart of
:mod:`repro.serve` (the HTTP layer in :mod:`repro.serve.server` is a
thin shell around it).  Every request resolves through the cheapest
tier that can satisfy it:

1. **warm store hit** — the cell's content address is already in the
   :class:`~repro.store.ResultStore`: one file read, no simulation;
2. **single-flight coalescing** — an identical cell (same digest) is
   already being computed: the request awaits the in-flight future
   instead of launching anything.  N concurrent identical requests
   execute exactly one job and all receive the same bit-identical
   report;
3. **cold dispatch** — the cell is queued and, after a short batching
   window that lets a concurrent burst pile up, the queue is handed to
   a :class:`~repro.jobs.engine.JobEngine` batch with the engine's
   existing per-job timeout / bounded-retry / fault machinery.  Each
   finished cell persists to the store *and* resolves its waiters as
   it completes, not when the batch drains.

The dispatcher runs `JobEngine.run` in a worker thread
(``asyncio.to_thread``) so the event loop — and therefore warm hits
and health checks — stays responsive while cells simulate.  Because a
freshly computed cell is persisted *before* its future resolves, any
request that arrives after resolution finds tier 1 warm; the
``in-flight`` window is therefore exactly the computation, never
longer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import JobError, ServeError
from repro.jobs.engine import Job, JobEngine
from repro.metrics.summary import MetricReport
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.telemetry import worker_observer
from repro.serve.protocol import CellRequest
from repro.store import CellKey, ResultStore
from repro.system.simulator import simulate
from repro.workloads import build_benchmark


def _cell_worker(task: Tuple[str, str, float, int, object, bool]) -> MetricReport:
    """Job-engine worker: simulate one cell (possibly in a subprocess).

    Module-level so it pickles under spawn contexts; the program is
    rebuilt inside the worker (cheaper than shipping it).
    """
    bench, selector, scale, seed, config, fast = task
    program = build_benchmark(bench, scale=scale)
    return MetricReport.from_result(
        simulate(program, selector, config, seed=seed, fast=fast,
                 observer=worker_observer())
    )


#: Default live-lane cap for batched cold dispatch: a coalesced batch
#: larger than this streams through one bounded fleet (slots re-seeded
#: from the queue as lanes settle) instead of allocating one giant
#: fleet — memory tracks the cap, results are bit-identical.
DEFAULT_FLEET_MAX_LANES = 256


@dataclass
class ServiceStats:
    """Resolution-path counters for one service instance."""

    requests: int = 0
    warm_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    jobs_launched: int = 0
    batches: int = 0
    failures: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "warm_hits": self.warm_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "jobs_launched": self.jobs_launched,
            "batches": self.batches,
            "failures": self.failures,
        }


@dataclass
class _Pending:
    """One cold cell waiting for (or riding on) a dispatch batch."""

    digest: str
    key: CellKey
    request: CellRequest
    future: "asyncio.Future[MetricReport]"


class SimulationService:
    """Resolve grid-cell requests through store, coalescing and jobs."""

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        job_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        observer: Optional[Observer] = None,
        code_version: Optional[str] = None,
        batch_window: float = 0.005,
        fast: bool = True,
        mp_context=None,
        backend: str = "serial",
        fleet_max_lanes: Optional[int] = DEFAULT_FLEET_MAX_LANES,
    ) -> None:
        if backend not in ("serial", "batched", "batched-numpy",
                           "batched-python"):
            raise ServeError(
                f"unknown service backend {backend!r}: expected 'serial', "
                f"'batched', 'batched-numpy' or 'batched-python'"
            )
        if backend != "serial" and not fast:
            raise ServeError(
                "fast=False pins the reference pipeline, which has no "
                "batched equivalent: use backend='serial'"
            )
        if fleet_max_lanes is not None and fleet_max_lanes < 1:
            raise ServeError(
                f"fleet_max_lanes must be >= 1 or None, "
                f"got {fleet_max_lanes}"
            )
        #: Cold-dispatch execution backend: the job engine, or one
        #: vectorized fleet per batch (see ``docs/batching.md``).  The
        #: batching window upstream means a concurrent burst of cold
        #: cells becomes one fleet — lanes advance in lockstep and
        #: every waiter resolves when its config group completes.
        self.backend = backend
        #: Live-lane cap per cold-dispatch fleet (``None`` =
        #: unbounded): batches beyond the cap stream through the
        #: kernel's cell queue, bounding memory at the cap while the
        #: vector population stays wide.
        self.fleet_max_lanes = fleet_max_lanes
        self.store = store
        self.workers = max(1, workers)
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.obs = observer if observer is not None else NULL_OBSERVER
        #: Pinned store address component; ``None`` tracks the git SHA.
        self.code_version = code_version
        #: Seconds a cold miss waits before dispatch so a concurrent
        #: burst of distinct cells lands in one engine batch.
        self.batch_window = batch_window
        self.fast = fast
        self._mp_context = mp_context
        self.stats = ServiceStats()
        self._inflight: Dict[str, _Pending] = {}
        self._queue: List[_Pending] = []
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running event loop and start the dispatcher."""
        if self._dispatcher is not None:
            raise ServeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closed = False
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def close(self) -> None:
        """Stop dispatching; fail queued waiters (in-batch jobs finish)."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for pending in list(self._inflight.values()):
            if not pending.future.done():
                pending.future.set_exception(
                    ServeError("service shut down before the cell computed")
                )
        self._inflight.clear()
        self._queue.clear()

    @property
    def inflight(self) -> int:
        """Cells currently queued or computing."""
        return len(self._inflight)

    # -- resolution ------------------------------------------------------
    async def resolve(
        self, request: CellRequest
    ) -> Tuple[MetricReport, str, str]:
        """Resolve one cell; returns ``(report, source, digest)``.

        ``source`` names the tier that satisfied the request:
        ``"store"`` (warm hit), ``"coalesced"`` (rode an identical
        in-flight job) or ``"computed"`` (this request's own cold
        dispatch).
        """
        if self._loop is None or self._closed:
            raise ServeError("service is not running (call start() first)")
        key = request.key(self.code_version)
        digest = key.digest
        self.stats.requests += 1
        # Tier 1: warm store.  The file read runs off-loop so a large
        # entry never stalls other connections.
        report = await asyncio.to_thread(self.store.get, key)
        if report is not None:
            self.stats.warm_hits += 1
            return report, "store", digest
        # Tier 2: single-flight.  No await between the lookup and the
        # registration below, so two requests for one digest can never
        # both register (the event loop interleaves only at awaits).
        existing = self._inflight.get(digest)
        if existing is not None:
            self.stats.coalesced += 1
            self.obs.event("serve_coalesced", 0, digest=digest[:12],
                           benchmark=request.benchmark,
                           selector=request.selector)
            report = await asyncio.shield(existing.future)
            return report, "coalesced", digest
        # Tier 3: cold dispatch.
        pending = _Pending(digest, key, request, self._loop.create_future())
        self._inflight[digest] = pending
        self._queue.append(pending)
        self._wake.set()
        # shield: a disconnecting client must not cancel the shared
        # future other coalesced waiters (and the store put) ride on.
        report = await asyncio.shield(pending.future)
        self.stats.computed += 1
        return report, "computed", digest

    # -- dispatch --------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            batch, self._queue = self._queue, []
            if not batch:
                continue
            self.stats.batches += 1
            self.stats.jobs_launched += len(batch)
            try:
                await asyncio.to_thread(self._run_batch, batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Terminal engine failure (retry budget exhausted):
                # reject every waiter the batch still owes an answer.
                self.stats.failures += 1
                for pending in batch:
                    self._inflight.pop(pending.digest, None)
                    if not pending.future.done():
                        pending.future.set_exception(
                            exc if isinstance(exc, JobError)
                            else JobError(f"batch dispatch failed: {exc}")
                        )

    def _run_batch(self, batch: List[_Pending]) -> None:
        """Worker thread: run one engine batch, resolving as cells land.

        Job ids are the cell digests (unique by construction — the
        single-flight tier guarantees one pending entry per digest).
        """
        if self.backend != "serial":
            self._run_batch_fleet(batch)
            return
        by_digest = {pending.digest: pending for pending in batch}

        def on_complete(job_id: str, report: MetricReport) -> None:
            # Persist FIRST: by the time a waiter wakes, the cell is a
            # warm hit for everyone who asks later.
            self.store.put(by_digest[job_id].key, report)
            self._loop.call_soon_threadsafe(
                self._settle, job_id, report
            )

        engine = JobEngine(
            _cell_worker,
            workers=min(self.workers, len(batch)),
            timeout=self.job_timeout,
            max_retries=self.max_retries,
            backoff=self.backoff,
            observer=self.obs,
            on_complete=on_complete,
            mp_context=self._mp_context,
        )
        engine.run([
            Job(pending.digest,
                (pending.request.benchmark, pending.request.selector,
                 pending.request.scale, pending.request.seed,
                 pending.request.config, self.fast))
            for pending in batch
        ])

    def _run_batch_fleet(self, batch: List[_Pending]) -> None:
        """Worker thread: run one batch as vectorized fleet(s).

        ``run_fleet`` takes one config for the whole fleet, so the
        batch is grouped by config first — each group is one fleet,
        and within a group the unique digests guarantee unique
        (benchmark, selector, scale, seed) cells.  Reports are
        bit-identical to the job-engine path; waiters resolve when
        their group's fleet completes (batch granularity, not per
        cell).  Persist-before-settle is preserved per cell.
        """
        from repro.batch import BatchCell, run_fleet

        fleet_backend = (self.backend[len("batched-"):]
                         if "-" in self.backend else "auto")
        groups: Dict[str, List[_Pending]] = {}
        for pending in batch:
            groups.setdefault(repr(pending.request.config), []).append(pending)
        for group in groups.values():
            cells = [
                BatchCell(pending.request.benchmark,
                          pending.request.selector,
                          scale=pending.request.scale,
                          seed=pending.request.seed)
                for pending in group
            ]
            fleet = run_fleet(cells, config=group[0].request.config,
                              backend=fleet_backend, observer=self.obs,
                              max_lanes=self.fleet_max_lanes)
            for pending, cell in zip(group, cells):
                report = fleet.reports[cell]
                self.store.put(pending.key, report)
                self._loop.call_soon_threadsafe(
                    self._settle, pending.digest, report
                )

    def _settle(self, digest: str, report: MetricReport) -> None:
        """Event-loop side: hand a computed report to its waiters."""
        pending = self._inflight.pop(digest, None)
        if pending is not None and not pending.future.done():
            pending.future.set_result(report)
