"""End-to-end smoke check for the grid server (``repro serve --smoke``).

Boots a real server, submits the same cell twice and verifies the
service contract the docs promise:

* the **cold** request resolves with ``source="computed"`` and launches
  exactly one job-engine job;
* the **warm** request resolves with ``source="store"`` — served from
  the content-addressed store without launching anything (the launch
  count must not move);
* warm requests are much faster than the cold one (the SLO the latency
  bench tracks; the smoke check only asserts the direction, not the
  full 10x, because one sample on a noisy CI runner is not a
  percentile).

Returns the measurement as a dict (written as JSON when
``latency_out`` is given — CI uploads it next to the bench artifacts);
raises :class:`~repro.errors.ServeError` on any contract violation.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.errors import ServeError
from repro.serve.client import ServiceClient
from repro.serve.server import ServerThread

#: The smoke cell: small enough to simulate in well under a second,
#: large enough that a store read is clearly cheaper.
SMOKE_BENCHMARK = "gzip"
SMOKE_SELECTOR = "net"
SMOKE_SCALE = 0.1
SMOKE_SEED = 1
#: Warm requests measured after the cold one (p50 of these is recorded).
SMOKE_WARM_REQUESTS = 10


def run_smoke(
    store_root: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    latency_out: Optional[str] = None,
    warm_requests: int = SMOKE_WARM_REQUESTS,
) -> dict:
    """Run the smoke sequence against a freshly booted server."""
    tmp = None
    if store_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-smoke-store-")
        store_root = tmp.name
    try:
        with ServerThread(store_root, host=host, port=port,
                          workers=1) as handle:
            with ServiceClient(host, handle.port) as client:
                cold_body, cold_seconds = client.simulate(
                    SMOKE_BENCHMARK, SMOKE_SELECTOR,
                    scale=SMOKE_SCALE, seed=SMOKE_SEED,
                )
                if cold_body["source"] != "computed":
                    raise ServeError(
                        f"cold request resolved as "
                        f"{cold_body['source']!r}, expected 'computed' "
                        f"(is the store already warm?)"
                    )
                stats_after_cold = client.stats()["service"]
                if stats_after_cold["jobs_launched"] != 1:
                    raise ServeError(
                        f"cold request launched "
                        f"{stats_after_cold['jobs_launched']} jobs, "
                        f"expected exactly 1"
                    )
                warm_samples = []
                warm_sources = set()
                for _ in range(max(1, warm_requests)):
                    warm_body, warm_seconds = client.simulate(
                        SMOKE_BENCHMARK, SMOKE_SELECTOR,
                        scale=SMOKE_SCALE, seed=SMOKE_SEED,
                    )
                    warm_samples.append(warm_seconds)
                    warm_sources.add(warm_body["source"])
                if warm_sources != {"store"}:
                    raise ServeError(
                        f"warm requests resolved as {sorted(warm_sources)}, "
                        f"expected every one from 'store'"
                    )
                if warm_body["report"] != cold_body["report"]:
                    raise ServeError(
                        "warm report is not bit-identical to the cold one"
                    )
                stats_after_warm = client.stats()["service"]
                if (stats_after_warm["jobs_launched"]
                        != stats_after_cold["jobs_launched"]):
                    raise ServeError(
                        "warm requests launched jobs: store hits must not "
                        "reach the job engine"
                    )
                warm_p50 = sorted(warm_samples)[len(warm_samples) // 2]
                if warm_p50 >= cold_seconds:
                    raise ServeError(
                        f"warm p50 ({warm_p50 * 1000:.2f} ms) is not below "
                        f"the cold latency ({cold_seconds * 1000:.2f} ms)"
                    )
                record = {
                    "cell": {
                        "benchmark": SMOKE_BENCHMARK,
                        "selector": SMOKE_SELECTOR,
                        "scale": SMOKE_SCALE,
                        "seed": SMOKE_SEED,
                    },
                    "cold_ms": round(cold_seconds * 1000, 3),
                    "warm_p50_ms": round(warm_p50 * 1000, 3),
                    "warm_requests": len(warm_samples),
                    "warm_speedup": round(cold_seconds / warm_p50, 1)
                    if warm_p50 > 0 else None,
                    "service": stats_after_warm,
                    "digest": cold_body["digest"],
                }
    finally:
        if tmp is not None:
            tmp.cleanup()
    if latency_out:
        directory = os.path.dirname(latency_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(latency_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    return record
