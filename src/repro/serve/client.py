"""A minimal blocking client for the grid server (stdlib ``http.client``).

Used by the CI smoke check, the latency bench and the tests; kept
deliberately tiny — real clients are expected to speak plain HTTP from
whatever stack they already have (the request schema is the contract,
not this class).  The underlying connection is keep-alive, so repeated
warm hits measure the service, not TCP setup.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional, Tuple

from repro.errors import ServeError


class ServiceClient:
    """Blocking JSON-over-HTTP client with one keep-alive connection."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing --------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One request; returns ``(status, decoded JSON body)``.

        Retries once on a dropped keep-alive connection (the server may
        have closed an idle socket between requests).
        """
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"raw": decoded}
        return response.status, decoded

    # -- endpoints -------------------------------------------------------
    def simulate(
        self,
        benchmark: str,
        selector: str,
        scale: float = 1.0,
        seed: int = 1,
        config: Optional[Dict[str, object]] = None,
    ) -> Tuple[dict, float]:
        """Submit one cell; returns ``(response body, latency seconds)``.

        Raises :class:`~repro.errors.ServeError` on a non-200 status.
        """
        body: Dict[str, object] = {
            "benchmark": benchmark, "selector": selector,
            "scale": scale, "seed": seed,
        }
        if config:
            body["config"] = config
        started = time.perf_counter()
        status, data = self.request("POST", "/v1/simulate", body)
        latency = time.perf_counter() - started
        if status != 200:
            raise ServeError(
                f"simulate returned {status}: {data.get('error', data)}"
            )
        return data, latency

    def stats(self) -> dict:
        status, data = self.request("GET", "/v1/stats")
        if status != 200:
            raise ServeError(f"stats returned {status}")
        return data

    def metrics_text(self) -> str:
        conn = self._connection()
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        return response.read().decode("utf-8")
