"""Request/response schema of the simulation service.

A client declares one grid cell — exactly the tuple the
content-addressed store hashes — and the service resolves it::

    {"benchmark": "gzip", "selector": "net",
     "scale": 0.5, "seed": 1,
     "config": {"net_threshold": 40}}

``config`` carries *overrides* of :class:`~repro.config.SystemConfig`
fields; omitted fields keep the paper's published defaults, so two
clients that submit the same logical cell build the same
:class:`~repro.store.CellKey` and coalesce onto the same work.
Validation is strict — unknown fields anywhere are rejected rather
than silently ignored, because an ignored typo ("slector") would
compute the wrong cell while looking like a success.

The response wraps the cell's
:class:`~repro.metrics.summary.MetricReport` with its resolution
provenance::

    {"status": "ok", "source": "store" | "coalesced" | "computed",
     "digest": "...", "elapsed_ms": 1.93, "cell": {...}, "report": {...}}
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.errors import ConfigError, ServeError
from repro.metrics.summary import MetricReport
from repro.selection.registry import SELECTOR_FACTORIES
from repro.store import CellKey, cell_key
from repro.workloads import benchmark_names

#: Resolution tiers, fastest first (see docs/service.md).
SOURCES = ("store", "coalesced", "computed")

#: Top-level request fields accepted by ``POST /v1/simulate``.
_REQUEST_FIELDS = ("benchmark", "selector", "scale", "seed", "config")

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(SystemConfig)}


@dataclass(frozen=True)
class CellRequest:
    """One declared grid cell, validated and ready to address."""

    benchmark: str
    selector: str
    scale: float = 1.0
    seed: int = 1
    config: SystemConfig = field(default_factory=SystemConfig)

    def key(self, code_version: Optional[str] = None) -> CellKey:
        """The cell's content address (single-flight dedup key)."""
        return cell_key(self.benchmark, self.selector, self.scale,
                        self.seed, self.config, code_version=code_version)

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "selector": self.selector,
            "scale": self.scale,
            "seed": self.seed,
            "config": dataclasses.asdict(self.config),
        }


def parse_cell_request(data: object) -> CellRequest:
    """Validate a decoded request body into a :class:`CellRequest`.

    Raises :class:`~repro.errors.ServeError` with a client-presentable
    message on any schema violation.
    """
    if not isinstance(data, dict):
        raise ServeError(
            f"request body must be a JSON object, got "
            f"{type(data).__name__}"
        )
    unknown = sorted(set(data) - set(_REQUEST_FIELDS))
    if unknown:
        raise ServeError(
            f"unknown request field(s) {unknown}; accepted: "
            f"{list(_REQUEST_FIELDS)}"
        )
    try:
        benchmark = data["benchmark"]
        selector = data["selector"]
    except KeyError as exc:
        raise ServeError(f"request is missing required field {exc}") from None
    if benchmark not in benchmark_names():
        raise ServeError(
            f"unknown benchmark {benchmark!r}; known: "
            f"{list(benchmark_names())}"
        )
    if selector not in SELECTOR_FACTORIES:
        raise ServeError(
            f"unknown selector {selector!r}; known: "
            f"{sorted(SELECTOR_FACTORIES)}"
        )
    scale = data.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
            or not scale > 0:
        raise ServeError(f"scale must be a positive number, got {scale!r}")
    seed = data.get("seed", 1)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ServeError(f"seed must be an integer, got {seed!r}")
    overrides = data.get("config", {})
    if not isinstance(overrides, dict):
        raise ServeError(
            f"config must be an object of SystemConfig overrides, got "
            f"{type(overrides).__name__}"
        )
    bad_fields = sorted(set(overrides) - _CONFIG_FIELDS)
    if bad_fields:
        raise ServeError(
            f"unknown config field(s) {bad_fields}; see "
            f"repro.config.SystemConfig"
        )
    try:
        config = SystemConfig(**overrides)
    except ConfigError as exc:
        raise ServeError(f"invalid config override: {exc}") from None
    except TypeError as exc:  # e.g. an unhashable value
        raise ServeError(f"invalid config override: {exc}") from None
    return CellRequest(benchmark=benchmark, selector=selector,
                       scale=float(scale), seed=seed, config=config)


def request_from_json(body: bytes) -> CellRequest:
    """Decode and validate an HTTP request body."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServeError(f"request body is not valid JSON: {exc}") from None
    return parse_cell_request(data)


def response_payload(
    request: CellRequest,
    digest: str,
    report: MetricReport,
    source: str,
    elapsed_ms: float,
) -> Dict[str, object]:
    """The ``POST /v1/simulate`` success body."""
    from repro.analysis.serialize import report_to_dict

    return {
        "status": "ok",
        "source": source,
        "digest": digest,
        "elapsed_ms": round(elapsed_ms, 3),
        "cell": request.to_dict(),
        "report": report_to_dict(report),
    }


def error_payload(message: str) -> Dict[str, object]:
    """The error body every endpoint shares."""
    return {"status": "error", "error": message}
