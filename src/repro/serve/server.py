"""The asyncio HTTP shell around :class:`SimulationService`.

Stdlib-only by design (the repo bakes in no third-party runtime deps):
a minimal HTTP/1.1 implementation over ``asyncio.start_server`` —
request line, headers, ``Content-Length`` body, keep-alive — which is
all four endpoints need:

* ``POST /v1/simulate`` — declare a grid cell, long-poll its report;
* ``GET /v1/cell/<digest>`` — store lookup only (404 on a cold cell);
* ``GET /metrics`` — Prometheus text exposition of the registry;
* ``GET /healthz`` / ``GET /v1/stats`` — liveness / resolution stats.

Every request is measured into the ``serve_latency_seconds`` histogram
(labelled by its resolution source) and mirrored as a
``serve_response`` event, so the same observability pillars that watch
the simulator watch the service.

:class:`ServerThread` runs the whole stack on a background thread with
its own event loop — the harness tests, the latency bench and the CI
smoke check all drive a real socket through it.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import JobError, ServeError, StoreError
from repro.obs import MetricsRegistry, Observer
from repro.serve.protocol import (
    error_payload,
    request_from_json,
    response_payload,
)
from repro.serve.service import SimulationService
from repro.store import ResultStore

#: Hard cap on request body size (a cell declaration is ~1 KiB).
MAX_BODY_BYTES = 1 << 20
#: Hard cap on one header line / the request line.
_MAX_LINE = 16 * 1024
#: Hard cap on header count per request.
_MAX_HEADERS = 100

#: Latency histogram buckets, seconds: sub-millisecond warm hits up
#: through multi-second cold simulations.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 502: "Bad Gateway",
}


class _HttpError(Exception):
    """Protocol-level failure mapped straight to a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_request(reader: asyncio.StreamReader) -> Optional[_HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(400, "request line too long") from None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise _HttpError(400, "truncated headers") from None
        if len(raw) > _MAX_LINE:
            raise _HttpError(400, "header line too long")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "too many headers")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _HttpError(400, "truncated body") from None
    return _HttpRequest(method, target, headers, body)


class GridServer:
    """Serve :class:`SimulationService` over a TCP socket."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8765,
        observer: Optional[Observer] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.obs = observer if observer is not None else service.obs
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Start the service and bind the socket.

        Raises ``OSError`` when the port is taken — callers (the CLI)
        turn that into a one-line startup error.
        """
        await self.service.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except BaseException:
            await self.service.close()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        self.obs.event("serve_started", 0, host=self.host, port=self.port,
                       store=self.service.store.root)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServeError("server not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        self.obs.event("serve_stopped", 0, host=self.host, port=self.port)

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    await self._respond(
                        writer, exc.status,
                        _json_body(error_payload(str(exc))),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        started = time.perf_counter()
        source = "-"
        try:
            status, body, content_type, source = await self._route(request)
        except ServeError as exc:
            status, content_type = 400, "application/json"
            body = _json_body(error_payload(str(exc)))
            source = "error"
        except JobError as exc:
            # The cell itself failed terminally (retries exhausted,
            # timeout): the request was valid, the backend was not.
            status, content_type = 502, "application/json"
            body = _json_body(error_payload(str(exc)))
            source = "error"
        except StoreError as exc:
            status, content_type = 400, "application/json"
            body = _json_body(error_payload(str(exc)))
            source = "error"
        except Exception as exc:  # pragma: no cover - defensive
            status, content_type = 500, "application/json"
            body = _json_body(error_payload(
                f"internal error: {type(exc).__name__}: {exc}"))
            source = "error"
        latency = time.perf_counter() - started
        if self.obs.metrics is not None:
            self.obs.metrics.counter(
                "serve_requests_total",
                "HTTP requests by method/path/status.",
                labelnames=("method", "path", "status"),
            ).inc(method=request.method, path=_metric_path(request.path),
                  status=status)
            self.obs.metrics.histogram(
                "serve_latency_seconds",
                "Request latency by resolution source.",
                labelnames=("source",),
                buckets=LATENCY_BUCKETS,
            ).observe(latency, source=source)
        self.obs.event("serve_response", 0, method=request.method,
                       path=request.path, status=status, source=source,
                       latency_ms=round(latency * 1000, 3))
        keep_alive = request.keep_alive and status < 500
        await self._respond(writer, status, body, keep_alive=keep_alive,
                            content_type=content_type)
        return keep_alive

    async def _route(
        self, request: _HttpRequest
    ) -> Tuple[int, bytes, str, str]:
        """Returns ``(status, body, content_type, source)``."""
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/v1/simulate":
            if method != "POST":
                return _method_not_allowed("POST")
            cell = request_from_json(request.body)
            started = time.perf_counter()
            report, source, digest = await self.service.resolve(cell)
            elapsed_ms = (time.perf_counter() - started) * 1000
            payload = response_payload(cell, digest, report, source,
                                       elapsed_ms)
            return 200, _json_body(payload), "application/json", source
        if path.startswith("/v1/cell/"):
            if method != "GET":
                return _method_not_allowed("GET")
            digest = path[len("/v1/cell/"):]
            payload = await asyncio.to_thread(
                self.service.store.get_digest, digest
            )
            if payload is None:
                return (404, _json_body(error_payload(
                    f"no stored cell under digest {digest[:12]}...")),
                    "application/json", "miss")
            return 200, _json_body(payload), "application/json", "store"
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            registry = self.obs.metrics
            text = registry.to_prometheus() if registry is not None else ""
            return (200, text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8", "metrics")
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            payload = {"status": "ok", "inflight": self.service.inflight}
            return 200, _json_body(payload), "application/json", "health"
        if path == "/v1/stats":
            if method != "GET":
                return _method_not_allowed("GET")
            payload = {
                "status": "ok",
                "service": self.service.stats.as_dict(),
                "store": self.service.store.stats.as_dict(),
                "inflight": self.service.inflight,
            }
            return 200, _json_body(payload), "application/json", "stats"
        return (404, _json_body(error_payload(f"no route for {path!r}")),
                "application/json", "miss")

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool,
        content_type: str = "application/json",
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _json_body(payload: object) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _method_not_allowed(allowed: str) -> Tuple[int, bytes, str, str]:
    return (405, _json_body(error_payload(f"use {allowed}")),
            "application/json", "error")


def _metric_path(path: str) -> str:
    """Collapse per-digest paths so metric cardinality stays bounded."""
    path = path.split("?", 1)[0]
    if path.startswith("/v1/cell/"):
        return "/v1/cell/:digest"
    return path


class ServerThread:
    """A real server on a background thread (tests, bench, smoke, CLI-free
    embedding).

    Starts the event loop, service and socket on a daemon thread and
    blocks until the port is bound (or re-raises the startup error in
    the caller).  ``stop()`` shuts the stack down and joins the thread.
    Usable as a context manager.
    """

    def __init__(
        self,
        store_root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        observer: Optional[Observer] = None,
        store_max_bytes: Optional[int] = None,
        shard_width: int = 2,
        **service_kwargs,
    ) -> None:
        self._store_root = store_root
        self._host = host
        self._requested_port = port
        self._observer = observer
        self._store_max_bytes = store_max_bytes
        self._shard_width = shard_width
        self._service_kwargs = service_kwargs
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.server: Optional[GridServer] = None
        self.service: Optional[SimulationService] = None
        self.port: Optional[int] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        observer = self._observer
        if observer is None:
            observer = Observer(metrics=MetricsRegistry())
        try:
            store = ResultStore(self._store_root, observer=observer,
                                shard_width=self._shard_width,
                                max_bytes=self._store_max_bytes)
            self.service = SimulationService(store, observer=observer,
                                             **self._service_kwargs)
            self.server = GridServer(self.service, host=self._host,
                                     port=self._requested_port,
                                     observer=observer)
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self.port = self.server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.close()
