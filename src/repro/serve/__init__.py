"""Simulation-as-a-service: the async grid server (``repro serve``).

The subsystem puts a service boundary in front of three layers that
already exist in isolation — the fault-tolerant job engine
(:mod:`repro.jobs`), the content-addressed result store
(:mod:`repro.store`) and fleet observability (:mod:`repro.obs`).
Clients declare a grid cell (benchmark, selector, scale, seed, config
overrides); the service computes the cell's existing store key and
resolves it through a three-tier path:

1. warm store hit — returned immediately from disk;
2. single-flight — identical in-flight requests coalesce onto one job;
3. cold dispatch — batched into the job engine with its timeout /
   retry / fault machinery, persisting and resolving as cells finish.

See ``docs/service.md`` for endpoints, schema and GC tuning, and
``repro bench`` for the warm/cold latency SLO recorded in
``BENCH_run.json``.
"""

from repro.serve.client import ServiceClient
from repro.serve.protocol import (
    CellRequest,
    error_payload,
    parse_cell_request,
    request_from_json,
    response_payload,
)
from repro.serve.server import GridServer, ServerThread
from repro.serve.service import ServiceStats, SimulationService
from repro.serve.smoke import run_smoke

__all__ = [
    "CellRequest",
    "GridServer",
    "ServerThread",
    "ServiceClient",
    "ServiceStats",
    "SimulationService",
    "error_payload",
    "parse_cell_request",
    "request_from_json",
    "response_payload",
    "run_smoke",
]
