"""Content-addressed result store for experiment grid cells.

Every grid cell is deterministic in ``(benchmark, selector, scale,
seed, config, code-version)``; :mod:`repro.store` turns that fact into
reuse.  :func:`cell_key` hashes the full parameter tuple into a stable
content address and :class:`ResultStore` persists the cell's
:class:`~repro.metrics.summary.MetricReport` under it as JSON, so a
rerun of an already-simulated cell is a file read instead of millions
of simulated basic-block events.

Invalidation is purely key-driven: change any parameter — including the
code version, which defaults to the working tree's git SHA — and the
address changes, leaving stale entries unreferenced rather than wrong.
See ``docs/experiments.md`` for the on-disk layout and semantics.
"""

from repro.store.keys import CellKey, cell_key, default_code_version
from repro.store.resultstore import GCStats, ResultStore, StoreStats

__all__ = [
    "CellKey",
    "cell_key",
    "default_code_version",
    "GCStats",
    "ResultStore",
    "StoreStats",
]
