"""Content addresses for grid cells.

A cell's address must change whenever anything that could change its
report changes, and must *not* change otherwise — reuse depends on the
first property for correctness and on the second for usefulness.  The
key therefore covers the full simulation input (benchmark, selector,
scale, seed, every config field) plus a *code version*, because the
simulator itself is an input: the same parameters under different code
may legitimately produce different numbers.

The code version defaults to the git SHA of the installed package's
working tree (falling back to a static marker outside a repo), so every
commit naturally starts from a cold store rather than serving results
computed by older code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig

#: Bumped when the key schema itself changes (field added/renamed), so
#: addresses minted by older code can never collide with new ones.
KEY_SCHEMA_VERSION = 1

#: Code version recorded when no git SHA is available (e.g. an
#: installed package outside a checkout).  Entries written under it are
#: only reusable on the exact same build, which is the safest claim we
#: can make without version control.
UNVERSIONED = "unversioned"

_cached_code_version: Optional[str] = None


def default_code_version() -> str:
    """Git SHA of the code that is running (cached per process)."""
    global _cached_code_version
    if _cached_code_version is None:
        # Imported here: repro.experiments imports the grid runner,
        # which imports this module.
        from repro.experiments.manifest import git_sha

        _cached_code_version = git_sha() or UNVERSIONED
    return _cached_code_version


@dataclass(frozen=True)
class CellKey:
    """The full identity of one grid cell, ready to hash."""

    benchmark: str
    selector: str
    scale: float
    seed: int
    config: SystemConfig
    code_version: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form; also stored beside the report so an
        entry is self-describing (the hash alone is one-way)."""
        return {
            "key_schema": KEY_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "selector": self.selector,
            "scale": self.scale,
            "seed": self.seed,
            "config": dataclasses.asdict(self.config),
            "code_version": self.code_version,
        }

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical JSON encoding of the key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cell_key(
    benchmark: str,
    selector: str,
    scale: float,
    seed: int,
    config: SystemConfig,
    code_version: Optional[str] = None,
) -> CellKey:
    """Build the content address of one ``(benchmark, selector)`` cell."""
    if code_version is None:
        code_version = default_code_version()
    return CellKey(
        benchmark=benchmark,
        selector=selector,
        scale=scale,
        seed=seed,
        config=config,
        code_version=code_version,
    )
