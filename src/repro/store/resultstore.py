"""The on-disk store: one JSON file per content address.

Layout (digest-prefix fan-out keeps directories small at scale)::

    <root>/
      ab/
        ab3f...e2.json      # {"store_version": 1, "key": {...}, "report": {...}}

``shard_width`` controls how many digest characters name the shard
directory: the default of 2 gives 256 shards (plenty up to a few
hundred thousand entries); a service-scale store can widen it to 3
(4096 shards) so that millions of cached cells keep per-directory
listings fast.  Widths are not cross-compatible — an entry written
under one width is a miss under another — so pick the width when the
store is created.

Entries are written atomically (temp file + ``os.replace``) so a killed
run can never leave a half-written report behind.  A corrupt or
unreadable entry is treated as a miss — the store is a cache, not a
source of truth — and is *quarantined* on detection (renamed to
``*.corrupt``, or removed when the rename fails) so it is never
re-parsed on every subsequent lookup; the ``store_corrupt_total``
counter and a ``store_corrupt`` event record each quarantine.  Reports
round-trip through :mod:`repro.analysis.serialize`, whose schema check
makes an entry written by an incompatible producer read as corrupt
(hence a miss) instead of as wrong numbers.

A store can be size-bounded: :meth:`ResultStore.gc` evicts
least-recently-*accessed* entries (every hit bumps the entry's mtime)
until the store fits a byte budget, and a store constructed with
``max_bytes`` runs that pass automatically every ``gc_interval`` puts.
Evicting is always safe — an evicted cell is deterministic in its key
and simply recomputes on the next request.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError, StoreError
from repro.metrics.summary import MetricReport
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.store.keys import CellKey

#: Bumped on incompatible changes to the entry payload format.
STORE_VERSION = 1

#: Suffix appended to a quarantined (corrupt) entry file.
QUARANTINE_SUFFIX = ".corrupt"

#: Length of a hex sha256 digest (entry file stem).
_DIGEST_LEN = 64


@dataclass
class StoreStats:
    """Per-instance traffic counters (hits/misses/puts/corrupt/GC)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    gc_passes: int = 0
    gc_evicted: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "corrupt": self.corrupt,
                "gc_passes": self.gc_passes, "gc_evicted": self.gc_evicted}


@dataclass
class GCStats:
    """What one :meth:`ResultStore.gc` pass did."""

    evicted: int
    evicted_bytes: int
    live: int
    live_bytes: int

    def as_dict(self) -> dict:
        return {"evicted": self.evicted, "evicted_bytes": self.evicted_bytes,
                "live": self.live, "live_bytes": self.live_bytes}


@dataclass
class ResultStore:
    """Content-addressed persistence for grid-cell metric reports."""

    root: str
    observer: Observer = field(default=NULL_OBSERVER, repr=False)
    #: Digest characters naming the shard directory (2 = 256 shards,
    #: 3 = 4096).  All readers/writers of one store must agree.
    shard_width: int = 2
    #: Byte budget enforced by automatic GC; ``None`` = unbounded.
    max_bytes: Optional[int] = None
    #: Puts between automatic GC passes (amortizes the store walk).
    gc_interval: int = 64
    stats: StoreStats = field(default_factory=StoreStats, init=False)
    _puts_since_gc: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise StoreError(
                f"store root exists and is not a directory: {self.root!r}"
            )
        if not 1 <= self.shard_width <= 8:
            raise StoreError(
                f"shard_width must be in 1..8, got {self.shard_width}"
            )
        if self.max_bytes is not None and self.max_bytes < 1:
            raise StoreError(
                f"max_bytes must be >= 1 or None, got {self.max_bytes}"
            )
        if self.gc_interval < 1:
            raise StoreError(
                f"gc_interval must be >= 1, got {self.gc_interval}"
            )

    # -- addressing ------------------------------------------------------
    def path_for(self, key: CellKey) -> str:
        return self._digest_path(key.digest)

    def _digest_path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:self.shard_width],
                            f"{digest}.json")

    # -- traffic ---------------------------------------------------------
    def get(self, key: CellKey) -> Optional[MetricReport]:
        """The stored report for ``key``, or ``None`` on a miss.

        A present-but-unreadable entry (truncated JSON, foreign schema)
        counts as a miss: it is quarantined so it is never re-parsed,
        and the caller recomputes and overwrites it.  A hit refreshes
        the entry's access time (the LRU signal :meth:`gc` evicts by).
        """
        # Imported here: repro.analysis pulls in the figure registry,
        # which imports the grid runner, which needs this module.
        from repro.analysis.serialize import report_from_dict

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("store_version") != STORE_VERSION:
                raise StoreError(
                    f"entry version {payload.get('store_version')!r}"
                )
            report = report_from_dict(payload["report"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        self._touch(path)
        self.observer.event("store_hit", 0, benchmark=key.benchmark,
                            selector=key.selector, digest=key.digest[:12])
        return report

    def get_digest(self, digest: str) -> Optional[dict]:
        """The raw entry payload stored under ``digest``, or ``None``.

        Entries are self-describing (the key rides beside the report),
        so this is the read path for callers that only know the content
        address — e.g. the service's ``GET /v1/cell/<digest>``.  The
        same corrupt-entry quarantine as :meth:`get` applies.
        """
        digest = digest.lower()
        if len(digest) != _DIGEST_LEN or any(
            c not in "0123456789abcdef" for c in digest
        ):
            raise StoreError(f"not a sha256 digest: {digest!r}")
        path = self._digest_path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("store_version") != STORE_VERSION:
                raise StoreError(
                    f"entry version {payload.get('store_version')!r}"
                )
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, ReproError):
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        self._touch(path)
        return payload

    def put(self, key: CellKey, report: MetricReport) -> str:
        """Persist ``report`` under ``key`` atomically; returns the path."""
        from repro.analysis.serialize import report_to_dict

        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        payload = {
            "store_version": STORE_VERSION,
            "key": key.to_dict(),
            "digest": key.digest,
            "report": report_to_dict(report),
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self.observer.event("store_put", 0, benchmark=key.benchmark,
                            selector=key.selector, digest=key.digest[:12])
        if self.max_bytes is not None:
            self._puts_since_gc += 1
            if self._puts_since_gc >= self.gc_interval:
                self.gc()
        return path

    # -- corruption ------------------------------------------------------
    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry out of the lookup namespace.

        The bytes are kept (renamed to ``*.corrupt``) for forensics;
        if even the rename fails the file is removed, because the one
        unacceptable outcome is re-parsing the same corrupt entry on
        every future lookup.
        """
        self.stats.corrupt += 1
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.observer.count("store_corrupt_total")
        self.observer.event("store_corrupt", 0,
                            entry=os.path.basename(path))

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh the access stamp GC evicts by (best-effort)."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    # -- garbage collection ----------------------------------------------
    def gc(self, max_bytes: Optional[int] = None) -> GCStats:
        """Evict least-recently-accessed entries down to a byte budget.

        ``max_bytes`` defaults to the store's configured budget.  After
        the pass the surviving entries total at most the budget — a
        single entry larger than the whole budget is evicted like any
        other, so the bound is unconditional.  Empty shard directories
        left behind are pruned.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        if budget is None:
            raise StoreError(
                "gc needs a byte budget: pass max_bytes or construct the "
                "store with one"
            )
        if budget < 1:
            raise StoreError(f"gc budget must be >= 1, got {budget}")
        self._puts_since_gc = 0
        entries: List[Tuple[float, str, int]] = []
        total = 0
        for path in self._entry_paths():
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, path, info.st_size))
            total += info.st_size
        evicted = 0
        evicted_bytes = 0
        # Oldest access first; path breaks mtime ties deterministically.
        for _, path, size in sorted(entries):
            if total <= budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
            evicted_bytes += size
        if evicted:
            self._prune_empty_shards()
        self.stats.gc_passes += 1
        self.stats.gc_evicted += evicted
        live = len(entries) - evicted
        if evicted:
            self.observer.count("store_gc_evicted_total", evicted)
            self.observer.event("store_gc", 0, evicted=evicted,
                                evicted_bytes=evicted_bytes,
                                live=live, live_bytes=total,
                                budget_bytes=budget)
        return GCStats(evicted=evicted, evicted_bytes=evicted_bytes,
                       live=live, live_bytes=total)

    def _prune_empty_shards(self) -> None:
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                os.rmdir(shard_dir)  # only succeeds when empty
            except OSError:
                pass

    # -- maintenance -----------------------------------------------------
    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def total_bytes(self) -> int:
        """Bytes currently held by live entries."""
        total = 0
        for path in self._entry_paths():
            try:
                total += os.stat(path).st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
