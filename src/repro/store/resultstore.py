"""The on-disk store: one JSON file per content address.

Layout (two-character fan-out keeps directories small at scale)::

    <root>/
      ab/
        ab3f...e2.json      # {"store_version": 1, "key": {...}, "report": {...}}

Entries are written atomically (temp file + ``os.replace``) so a killed
run can never leave a half-written report behind; a corrupt or
unreadable entry is treated as a miss and silently recomputed, because
the store is a cache, not a source of truth.  Reports round-trip
through :mod:`repro.analysis.serialize`, whose schema check makes an
entry written by an incompatible producer read as corrupt (hence a
miss) instead of as wrong numbers.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ReproError, StoreError
from repro.metrics.summary import MetricReport
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.store.keys import CellKey

#: Bumped on incompatible changes to the entry payload format.
STORE_VERSION = 1


@dataclass
class StoreStats:
    """Per-instance traffic counters (hits/misses/puts/corrupt)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "corrupt": self.corrupt}


@dataclass
class ResultStore:
    """Content-addressed persistence for grid-cell metric reports."""

    root: str
    observer: Observer = field(default=NULL_OBSERVER, repr=False)
    stats: StoreStats = field(default_factory=StoreStats, init=False)

    def __post_init__(self) -> None:
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise StoreError(
                f"store root exists and is not a directory: {self.root!r}"
            )

    # -- addressing ------------------------------------------------------
    def path_for(self, key: CellKey) -> str:
        digest = key.digest
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # -- traffic ---------------------------------------------------------
    def get(self, key: CellKey) -> Optional[MetricReport]:
        """The stored report for ``key``, or ``None`` on a miss.

        A present-but-unreadable entry (truncated JSON, foreign schema)
        counts as a miss: the caller recomputes and overwrites it.
        """
        # Imported here: repro.analysis pulls in the figure registry,
        # which imports the grid runner, which needs this module.
        from repro.analysis.serialize import report_from_dict

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("store_version") != STORE_VERSION:
                raise StoreError(
                    f"entry version {payload.get('store_version')!r}"
                )
            report = report_from_dict(payload["report"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        self.observer.event("store_hit", 0, benchmark=key.benchmark,
                            selector=key.selector, digest=key.digest[:12])
        return report

    def put(self, key: CellKey, report: MetricReport) -> str:
        """Persist ``report`` under ``key`` atomically; returns the path."""
        from repro.analysis.serialize import report_to_dict

        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        payload = {
            "store_version": STORE_VERSION,
            "key": key.to_dict(),
            "digest": key.digest,
            "report": report_to_dict(report),
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self.observer.event("store_put", 0, benchmark=key.benchmark,
                            selector=key.selector, digest=key.digest[:12])
        return path

    # -- maintenance -----------------------------------------------------
    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
