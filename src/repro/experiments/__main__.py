"""Regenerate every paper figure from the command line.

Usage::

    python -m repro.experiments                 # all figures, scale 1.0
    python -m repro.experiments --scale 0.25    # quick pass
    python -m repro.experiments --figure fig09 --figure fig17
    python -m repro.experiments --markdown out.md
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.figures import ALL_FIGURES, compute_figure
from repro.experiments.render import figure_to_markdown, figure_to_text, grid_banner
from repro.experiments.runner import run_grid


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's figures on the synthetic suite.",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=1,
                        help="execution seed (default 1)")
    parser.add_argument("--figure", action="append", dest="figures",
                        choices=sorted(ALL_FIGURES),
                        help="figure id to compute (repeatable; default all)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the tables as Markdown to PATH")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes to fan grid cells over (default 1; "
                             "results are identical at any worker count)")
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "batched", "batched-numpy",
                                 "batched-python"],
                        help="grid execution backend: the per-cell job "
                             "engine, or one vectorized fleet (results "
                             "are bit-identical; see docs/batching.md)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="content-addressed result store directory: "
                             "already-computed cells are reused, freshly "
                             "computed ones persisted as they finish (an "
                             "interrupted run resumes from its missing "
                             "cells; see docs/experiments.md)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per cell after a worker crash or "
                             "timeout (default 2)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any cell running longer than "
                             "this (workers > 1 only; default none)")
    parser.add_argument("--validate", action="store_true",
                        help="check every paper claim against the grid and "
                             "exit nonzero if any fails")
    parser.add_argument("--save-grid", metavar="PATH",
                        help="save the simulated grid as JSON for later reuse")
    parser.add_argument("--load-grid", metavar="PATH",
                        help="skip simulation and compute figures from a "
                             "grid saved with --save-grid")
    parser.add_argument("--manifest", metavar="DIR", default=None,
                        help="write a manifest.json provenance record into "
                             "DIR (default: next to --markdown/--save-grid "
                             "output when one is given)")
    args = parser.parse_args(argv)

    wanted = args.figures if args.figures else list(ALL_FIGURES)
    # Results land next to whichever artifact the caller asked for; an
    # explicit --manifest DIR overrides.
    manifest_dir = args.manifest
    if manifest_dir is None:
        for artifact in (args.markdown, args.save_grid):
            if artifact:
                manifest_dir = os.path.dirname(artifact) or "."
                break
    started = time.time()
    if args.load_grid:
        from repro.analysis.serialize import load_grid

        grid = load_grid(args.load_grid)
        print(f"grid loaded from {args.load_grid} "
              f"(scale={grid.scale}, seed={grid.seed})\n")
        manifest_dir = None  # nothing was simulated; keep the original
    else:
        print(grid_banner(args.scale, args.seed))
        grid = run_grid(scale=args.scale, seed=args.seed,
                        workers=args.workers, manifest_dir=manifest_dir,
                        store=args.store, max_retries=args.max_retries,
                        job_timeout=args.job_timeout, backend=args.backend)
        print(f"grid simulated in {time.time() - started:.1f}s\n")
        if manifest_dir is not None:
            print(f"manifest written to "
                  f"{os.path.join(manifest_dir, 'manifest.json')}\n")
    if args.save_grid:
        from repro.analysis.serialize import save_grid

        save_grid(grid, args.save_grid)
        print(f"grid saved to {args.save_grid}\n")

    if args.validate:
        from repro.experiments.validation import render_validation, validate_grid

        results = validate_grid(grid)
        print(render_validation(results))
        return 0 if all(r.passed for r in results) else 1

    markdown_parts = []
    for figure_id in wanted:
        figure = compute_figure(figure_id, grid)
        print(figure_to_text(figure))
        print()
        markdown_parts.append(figure_to_markdown(figure))

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(markdown_parts) + "\n")
        print(f"wrote Markdown tables to {args.markdown}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
