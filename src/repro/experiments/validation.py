"""Machine-checkable paper claims.

EXPERIMENTS.md records paper-vs-measured prose; this module encodes the
*checkable core* of every claim as a named predicate over an
:class:`~repro.experiments.runner.ExperimentGrid`, so a single call —
or ``python -m repro.experiments --validate`` — answers "does this
build still reproduce the paper?" with a pass/fail per claim.

The thresholds are the same deliberately-loose bounds the benchmark
harness asserts: directions and orderings, not absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.figures import compute_figure
from repro.experiments.runner import ExperimentGrid


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one paper claim against a grid."""

    claim_id: str
    description: str
    passed: bool
    detail: str


def _mean(values) -> float:
    cleaned = [v for v in values if v is not None]
    return fmean(cleaned) if cleaned else float("nan")


def _check_fig07(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig07", grid)
    spanned = _mean(figure.column("delta_spanned_pp"))
    executed = _mean(figure.column("delta_executed_pp"))
    return (spanned > 0 and executed > 0,
            f"mean delta spanned {spanned:+.1f}pp, executed {executed:+.1f}pp")


def _check_fig08(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig08", grid)
    expansion = _mean(figure.column("code_expansion_ratio"))
    transitions = _mean(figure.column("region_transition_ratio"))
    return (expansion < 1.0 and transitions < 0.95,
            f"expansion x{expansion:.3f}, transitions x{transitions:.3f} "
            "(paper 0.92 / 0.80)")


def _check_fig09(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig09", grid)
    pairs = [
        (net, lei)
        for net, lei in zip(figure.column("net"), figure.column("lei"))
        if net is not None and lei is not None
    ]
    ok = len(pairs) >= 10 and all(lei <= net for net, lei in pairs)
    reduction = 1 - _mean(l for _, l in pairs) / _mean(n for n, _ in pairs)
    return ok, f"LEI <= NET on {len(pairs)} benchmarks, mean -{100*reduction:.0f}% (paper -18%)"


def _check_fig10(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig10", grid)
    ratio = _mean(figure.column("lei_over_net"))
    return ratio < 0.85, f"counter ratio x{ratio:.3f} (paper ~0.67)"


def _check_fig11(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig11", grid)
    net = _mean(figure.column("net_pct"))
    lei = _mean(figure.column("lei_pct"))
    return (net > 0.5 and lei > 0.8 * net,
            f"duplication {net:.1f}% (NET) / {lei:.1f}% (LEI)")


def _check_fig12(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig12", grid)
    net = _mean(figure.column("net_pct"))
    lei = _mean(figure.column("lei_pct"))
    fanouts = {name: values[figure.columns.index("net_max_dominator_fanout")]
               for name, values in figure.rows}
    eon = fanouts.pop("eon", 0)
    ok = net > 10 and lei >= 0.9 * net and eon >= max(fanouts.values(), default=0)
    return ok, (f"dominated {net:.0f}%/{lei:.0f}%, eon fan-out {eon:.0f} "
                f"vs others' max {max(fanouts.values(), default=0):.0f}")


def _check_fig16(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig16", grid)
    cnet = _mean(figure.column("combined_net_over_net"))
    clei = _mean(figure.column("combined_lei_over_lei"))
    return (cnet < 1.0 and clei < cnet,
            f"x{cnet:.3f} (NET), x{clei:.3f} (LEI) (paper 0.85 / 0.64)")


def _check_fig17(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig17", grid)
    net = _mean(figure.column("net"))
    cnet = _mean(figure.column("combined_net"))
    lei = _mean(figure.column("lei"))
    clei = _mean(figure.column("combined_lei"))
    net_cut = 1 - cnet / net
    lei_cut = 1 - clei / lei
    # Both must shrink meaningfully; the LEI-benefits-more ordering is
    # checked with slack because it is mildly scale-sensitive (it holds
    # strictly at scale 1.0, where the benches assert it).
    return (net_cut > 0.05 and lei_cut > 0.05 and lei_cut > net_cut * 0.75,
            f"cover cut {100*net_cut:.0f}% (NET) / {100*lei_cut:.0f}% (LEI) "
            "(paper 15% / 28%)")


def _check_fig18(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig18", grid)
    cnet = _mean(figure.column("combined_net_pct"))
    clei = _mean(figure.column("combined_lei_pct"))
    return clei > cnet, f"memory {cnet:.0f}% (NET) < {clei:.0f}% (LEI), ordering as in paper"


def _check_fig19(grid) -> Tuple[bool, str]:
    figure = compute_figure("fig19", grid)
    cn = _mean(figure.column("cn_over_net"))
    cl = _mean(figure.column("cl_over_lei"))
    return (cn < 0.9 and cl < 0.9,
            f"stub ratio x{cn:.2f} (NET), x{cl:.2f} (LEI) (paper 0.82 / 0.74)")


def _check_hitrate(grid) -> Tuple[bool, str]:
    figure = compute_figure("hitrate", grid)
    floor = 93.0 if grid.scale >= 1.0 else 85.0
    means = {column: _mean(figure.column(column)) for column in figure.columns}
    ok = all(value > floor for value in means.values())
    return ok, ", ".join(f"{k}={v:.1f}%" for k, v in means.items())


def _check_expdom(grid) -> Tuple[bool, str]:
    figure = compute_figure("expdom", grid)
    net = _mean(figure.column("net_regions"))
    cnet = _mean(figure.column("cnet_regions"))
    dup = _mean(figure.column("net_dup_insts"))
    cdup = _mean(figure.column("cnet_dup_insts"))
    region_cut = 1 - cnet / net
    dup_cut = 1 - cdup / dup
    return (region_cut > 0.15 and dup_cut > region_cut,
            f"dominated regions -{100*region_cut:.0f}% (paper ~40%), "
            f"duplication -{100*dup_cut:.0f}% (paper ~65%)")


def _check_summary(grid) -> Tuple[bool, str]:
    figure = compute_figure("summary", grid)
    values = {
        column: _mean(figure.column(column))
        for column in ("code_expansion", "exit_stubs", "region_transitions",
                       "cover_set_90")
    }
    ok = (values["code_expansion"] < 1.0 and values["exit_stubs"] < 0.8
          and values["region_transitions"] < 0.7 and values["cover_set_90"] < 0.75)
    return ok, ", ".join(f"{k} x{v:.2f}" for k, v in values.items())


#: claim id -> (description, checker).
CLAIMS: Dict[str, Tuple[str, Callable[[ExperimentGrid], Tuple[bool, str]]]] = {
    "fig07": ("LEI spans and executes more cycles than NET", _check_fig07),
    "fig08": ("LEI expands less code and transitions less than NET", _check_fig08),
    "fig09": ("LEI's 90% cover set is never larger, mean smaller", _check_fig09),
    "fig10": ("LEI needs roughly two-thirds of NET's counters", _check_fig10),
    "fig11": ("exit-dominated duplication exists; LEI has its share", _check_fig11),
    "fig12": ("many traces are exit-dominated; eon is the fan-out outlier", _check_fig12),
    "fig16": ("combination cuts transitions, more for LEI", _check_fig16),
    "fig17": ("combination shrinks cover sets, more for LEI", _check_fig17),
    "fig18": ("combined LEI needs more observation memory than combined NET", _check_fig18),
    "fig19": ("combination removes a significant share of exit stubs", _check_fig19),
    "hitrate": ("all selectors keep execution overwhelmingly cached", _check_hitrate),
    "expdom": ("combination removes dominated regions, duplication faster", _check_expdom),
    "summary": ("combined LEI beats NET on all four conclusion metrics", _check_summary),
}


def validate_grid(grid: ExperimentGrid,
                  claims: Optional[List[str]] = None) -> List[ClaimResult]:
    """Check every (or the named) paper claims against a grid."""
    wanted = claims if claims is not None else list(CLAIMS)
    results: List[ClaimResult] = []
    for claim_id in wanted:
        description, checker = CLAIMS[claim_id]
        try:
            passed, detail = checker(grid)
        except Exception as exc:  # a broken figure is a failed claim
            passed, detail = False, f"checker raised {type(exc).__name__}: {exc}"
        results.append(ClaimResult(claim_id, description, passed, detail))
    return results


def render_validation(results: List[ClaimResult]) -> str:
    lines = ["paper-claim validation:"]
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"  [{status}] {result.claim_id:8s} {result.description}")
        lines.append(f"         {result.detail}")
    failed = sum(1 for r in results if not r.passed)
    lines.append(f"{len(results) - failed}/{len(results)} claims hold")
    return "\n".join(lines)
