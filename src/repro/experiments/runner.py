"""Run the (benchmark x selector) grid the figures are computed from."""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.config import SystemConfig
from repro.experiments.manifest import build_manifest, write_manifest
from repro.metrics.summary import MetricReport
from repro.selection.registry import SELECTOR_NAMES
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark


def _grid_cell(task: Tuple[str, str, float, int, SystemConfig]) -> Tuple[str, str, MetricReport]:
    """Worker: simulate one cell (used by the parallel grid runner).

    Builds the program inside the worker — programs hold plain model
    objects and are cheap to rebuild, while shipping them across
    processes would be slower than rebuilding.
    """
    bench, selector, scale, seed, config = task
    program = build_benchmark(bench, scale=scale)
    report = MetricReport.from_result(simulate(program, selector, config, seed=seed))
    return bench, selector, report


@dataclass
class ExperimentGrid:
    """Metric reports for every (benchmark, selector) cell."""

    scale: float
    seed: int
    config: SystemConfig
    reports: Dict[Tuple[str, str], MetricReport] = field(default_factory=dict)

    def report(self, benchmark: str, selector: str) -> MetricReport:
        return self.reports[(benchmark, selector)]

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        seen = []
        for bench, _ in self.reports:
            if bench not in seen:
                seen.append(bench)
        return tuple(seen)

    @property
    def selectors(self) -> Tuple[str, ...]:
        seen = []
        for _, selector in self.reports:
            if selector not in seen:
                seen.append(selector)
        return tuple(seen)


def run_grid(
    scale: float = 1.0,
    seed: int = 1,
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Iterable[str]] = None,
    selectors: Optional[Iterable[str]] = None,
    workers: int = 1,
    manifest_dir: Optional[str] = None,
) -> ExperimentGrid:
    """Simulate every cell and compute its metric report.

    This is the expensive call behind every figure (a full-scale grid
    simulates roughly twenty million basic-block events); the benchmark
    harness runs it once per session and shares the grid.  ``workers``
    above 1 fans cells out over processes — results are bit-identical
    to the serial run because every cell is deterministic in
    ``(benchmark, selector, scale, seed, config)``.

    ``manifest_dir`` writes a ``manifest.json`` provenance record
    (selectors, benchmarks, seed, scale, config, git SHA, elapsed time)
    into that directory once the grid completes.
    """
    started = time.monotonic()
    config = config if config is not None else SystemConfig()
    bench_list = tuple(benchmarks) if benchmarks is not None else benchmark_names()
    selector_list = tuple(selectors) if selectors is not None else SELECTOR_NAMES
    grid = ExperimentGrid(scale=scale, seed=seed, config=config)
    tasks = [
        (bench, selector, scale, seed, config)
        for bench in bench_list
        for selector in selector_list
    ]
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            bench, selector, report = _grid_cell(task)
            grid.reports[(bench, selector)] = report
    else:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            for bench, selector, report in pool.map(_grid_cell, tasks):
                grid.reports[(bench, selector)] = report
        # pool.map preserves task order, so grid iteration order matches
        # the serial runner exactly.
    if manifest_dir is not None:
        write_manifest(manifest_dir, build_manifest(
            selectors=selector_list,
            benchmarks=bench_list,
            seed=seed,
            scale=scale,
            config=config,
            elapsed_seconds=time.monotonic() - started,
            extra={"workers": workers, "cells": len(tasks)},
        ))
    return grid
