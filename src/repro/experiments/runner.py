"""Run the (benchmark x selector) grid the figures are computed from.

The grid is the expensive heart of the reproduction — a full-scale run
simulates roughly twenty million basic-block events — so it executes on
the fault-tolerant engine in :mod:`repro.jobs` (per-cell retry on
worker crash, optional timeout, lifecycle events) and can be backed by
the content-addressed store in :mod:`repro.store` (an already-computed
cell is a file read; an interrupted grid resumes from whatever cells it
finished).  See ``docs/experiments.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments.manifest import build_manifest, write_manifest
from repro.jobs.engine import Job, JobEngine
from repro.jobs.faults import FaultInjector
from repro.metrics.summary import MetricReport
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.telemetry import FleetTelemetry, worker_observer
from repro.selection.registry import SELECTOR_NAMES
from repro.store import ResultStore, cell_key
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

#: ``run_grid`` execution backends: the job-engine path, or one fleet
#: through :mod:`repro.batch` (optionally pinning the array substrate).
GRID_BACKENDS = ("serial", "batched", "batched-numpy", "batched-python")


def _grid_cell(
    task: Tuple[str, str, float, int, SystemConfig, bool]
) -> Tuple[str, str, MetricReport]:
    """Worker: simulate one cell (runs in a job-engine worker process).

    Builds the program inside the worker — programs hold plain model
    objects and are cheap to rebuild, while shipping them across
    processes would be slower than rebuilding.  The cell records into
    the process-local worker observer when the engine activated one
    (``run_grid(telemetry=True)``); otherwise ``worker_observer()`` is
    the null observer and the simulation runs uninstrumented.
    """
    bench, selector, scale, seed, config, fast = task
    program = build_benchmark(bench, scale=scale)
    report = MetricReport.from_result(
        simulate(program, selector, config, seed=seed, fast=fast,
                 observer=worker_observer())
    )
    return bench, selector, report


@dataclass
class ExperimentGrid:
    """Metric reports for every (benchmark, selector) cell."""

    scale: float
    seed: int
    config: SystemConfig
    reports: Dict[Tuple[str, str], MetricReport] = field(default_factory=dict)
    #: Merged fleet telemetry (``run_grid(telemetry=True)`` only).
    telemetry: Optional[FleetTelemetry] = None

    def report(self, benchmark: str, selector: str) -> MetricReport:
        return self.reports[(benchmark, selector)]

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(bench for bench, _ in self.reports))

    @property
    def selectors(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(selector for _, selector in self.reports))


def run_grid(
    scale: float = 1.0,
    seed: int = 1,
    config: Optional[SystemConfig] = None,
    benchmarks: Optional[Iterable[str]] = None,
    selectors: Optional[Iterable[str]] = None,
    workers: int = 1,
    manifest_dir: Optional[str] = None,
    store: Optional[Union[ResultStore, str]] = None,
    observer: Optional[Observer] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    backoff: float = 0.05,
    faults: Optional[FaultInjector] = None,
    code_version: Optional[str] = None,
    fast: bool = True,
    telemetry: bool = False,
    telemetry_out: Optional[str] = None,
    telemetry_ring: Optional[int] = None,
    backend: str = "serial",
    fleet_max_lanes: Optional[int] = None,
) -> ExperimentGrid:
    """Simulate every cell and compute its metric report.

    ``workers`` above 1 fans cells out over worker processes through
    the job engine — results are bit-identical to the serial run
    because every cell is deterministic in ``(benchmark, selector,
    scale, seed, config)``, and a crashed or timed-out worker costs one
    cell's retry (``max_retries``, ``job_timeout``), not the sweep.

    ``store`` (a :class:`~repro.store.ResultStore` or a directory path)
    makes the grid restartable and rerunnable: cells already present
    are served from disk without simulating, and every freshly computed
    cell is persisted *as it completes*, so a run interrupted anywhere
    resumes with only its missing cells.  ``code_version`` pins the
    store address component that normally tracks the git SHA.

    ``manifest_dir`` writes a ``manifest.json`` provenance record
    (selectors, benchmarks, seed, scale, config, git SHA, elapsed time)
    into that directory once the grid completes.  ``faults`` injects
    deterministic worker failures (tests only).

    ``fast=False`` pins every cell to the reference pull-generator
    pipeline instead of the fused fast path; the results are
    bit-identical either way (``tests/test_fast_path.py``), so this
    exists purely for debugging and cross-checking.

    ``telemetry=True`` records every cell's metrics, span profile and
    event tail inside its worker and merges the reports in the parent
    under ``job_id``/``worker`` labels — the result is
    ``grid.telemetry`` (a :class:`~repro.obs.telemetry.FleetTelemetry`),
    whose merged counter totals are bit-identical whether the grid ran
    serial or parallel.  ``telemetry_out`` additionally writes the
    merged document as JSON (consumed by ``repro obs report``);
    ``telemetry_ring`` sizes each worker's event-tail ring buffer
    (metrics and profile data are never dropped regardless).

    ``backend="batched"`` computes every missing cell as one fleet
    through :func:`repro.batch.run_fleet` instead of the job engine —
    vectorized over SoA state when numpy is installed, bit-identical
    to the serial run either way (``batched-numpy``/``batched-python``
    pin the array substrate; see ``docs/batching.md``).  The store
    interaction is unchanged: cached cells are served from disk and
    fresh ones persisted.  ``workers`` is ignored (a fleet is one
    process); per-worker ``telemetry`` and the reference pipeline
    (``fast=False``) need per-cell workers and are ConfigErrors.
    ``fleet_max_lanes`` caps the fleet's live lane population —
    remaining cells stream from a queue into freed slots, bounding
    memory at the cap with bit-identical results (see
    :func:`repro.batch.run_fleet`).
    """
    started = time.monotonic()
    if backend not in GRID_BACKENDS:
        raise ConfigError(
            f"unknown grid backend {backend!r}: expected one of "
            f"{', '.join(GRID_BACKENDS)}"
        )
    batched = backend != "serial"
    if batched and (telemetry or telemetry_out is not None):
        raise ConfigError(
            "telemetry requires per-cell workers: use backend='serial' "
            "(batched lanes run unobserved; fleet progress is reported "
            "at batch granularity)"
        )
    if batched and not fast:
        raise ConfigError(
            "fast=False pins the reference pull-generator pipeline, "
            "which has no batched equivalent: use backend='serial'"
        )
    if batched and faults is not None:
        raise ConfigError(
            "fault injection drives the job engine: use backend='serial'"
        )
    if fleet_max_lanes is not None and not batched:
        raise ConfigError(
            "fleet_max_lanes is a batched-backend knob: use "
            "backend='batched' (or a pinned substrate variant)"
        )
    config = config if config is not None else SystemConfig()
    bench_list = tuple(benchmarks) if benchmarks is not None else benchmark_names()
    selector_list = tuple(selectors) if selectors is not None else SELECTOR_NAMES
    obs = observer if observer is not None else NULL_OBSERVER
    fleet: Optional[FleetTelemetry] = None
    if telemetry or telemetry_out is not None:
        fleet = (FleetTelemetry(ring_capacity=telemetry_ring)
                 if telemetry_ring is not None else FleetTelemetry())
        # Route the parent's own lifecycle events (job engine, store)
        # into the fleet log alongside the worker tails.
        obs = fleet.attach_parent(observer)
    if isinstance(store, str):
        store = ResultStore(store, observer=obs)
    grid = ExperimentGrid(scale=scale, seed=seed, config=config,
                          telemetry=fleet)

    cells = [
        (bench, selector)
        for bench in bench_list
        for selector in selector_list
    ]
    reports: Dict[Tuple[str, str], MetricReport] = {}
    keys = {}
    missing = []
    for cell in cells:
        if store is not None:
            key = cell_key(cell[0], cell[1], scale, seed, config,
                           code_version=code_version)
            keys[cell] = key
            cached = store.get(key)
            if cached is not None:
                reports[cell] = cached
                continue
        missing.append(cell)

    if missing and batched:
        from repro.batch import BatchCell, run_fleet

        fleet_cells = [BatchCell(bench, selector, scale=scale, seed=seed)
                       for bench, selector in missing]
        fleet_backend = backend[len("batched-"):] if "-" in backend else "auto"
        result = run_fleet(fleet_cells, config=config,
                           backend=fleet_backend, observer=obs,
                           max_lanes=fleet_max_lanes)
        for fleet_cell, cell in zip(fleet_cells, missing):
            report = result.reports[fleet_cell]
            reports[cell] = report
            if store is not None:
                store.put(keys[cell], report)
    elif missing:
        jobs = [
            Job(f"{bench}:{selector}",
                (bench, selector, scale, seed, config, fast))
            for bench, selector in missing
        ]
        cell_by_job = {job.job_id: cell for job, cell in zip(jobs, missing)}

        def persist(job_id: str, result: Tuple[str, str, MetricReport]) -> None:
            if store is not None:
                store.put(keys[cell_by_job[job_id]], result[2])

        engine = JobEngine(
            _grid_cell,
            workers=min(workers, len(jobs)),
            timeout=job_timeout,
            max_retries=max_retries,
            backoff=backoff,
            observer=obs,
            faults=faults,
            on_complete=persist,
            telemetry=fleet,
        )
        outcomes = engine.run(jobs)
        for job in jobs:
            bench, selector, report = outcomes[job.job_id].result
            reports[(bench, selector)] = report

    # Fill in cell order, so grid iteration matches the serial runner
    # exactly no matter which cells were cached or computed first.
    for cell in cells:
        grid.reports[cell] = reports[cell]

    if fleet is not None and telemetry_out is not None:
        fleet.write(telemetry_out)

    if manifest_dir is not None:
        extra = {"workers": workers, "cells": len(cells),
                 "backend": backend}
        if store is not None:
            extra["store"] = store.stats.as_dict()
        write_manifest(manifest_dir, build_manifest(
            selectors=selector_list,
            benchmarks=bench_list,
            seed=seed,
            scale=scale,
            config=config,
            elapsed_seconds=time.monotonic() - started,
            extra=extra,
        ))
    return grid
