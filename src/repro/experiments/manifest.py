"""Run manifests: the provenance record written next to results.

Every experiment invocation that produces an artifact also writes a
``manifest.json`` beside it recording *what produced the numbers*:
selectors, benchmarks, seed, scale, the full config dict, the git SHA
of the working tree (when available), the command line, and elapsed
wall time.  A figure or grid file without its manifest is
unreproducible; with it, ``python -m repro.experiments`` re-creates the
artifact bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import time
from typing import Dict, Iterable, Optional

from repro.config import SystemConfig

MANIFEST_NAME = "manifest.json"
#: Schema version, bumped on incompatible manifest changes.
MANIFEST_VERSION = 1


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git.

    ``cwd`` defaults to this package's own directory so the manifest
    records the SHA of the *code that ran*, not of wherever the user
    happened to invoke it from.
    """
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def build_manifest(
    *,
    selectors: Iterable[str],
    benchmarks: Iterable[str],
    seed: int,
    scale: float,
    config: SystemConfig,
    elapsed_seconds: Optional[float] = None,
    command: Optional[Iterable[str]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the manifest dict (pure; does not touch the filesystem)."""
    manifest: Dict[str, object] = {
        "manifest_version": MANIFEST_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "selectors": list(selectors),
        "benchmarks": list(benchmarks),
        "seed": seed,
        "scale": scale,
        "config": dataclasses.asdict(config),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "command": list(command) if command is not None else sys.argv,
    }
    if elapsed_seconds is not None:
        manifest["elapsed_seconds"] = round(elapsed_seconds, 3)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(directory: str, manifest: Dict[str, object]) -> str:
    """Write ``manifest.json`` into ``directory``; returns its path."""
    os.makedirs(directory or ".", exist_ok=True)
    path = os.path.join(directory or ".", MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_manifest(directory_or_path: str) -> Dict[str, object]:
    """Read a manifest from a directory or an explicit file path."""
    path = directory_or_path
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
