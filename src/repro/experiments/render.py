"""Plain-text and Markdown rendering of figure results."""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures import FigureResult


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) >= 10:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def figure_to_text(figure: FigureResult, width: int = 14) -> str:
    """Render a figure as an aligned plain-text table."""
    header = ["benchmark"] + list(figure.columns)
    lines = [figure.title]
    lines.append("  ".join(h.rjust(width) if i else h.ljust(10)
                           for i, h in enumerate(header)))
    for name, values in figure.rows:
        cells = [name.ljust(10)] + [
            _format_value(v).rjust(width) for v in values
        ]
        lines.append("  ".join(cells))
    mean_cells = ["mean".ljust(10)] + [
        _format_value(v).rjust(width) for v in figure.means
    ]
    lines.append("  ".join(mean_cells))
    lines.append(figure.paper_note)
    return "\n".join(lines)


def figure_to_markdown(figure: FigureResult) -> str:
    """Render a figure as a GitHub-flavoured Markdown table."""
    header = ["benchmark"] + list(figure.columns)
    lines = [f"### {figure.title}", ""]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for name, values in figure.rows:
        lines.append(
            "| " + " | ".join([name] + [_format_value(v) for v in values]) + " |"
        )
    lines.append(
        "| **mean** | " + " | ".join(_format_value(v) for v in figure.means) + " |"
    )
    lines.append("")
    lines.append(f"*{figure.paper_note}*")
    return "\n".join(lines)


def grid_banner(scale: float, seed: int) -> str:
    return (
        f"(benchmark x selector) grid at scale={scale}, seed={seed}; "
        "12 synthetic SPECint2000 stand-ins x {net, lei, combined-net, "
        "combined-lei}"
    )
