"""Per-figure experiment harness.

* :mod:`~repro.experiments.runner` — runs the (benchmark x selector)
  grid once, with caching, producing one
  :class:`~repro.metrics.summary.MetricReport` per cell;
* :mod:`~repro.experiments.figures` — one function per paper figure /
  reported statistic, mapping a grid to rows that mirror the paper's
  chart series;
* :mod:`~repro.experiments.render` — plain-text and Markdown tables;
* ``python -m repro.experiments`` — regenerate every figure at a chosen
  scale and print (or write) the tables.
"""

from repro.experiments.runner import ExperimentGrid, run_grid
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    compute_figure,
    figure_ids,
)
from repro.experiments.render import figure_to_markdown, figure_to_text

__all__ = [
    "ExperimentGrid",
    "run_grid",
    "FigureResult",
    "ALL_FIGURES",
    "compute_figure",
    "figure_ids",
    "figure_to_text",
    "figure_to_markdown",
]
