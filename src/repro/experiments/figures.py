"""One computation per paper figure / reported statistic.

Every public ``fig*``/stat function maps an
:class:`~repro.experiments.runner.ExperimentGrid` to a
:class:`FigureResult` whose rows mirror the series the paper plots.
``paper_note`` records what the original reports, so the rendered
tables double as the paper-vs-measured record in EXPERIMENTS.md.

Relative values follow the paper's conventions: "X relative to Y" is
the ratio X/Y (Figures 8, 10, 16, 19), cycle-ratio deltas are
percentage points (Figure 7), and cover sets are absolute region
counts (Figures 9, 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentGrid
from repro.metrics.summary import MetricReport, safe_ratio

Value = Optional[float]


@dataclass(frozen=True)
class FigureResult:
    """Rows of one reproduced figure."""

    figure_id: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[str, Tuple[Value, ...]], ...]
    paper_note: str

    @property
    def means(self) -> Tuple[Value, ...]:
        """Column-wise means over rows, ignoring undefined cells."""
        out: List[Value] = []
        for index in range(len(self.columns)):
            values = [row[1][index] for row in self.rows if row[1][index] is not None]
            out.append(fmean(values) if values else None)
        return tuple(out)

    def column(self, name: str) -> List[Value]:
        index = self.columns.index(name)
        return [row[1][index] for row in self.rows]

    def value(self, benchmark: str, column: str) -> Value:
        index = self.columns.index(column)
        for name, values in self.rows:
            if name == benchmark:
                return values[index]
        raise ConfigError(f"no row {benchmark!r} in figure {self.figure_id}")


def _rows(
    grid: ExperimentGrid,
    compute: Callable[[Dict[str, MetricReport]], Sequence[Value]],
) -> Tuple[Tuple[str, Tuple[Value, ...]], ...]:
    rows = []
    for bench in grid.benchmarks:
        by_selector = {
            selector: grid.report(bench, selector) for selector in grid.selectors
        }
        rows.append((bench, tuple(compute(by_selector))))
    return tuple(rows)


# ---------------------------------------------------------------------------
# Section 3 figures: LEI versus NET
# ---------------------------------------------------------------------------

def fig07_cycle_ratios(grid: ExperimentGrid) -> FigureResult:
    """Figure 7: improvement of LEI over NET in spanning cycles."""
    def compute(r):
        return (
            100.0 * (r["lei"].spanned_cycle_ratio - r["net"].spanned_cycle_ratio),
            100.0 * (r["lei"].executed_cycle_ratio - r["net"].executed_cycle_ratio),
        )
    return FigureResult(
        "fig07",
        "Figure 7: LEI - NET cycle ratios (percentage points)",
        ("delta_spanned_pp", "delta_executed_pp"),
        _rows(grid, compute),
        "Paper: LEI spans more cycles for every benchmark, raising the "
        "overall cycle-spanning proportion by ~5pp; executed cycles rise "
        "with it, and crafty/parser gain least.",
    )


def fig08_expansion_transitions(grid: ExperimentGrid) -> FigureResult:
    """Figure 8: LEI code expansion and region transitions relative to NET."""
    def compute(r):
        return (
            safe_ratio(r["lei"].code_expansion, r["net"].code_expansion),
            safe_ratio(r["lei"].region_transitions, r["net"].region_transitions),
        )
    return FigureResult(
        "fig08",
        "Figure 8: LEI relative to NET",
        ("code_expansion_ratio", "region_transition_ratio"),
        _rows(grid, compute),
        "Paper: mean expansion ratio 0.92 (crafty the only benchmark "
        "above 1.0); mean transition ratio 0.80 (parser shows no gain).",
    )


def fig09_cover_sets(grid: ExperimentGrid) -> FigureResult:
    """Figure 9: 90% cover set sizes for NET and LEI."""
    def compute(r):
        return (r["net"].cover_set_90, r["lei"].cover_set_90)
    return FigureResult(
        "fig09",
        "Figure 9: minimum traces covering 90% of executed instructions",
        ("net", "lei"),
        _rows(grid, compute),
        "Paper: LEI needs a significantly smaller set for every "
        "benchmark, 18% fewer traces on average.",
    )


def fig10_counters(grid: ExperimentGrid) -> FigureResult:
    """Figure 10: peak profiling counters, LEI relative to NET."""
    def compute(r):
        return (
            r["net"].peak_counters,
            r["lei"].peak_counters,
            safe_ratio(r["lei"].peak_counters, r["net"].peak_counters),
        )
    return FigureResult(
        "fig10",
        "Figure 10: maximum concurrent profiling counters",
        ("net", "lei", "lei_over_net"),
        _rows(grid, compute),
        "Paper: LEI requires only about two-thirds of NET's counter "
        "memory on average.",
    )


# ---------------------------------------------------------------------------
# Section 4.1 figures: exit domination under plain trace selection
# ---------------------------------------------------------------------------

def fig11_exit_dominated_duplication(grid: ExperimentGrid) -> FigureResult:
    """Figure 11: % of selected instructions that are exit-dominated
    duplication."""
    def compute(r):
        return (
            100.0 * r["net"].exit_dominated_duplication_fraction,
            100.0 * r["lei"].exit_dominated_duplication_fraction,
        )
    return FigureResult(
        "fig11",
        "Figure 11: exit-dominated duplication (% of selected instructions)",
        ("net_pct", "lei_pct"),
        _rows(grid, compute),
        "Paper: 1-7% of all selected instructions, generally higher "
        "under LEI than NET.",
    )


def fig12_exit_dominated_traces(grid: ExperimentGrid) -> FigureResult:
    """Figure 12: % of selected traces that are exit-dominated."""
    def compute(r):
        return (
            100.0 * r["net"].exit_dominated_region_fraction,
            100.0 * r["lei"].exit_dominated_region_fraction,
            float(r["net"].max_dominator_fanout),
        )
    return FigureResult(
        "fig12",
        "Figure 12: exit-dominated traces (% of selected traces)",
        ("net_pct", "lei_pct", "net_max_dominator_fanout"),
        _rows(grid, compute),
        "Paper: mean 15% (NET) and 22% (LEI); eon is the outlier because "
        "a few traces (ggPoint3 constructors) each exit-dominate a large "
        "number of other traces — the fan-out column shows the analogue.",
    )


# ---------------------------------------------------------------------------
# Section 4.3 figures: trace combination
# ---------------------------------------------------------------------------

def fig16_combined_transitions(grid: ExperimentGrid) -> FigureResult:
    """Figure 16: region transitions under trace combination."""
    def compute(r):
        return (
            safe_ratio(r["combined-net"].region_transitions,
                       r["net"].region_transitions),
            safe_ratio(r["combined-lei"].region_transitions,
                       r["lei"].region_transitions),
        )
    return FigureResult(
        "fig16",
        "Figure 16: region transitions relative to the uncombined selector",
        ("combined_net_over_net", "combined_lei_over_lei"),
        _rows(grid, compute),
        "Paper: combined NET averages 0.85, combined LEI 0.64; vortex "
        "under NET is the one case that rises (~1%).",
    )


def fig17_combined_cover_sets(grid: ExperimentGrid) -> FigureResult:
    """Figure 17: 90% cover set sizes under trace combination."""
    def compute(r):
        return (
            r["net"].cover_set_90,
            r["combined-net"].cover_set_90,
            r["lei"].cover_set_90,
            r["combined-lei"].cover_set_90,
        )
    return FigureResult(
        "fig17",
        "Figure 17: 90% cover set size under trace combination",
        ("net", "combined_net", "lei", "combined_lei"),
        _rows(grid, compute),
        "Paper: combination shrinks NET cover sets by 15% and LEI cover "
        "sets by 28% on average; gzip/NET is the only (trivial) increase "
        "and bzip2 the only case where LEI benefits less than NET.",
    )


def fig18_profiling_memory(grid: ExperimentGrid) -> FigureResult:
    """Figure 18: observed-trace memory as % of estimated cache size."""
    def compute(r):
        def pct(report):
            fraction = report.observed_trace_memory_fraction
            return None if fraction is None else 100.0 * fraction
        return (pct(r["combined-net"]), pct(r["combined-lei"]))
    return FigureResult(
        "fig18",
        "Figure 18: peak observed-trace memory (% of estimated cache size)",
        ("combined_net_pct", "combined_lei_pct"),
        _rows(grid, compute),
        "Paper: averages 6% (NET) and 13% (LEI), never above 12%/18%; "
        "LEI consistently needs more because its traces are longer. At "
        "our reduced program scale the cache is far smaller, so the "
        "percentages are larger; the NET<LEI ordering is the shape "
        "under test.",
    )


def fig19_exit_stubs(grid: ExperimentGrid) -> FigureResult:
    """Figure 19: exit stubs under trace combination."""
    def compute(r):
        return (
            r["net"].exit_stubs,
            r["combined-net"].exit_stubs,
            r["lei"].exit_stubs,
            r["combined-lei"].exit_stubs,
            safe_ratio(r["combined-net"].exit_stubs, r["net"].exit_stubs),
            safe_ratio(r["combined-lei"].exit_stubs, r["lei"].exit_stubs),
        )
    return FigureResult(
        "fig19",
        "Figure 19: exit stubs with and without trace combination",
        ("net", "combined_net", "lei", "combined_lei",
         "cn_over_net", "cl_over_lei"),
        _rows(grid, compute),
        "Paper: combination removes 18% of NET's stubs and 26% of LEI's.",
    )


# ---------------------------------------------------------------------------
# Reported statistics without a numbered figure
# ---------------------------------------------------------------------------

def stat_hit_rates(grid: ExperimentGrid) -> FigureResult:
    """Hit rates (Sections 3.2 and 4.3 text)."""
    def compute(r):
        return tuple(100.0 * r[s].hit_rate for s in
                     ("net", "lei", "combined-net", "combined-lei"))
    return FigureResult(
        "hitrate",
        "Hit rate (% of instructions executed from the code cache)",
        ("net", "lei", "combined_net", "combined_lei"),
        _rows(grid, compute),
        "Paper: above 99% for all but two benchmarks under LEI (mcf "
        "99.80->98.31, gcc 99.37->98.98); combination changes hit rate "
        "by ~0.1%. Our programs run far fewer instructions, so absolute "
        "rates sit a little lower at default scale.",
    )


def stat_average_region_size(grid: ExperimentGrid) -> FigureResult:
    """Average region size (Section 3.2.2: 14.8 -> 18.3 instructions)."""
    def compute(r):
        return (
            r["net"].average_region_instructions,
            r["lei"].average_region_instructions,
        )
    return FigureResult(
        "avgsize",
        "Average instructions per selected region",
        ("net", "lei"),
        _rows(grid, compute),
        "Paper: LEI traces are larger on average (14.8 -> 18.3 "
        "instructions) even though total expansion falls.",
    )


def stat_region_counts(grid: ExperimentGrid) -> FigureResult:
    """Total regions selected (Section 4.3.3: -9% NET, -30% LEI)."""
    def compute(r):
        return (
            r["net"].region_count,
            r["combined-net"].region_count,
            r["lei"].region_count,
            r["combined-lei"].region_count,
        )
    return FigureResult(
        "regioncount",
        "Total regions selected",
        ("net", "combined_net", "lei", "combined_lei"),
        _rows(grid, compute),
        "Paper: combination reduces the number of regions selected by 9% "
        "for NET and 30% for LEI.",
    )


def stat_exit_domination_reduction(grid: ExperimentGrid) -> FigureResult:
    """Section 4.3.1: combination removes ~65% of exit-dominated
    duplication and ~40% of exit-dominated regions."""
    def compute(r):
        return (
            r["net"].exit_dominated_regions,
            r["combined-net"].exit_dominated_regions,
            r["lei"].exit_dominated_regions,
            r["combined-lei"].exit_dominated_regions,
            r["net"].exit_dominated_duplicated_instructions,
            r["combined-net"].exit_dominated_duplicated_instructions,
        )
    return FigureResult(
        "expdom",
        "Exit domination: plain versus combined",
        ("net_regions", "cnet_regions", "lei_regions", "clei_regions",
         "net_dup_insts", "cnet_dup_insts"),
        _rows(grid, compute),
        "Paper: combining avoids ~65% of exit-dominated duplication and "
        "~40% of exit-dominated regions.",
    )


def stat_summary_conclusion(grid: ExperimentGrid) -> FigureResult:
    """Section 6: combined LEI versus plain NET, the headline comparison."""
    def compute(r):
        best, base = r["combined-lei"], r["net"]
        return (
            safe_ratio(best.code_expansion, base.code_expansion),
            safe_ratio(best.exit_stubs, base.exit_stubs),
            safe_ratio(best.region_transitions, base.region_transitions),
            safe_ratio(best.cover_set_90, base.cover_set_90)
            if best.cover_set_90 is not None and base.cover_set_90 else None,
        )
    return FigureResult(
        "summary",
        "Conclusion: combined LEI relative to NET",
        ("code_expansion", "exit_stubs", "region_transitions", "cover_set_90"),
        _rows(grid, compute),
        "Paper: expansion x0.91, exit stubs x0.68, region transitions "
        "~x0.5, and the 90% cover set improves by more than 25% for "
        "every benchmark (44% mean).",
    )


#: Registry: figure id -> computation, in paper order.
ALL_FIGURES: Dict[str, Callable[[ExperimentGrid], FigureResult]] = {
    "fig07": fig07_cycle_ratios,
    "fig08": fig08_expansion_transitions,
    "fig09": fig09_cover_sets,
    "fig10": fig10_counters,
    "fig11": fig11_exit_dominated_duplication,
    "fig12": fig12_exit_dominated_traces,
    "fig16": fig16_combined_transitions,
    "fig17": fig17_combined_cover_sets,
    "fig18": fig18_profiling_memory,
    "fig19": fig19_exit_stubs,
    "hitrate": stat_hit_rates,
    "avgsize": stat_average_region_size,
    "regioncount": stat_region_counts,
    "expdom": stat_exit_domination_reduction,
    "summary": stat_summary_conclusion,
}


def figure_ids() -> Tuple[str, ...]:
    return tuple(ALL_FIGURES)


def compute_figure(figure_id: str, grid: ExperimentGrid) -> FigureResult:
    try:
        fn = ALL_FIGURES[figure_id]
    except KeyError:
        raise ConfigError(
            f"unknown figure {figure_id!r}; known: {', '.join(ALL_FIGURES)}"
        ) from None
    return fn(grid)
