"""Seed-stability analysis: are the headline ratios seed-robust?

The paper's results come from deterministic SPEC runs; our synthetic
programs draw branch outcomes from a seeded PRNG, so any claimed ratio
should be shown stable across seeds before it is trusted.  This module
recomputes a chosen headline ratio under several seeds and reports the
spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean, pstdev
from typing import Callable, Dict, List, Sequence

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.metrics.summary import MetricReport, safe_ratio
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

#: A headline ratio: (subject metric, baseline metric) extractor.
RatioExtractor = Callable[[MetricReport, MetricReport], float]


def _suite_ratio(
    subject_selector: str,
    baseline_selector: str,
    attribute: str,
    seed: int,
    scale: float,
    config: SystemConfig,
    benchmarks: Sequence[str],
) -> float:
    """Mean per-benchmark subject/baseline ratio of one metric."""
    ratios: List[float] = []
    for bench in benchmarks:
        program = build_benchmark(bench, scale=scale)
        subject = MetricReport.from_result(
            simulate(program, subject_selector, config, seed=seed)
        )
        baseline = MetricReport.from_result(
            simulate(program, baseline_selector, config, seed=seed)
        )
        ratio = safe_ratio(
            getattr(subject, attribute), getattr(baseline, attribute)
        )
        if ratio is not None:
            ratios.append(ratio)
    if not ratios:
        raise ConfigError(
            f"ratio {attribute} undefined for every benchmark "
            f"({subject_selector} vs {baseline_selector})"
        )
    return fmean(ratios)


@dataclass(frozen=True)
class StabilityReport:
    """Spread of one headline ratio across seeds."""

    subject: str
    baseline: str
    attribute: str
    per_seed: Dict[int, float]

    @property
    def mean(self) -> float:
        return fmean(self.per_seed.values())

    @property
    def spread(self) -> float:
        values = list(self.per_seed.values())
        return max(values) - min(values)

    @property
    def stdev(self) -> float:
        return pstdev(self.per_seed.values())

    def summary_line(self) -> str:
        return (
            f"{self.subject}/{self.baseline} {self.attribute}: "
            f"mean={self.mean:.3f} spread={self.spread:.3f} "
            f"stdev={self.stdev:.3f} over seeds {sorted(self.per_seed)}"
        )


def _ratio_from_reports(
    reports: Dict[tuple, MetricReport],
    subject_selector: str,
    baseline_selector: str,
    attribute: str,
    seed: int,
    benchmarks: Sequence[str],
) -> float:
    """Mean per-benchmark ratio out of precomputed cell reports."""
    ratios: List[float] = []
    for bench in benchmarks:
        subject = reports[(bench, subject_selector, seed)]
        baseline = reports[(bench, baseline_selector, seed)]
        ratio = safe_ratio(
            getattr(subject, attribute), getattr(baseline, attribute)
        )
        if ratio is not None:
            ratios.append(ratio)
    if not ratios:
        raise ConfigError(
            f"ratio {attribute} undefined for every benchmark "
            f"({subject_selector} vs {baseline_selector})"
        )
    return fmean(ratios)


def seed_stability(
    subject_selector: str,
    baseline_selector: str,
    attribute: str,
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 0.25,
    config: SystemConfig | None = None,
    benchmarks: Sequence[str] | None = None,
    backend: str = "serial",
) -> StabilityReport:
    """Measure a headline ratio's spread across execution seeds.

    ``backend="batched"`` runs the whole sweep — every (benchmark,
    selector, seed) cell — as one fleet through
    :func:`repro.batch.run_fleet`; the per-seed ratios are identical
    to the serial sweep because every cell's report is (see
    ``docs/batching.md``).
    """
    if not seeds:
        raise ConfigError("at least one seed is required")
    config = config if config is not None else SystemConfig()
    bench_list = tuple(benchmarks) if benchmarks is not None else benchmark_names()
    if backend != "serial":
        if backend not in ("batched", "batched-numpy", "batched-python"):
            raise ConfigError(
                f"unknown stability backend {backend!r}: expected "
                f"'serial', 'batched', 'batched-numpy' or "
                f"'batched-python'"
            )
        from repro.batch import BatchCell, run_fleet

        # One lane per (benchmark, selector, seed); dict.fromkeys
        # dedupes the subject==baseline degenerate sweep.
        wanted = dict.fromkeys(
            (bench, selector, seed)
            for seed in seeds
            for bench in bench_list
            for selector in (subject_selector, baseline_selector)
        )
        fleet_cells = [BatchCell(bench, selector, scale=scale, seed=seed)
                       for bench, selector, seed in wanted]
        fleet_backend = backend[len("batched-"):] if "-" in backend else "auto"
        result = run_fleet(fleet_cells, config=config, backend=fleet_backend)
        reports = {
            key: result.reports[cell]
            for key, cell in zip(wanted, fleet_cells)
        }
        per_seed = {
            seed: _ratio_from_reports(
                reports, subject_selector, baseline_selector, attribute,
                seed, bench_list,
            )
            for seed in seeds
        }
    else:
        per_seed = {
            seed: _suite_ratio(
                subject_selector, baseline_selector, attribute,
                seed, scale, config, bench_list,
            )
            for seed in seeds
        }
    return StabilityReport(
        subject=subject_selector,
        baseline=baseline_selector,
        attribute=attribute,
        per_seed=per_seed,
    )
