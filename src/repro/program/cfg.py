"""Basic blocks and their terminating control transfers."""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.behavior.models import BranchModel, IndirectModel
from repro.errors import LayoutError
from repro.isa.instruction import InstructionBundle
from repro.isa.opcodes import BranchKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.program.procedure import Procedure


class Terminator:
    """The control transfer ending a basic block.

    Target references are stored as unresolved ``"proc:label"`` strings
    by the builder and resolved to :class:`BasicBlock` objects when the
    program is finalized.
    """

    __slots__ = (
        "kind",
        "taken_ref",
        "indirect_refs",
        "model",
        "indirect_model",
        "taken_target",
        "indirect_targets",
    )

    def __init__(
        self,
        kind: BranchKind,
        taken_ref: Optional[str] = None,
        indirect_refs: Tuple[str, ...] = (),
        model: Optional[BranchModel] = None,
        indirect_model: Optional[IndirectModel] = None,
    ) -> None:
        self.kind = kind
        self.taken_ref = taken_ref
        self.indirect_refs = indirect_refs
        self.model = model
        self.indirect_model = indirect_model
        # Resolved at Program.finalize() time.
        self.taken_target: Optional[BasicBlock] = None
        self.indirect_targets: Tuple[BasicBlock, ...] = ()

    def __repr__(self) -> str:
        if self.kind is BranchKind.INDIRECT:
            return f"Terminator({self.kind.value}, targets={list(self.indirect_refs)})"
        return f"Terminator({self.kind.value}, taken={self.taken_ref!r})"


class BasicBlock:
    """One basic block: a bundle of instructions plus one terminator.

    Identity is by object; equality/hash are identity-based on purpose,
    because two blocks with the same label in different programs are
    different blocks.  After :meth:`repro.program.program.Program.finalize`
    the block also carries its assigned address range and a dense
    ``block_id`` used by the binary trace format.
    """

    __slots__ = (
        "label",
        "bundle",
        "terminator",
        "procedure",
        "fallthrough",
        "address",
        "end_address",
        "block_id",
    )

    def __init__(self, label: str, bundle: InstructionBundle, terminator: Terminator) -> None:
        self.label = label
        self.bundle = bundle
        self.terminator = terminator
        # Wired up when the block is added to a procedure / program.
        self.procedure: Optional["Procedure"] = None
        self.fallthrough: Optional[BasicBlock] = None
        self.address: Optional[int] = None
        self.end_address: Optional[int] = None
        self.block_id: Optional[int] = None

    @property
    def full_label(self) -> str:
        """Procedure-qualified label, e.g. ``"main:loop_head"``."""
        proc = self.procedure.name if self.procedure is not None else "?"
        return f"{proc}:{self.label}"

    @property
    def instruction_count(self) -> int:
        return self.bundle.count

    @property
    def byte_size(self) -> int:
        return self.bundle.byte_size

    def require_address(self) -> int:
        """Return the block's address, raising if layout has not run."""
        if self.address is None:
            raise LayoutError(f"block {self.full_label} has no address; finalize first")
        return self.address

    def is_backward_transfer_to(self, target: "BasicBlock") -> bool:
        """True when a taken branch from this block to ``target`` is backward.

        Backward means the target address is not greater than the source
        address of the branch instruction (the last instruction of this
        block) — the paper's ``tgt <= src`` test from Figure 5 line 9.
        """
        if self.end_address is None or target.address is None:
            raise LayoutError("cannot classify branch direction before layout")
        return target.address <= self.end_address

    def __repr__(self) -> str:
        return f"<BasicBlock {self.full_label} x{self.bundle.count}>"
