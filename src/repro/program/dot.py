"""Graphviz export of program CFGs, for debugging and the examples.

The output is plain DOT text; no graphviz dependency is required to
generate it (only to render it, which is optional).
"""

from __future__ import annotations

from typing import List, Optional, Set, TYPE_CHECKING

from repro.isa.opcodes import BranchKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.program.program import Program
    from repro.program.cfg import BasicBlock


def _node_id(block: "BasicBlock") -> str:
    return block.full_label.replace(":", "__").replace(".", "_")


def program_to_dot(
    program: "Program",
    highlight: Optional[Set["BasicBlock"]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a finalized program as a DOT digraph string.

    ``highlight`` blocks (for example, the blocks chosen into a region)
    are drawn filled.  Call/return structure is shown with dashed edges.
    """
    highlight = highlight or set()
    lines: List[str] = ["digraph program {", "  node [shape=box, fontname=monospace];"]
    if title:
        lines.append(f'  label="{title}"; labelloc=top;')

    for procedure in program.procedures:
        lines.append(f"  subgraph cluster_{procedure.name} {{")
        lines.append(f'    label="{procedure.name}";')
        for block in procedure.blocks:
            style = ', style=filled, fillcolor="#cde7ff"' if block in highlight else ""
            addr = f"0x{block.address:x}" if block.address is not None else "?"
            lines.append(
                f'    {_node_id(block)} [label="{block.label}\\n{addr} '
                f'x{block.instruction_count}"{style}];'
            )
        lines.append("  }")

    for block in program.blocks:
        term = block.terminator
        kind = term.kind
        src = _node_id(block)
        if kind is BranchKind.COND:
            assert term.taken_target is not None and block.fallthrough is not None
            lines.append(f'  {src} -> {_node_id(term.taken_target)} [label="T"];')
            lines.append(f'  {src} -> {_node_id(block.fallthrough)} [label="F"];')
        elif kind is BranchKind.JUMP:
            assert term.taken_target is not None
            lines.append(f"  {src} -> {_node_id(term.taken_target)};")
        elif kind is BranchKind.CALL:
            assert term.taken_target is not None
            lines.append(
                f'  {src} -> {_node_id(term.taken_target)} [style=dashed, label="call"];'
            )
        elif kind is BranchKind.INDIRECT:
            for target in term.indirect_targets:
                lines.append(f"  {src} -> {_node_id(target)} [style=dotted];")
        elif kind is BranchKind.FALLTHROUGH and block.fallthrough is not None:
            lines.append(f"  {src} -> {_node_id(block.fallthrough)};")
        # RETURN/HALT edges are dynamic; omitted.

    lines.append("}")
    return "\n".join(lines)
