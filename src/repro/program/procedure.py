"""Procedures: named, ordered sequences of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import ProgramStructureError
from repro.program.cfg import BasicBlock


class Procedure:
    """A procedure is an ordered list of blocks; the first is its entry.

    Block order determines both fall-through successors and address
    layout within the procedure.
    """

    __slots__ = ("name", "blocks", "_by_label")

    def __init__(self, name: str) -> None:
        if not name or ":" in name:
            raise ProgramStructureError(
                f"procedure name must be non-empty and contain no ':', got {name!r}"
            )
        self.name = name
        self.blocks: List[BasicBlock] = []
        self._by_label: Dict[str, BasicBlock] = {}

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self._by_label:
            raise ProgramStructureError(
                f"duplicate block label {block.label!r} in procedure {self.name!r}"
            )
        if block.procedure is not None:
            raise ProgramStructureError(
                f"block {block.full_label} already belongs to a procedure"
            )
        block.procedure = self
        self.blocks.append(block)
        self._by_label[block.label] = block
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ProgramStructureError(f"procedure {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        try:
            return self._by_label[label]
        except KeyError:
            raise ProgramStructureError(
                f"no block {label!r} in procedure {self.name!r}"
            ) from None

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def instruction_count(self) -> int:
        return sum(block.instruction_count for block in self.blocks)

    def __repr__(self) -> str:
        return f"<Procedure {self.name} blocks={len(self.blocks)}>"
