"""Static program representation: blocks, procedures, programs, builder.

A :class:`~repro.program.program.Program` is an ordered list of
procedures, each an ordered list of basic blocks.  Order matters: the
address layout pass assigns increasing byte addresses in declaration
order, and *backward branch* (the pivotal notion in both NET and LEI)
is defined purely by comparing the branch's source and target
addresses.  Workloads therefore control branch direction by choosing
where procedures and blocks are declared — exactly as link order does
for real binaries (see Figure 2's "the function beginning with E is at
a lower address" caption).
"""

from repro.program.cfg import BasicBlock, Terminator
from repro.program.procedure import Procedure
from repro.program.program import Program
from repro.program.builder import BlockHandle, ProcedureBuilder, ProgramBuilder
from repro.program.validate import validate_program

__all__ = [
    "BasicBlock",
    "Terminator",
    "Procedure",
    "Program",
    "ProgramBuilder",
    "ProcedureBuilder",
    "BlockHandle",
    "validate_program",
]
