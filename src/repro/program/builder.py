"""Fluent builder for synthetic programs.

All workloads, examples and most tests construct programs through this
DSL rather than instantiating blocks directly::

    pb = ProgramBuilder("demo")
    main = pb.procedure("main")
    main.block("head", insts=4).cond("body", model=LoopTrip(100))
    main.block("body", insts=8).jump("head")
    main.block("done", insts=1).halt()
    program = pb.build()

Target references accept a :class:`BlockHandle`, a bare label in the
same procedure, a procedure name (meaning that procedure's entry), or
an explicit ``"proc:label"`` string.  Resolution happens at build time,
so forward references are fine.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.behavior.models import BranchModel, IndirectModel, TableIndirect
from repro.errors import ProgramStructureError
from repro.isa.instruction import DEFAULT_INSTRUCTION_BYTES, InstructionBundle
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock, Terminator
from repro.program.layout import DEFAULT_BASE_ADDRESS
from repro.program.procedure import Procedure
from repro.program.program import Program

TargetSpec = Union[str, "BlockHandle"]


def _ref_of(target: TargetSpec) -> str:
    if isinstance(target, BlockHandle):
        return f"{target.procedure_name}:{target.label}"
    if isinstance(target, str) and target:
        return target
    raise ProgramStructureError(f"invalid branch target spec: {target!r}")


class BlockHandle:
    """Handle to a block under construction; terminator setters live here.

    Each terminator setter may be called at most once; a block left
    without a terminator becomes a plain fall-through block.
    """

    def __init__(self, builder: "ProcedureBuilder", block: BasicBlock) -> None:
        self._builder = builder
        self._block = block
        self._terminated = False

    @property
    def label(self) -> str:
        return self._block.label

    @property
    def procedure_name(self) -> str:
        return self._builder.name

    @property
    def raw_block(self) -> BasicBlock:
        """The underlying block (addresses resolve only after build())."""
        return self._block

    def _set(self, terminator: Terminator) -> "BlockHandle":
        if self._terminated:
            raise ProgramStructureError(
                f"block {self._block.label!r} already has a terminator"
            )
        self._block.terminator = terminator
        self._terminated = True
        return self

    def cond(self, taken: TargetSpec, model: BranchModel) -> "BlockHandle":
        """Conditional branch: ``taken`` target plus implicit fall-through."""
        return self._set(Terminator(BranchKind.COND, _ref_of(taken), model=model))

    def jump(self, target: TargetSpec) -> "BlockHandle":
        """Unconditional direct jump."""
        return self._set(Terminator(BranchKind.JUMP, _ref_of(target)))

    def call(self, target: TargetSpec) -> "BlockHandle":
        """Direct call; the next declared block is the return site."""
        return self._set(Terminator(BranchKind.CALL, _ref_of(target)))

    def ret(self) -> "BlockHandle":
        """Return to the pending call site."""
        return self._set(Terminator(BranchKind.RETURN))

    def indirect(
        self,
        targets: Union[Dict[TargetSpec, float], Sequence[TargetSpec]],
        model: Optional[IndirectModel] = None,
    ) -> "BlockHandle":
        """Indirect jump over a target table.

        Pass a ``{target: weight}`` dict to get a
        :class:`~repro.behavior.models.TableIndirect` model implicitly,
        or a sequence of targets plus an explicit model.
        """
        if isinstance(targets, dict):
            if model is not None:
                raise ProgramStructureError(
                    "pass either a weight dict or an explicit model, not both"
                )
            refs = tuple(_ref_of(t) for t in targets)
            model = TableIndirect(tuple(targets.values()))
        else:
            refs = tuple(_ref_of(t) for t in targets)
            if model is None:
                raise ProgramStructureError(
                    "an indirect branch with a target sequence needs a model"
                )
        return self._set(
            Terminator(BranchKind.INDIRECT, indirect_refs=refs, indirect_model=model)
        )

    def halt(self) -> "BlockHandle":
        """Terminate the program."""
        return self._set(Terminator(BranchKind.HALT))

    def fallthrough(self) -> "BlockHandle":
        """Explicit fall-through (the default for unterminated blocks)."""
        return self._set(Terminator(BranchKind.FALLTHROUGH))


class ProcedureBuilder:
    """Builds one procedure; obtained from :meth:`ProgramBuilder.procedure`."""

    def __init__(self, program_builder: "ProgramBuilder", name: str) -> None:
        self._program_builder = program_builder
        self._procedure = Procedure(name)
        self._handles: Dict[str, BlockHandle] = {}

    @property
    def name(self) -> str:
        return self._procedure.name

    @property
    def procedure(self) -> Procedure:
        return self._procedure

    def block(
        self,
        label: str,
        insts: int = 1,
        bytes_per_instruction: float = DEFAULT_INSTRUCTION_BYTES,
    ) -> BlockHandle:
        """Declare the next block of this procedure."""
        bundle = InstructionBundle(insts, bytes_per_instruction)
        block = BasicBlock(label, bundle, Terminator(BranchKind.FALLTHROUGH))
        self._procedure.add_block(block)
        handle = BlockHandle(self, block)
        self._handles[label] = handle
        return handle

    def linear(self, labels: Iterable[str], insts: int = 1) -> Tuple[BlockHandle, ...]:
        """Declare several consecutive fall-through blocks at once."""
        return tuple(self.block(label, insts=insts) for label in labels)

    def handle(self, label: str) -> BlockHandle:
        try:
            return self._handles[label]
        except KeyError:
            raise ProgramStructureError(
                f"no block {label!r} declared in procedure {self.name!r}"
            ) from None


class ProgramBuilder:
    """Top-level builder; procedures lay out in declaration order.

    Declaration order is semantically meaningful: it fixes addresses,
    and addresses fix which branches are backward.  Declaring a callee
    *before* its caller makes calls to it backward branches (Figure 2's
    scenario); declaring it after makes them forward.
    """

    def __init__(
        self,
        name: str,
        base_address: int = DEFAULT_BASE_ADDRESS,
        entry: Optional[str] = None,
    ) -> None:
        self._program = Program(name)
        self._program.entry_procedure_name = entry
        self._base_address = base_address
        self._builders: Dict[str, ProcedureBuilder] = {}

    @property
    def name(self) -> str:
        return self._program.name

    def set_entry(self, procedure_name: str) -> "ProgramBuilder":
        """Name the procedure execution starts in (default: first declared)."""
        self._program.entry_procedure_name = procedure_name
        return self

    def procedure(self, name: str) -> ProcedureBuilder:
        """Declare (or retrieve) a procedure builder."""
        if name in self._builders:
            return self._builders[name]
        builder = ProcedureBuilder(self, name)
        self._program.add_procedure(builder.procedure)
        self._builders[name] = builder
        return builder

    def build(self) -> Program:
        """Finalize and return the program (layout, resolve, validate)."""
        return self._program.finalize(self._base_address)
