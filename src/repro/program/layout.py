"""Address layout: assign byte addresses to every block.

Layout walks procedures and blocks in declaration order and assigns each
block a contiguous byte range.  A taken branch is *backward* exactly
when its target address is not greater than the address of the branch
instruction itself (the last instruction of the source block); both NET
and LEI key their start conditions on this property, so layout is what
ultimately decides which branch targets are profiled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import LayoutError

if TYPE_CHECKING:  # pragma: no cover
    from repro.program.program import Program

#: Default image base, chosen to look like a conventional ELF text base.
DEFAULT_BASE_ADDRESS = 0x400000

#: Gap inserted between procedures, modelling alignment padding.  A
#: non-zero gap keeps "call to next procedure" a forward branch even
#: when the caller's last block abuts the callee.
PROCEDURE_PADDING = 16


def assign_addresses(
    program: "Program",
    base_address: int = DEFAULT_BASE_ADDRESS,
    procedure_padding: int = PROCEDURE_PADDING,
) -> int:
    """Assign addresses to all blocks; return the end of the image.

    The source address of a block's terminator is taken to be the
    block's last byte (``end_address``); branch direction tests compare
    target block addresses against it.
    """
    if base_address < 0:
        raise LayoutError(f"base address must be non-negative, got {base_address}")
    if procedure_padding < 0:
        raise LayoutError(f"padding must be non-negative, got {procedure_padding}")

    cursor = base_address
    block_id = 0
    for procedure in program.procedures:
        for block in procedure.blocks:
            block.address = cursor
            block.end_address = cursor + block.byte_size - 1
            block.block_id = block_id
            block_id += 1
            cursor += block.byte_size
        cursor += procedure_padding
    return cursor
