"""The Program: ordered procedures plus finalization (layout + resolution)."""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional

from repro.errors import LayoutError, ProgramStructureError
from repro.isa.opcodes import BranchKind
from repro.program.cfg import BasicBlock
from repro.program.layout import DEFAULT_BASE_ADDRESS, assign_addresses
from repro.program.procedure import Procedure


class Program:
    """An executable synthetic program.

    Lifecycle: construct (usually via
    :class:`~repro.program.builder.ProgramBuilder`), add procedures and
    blocks, then :meth:`finalize` — which lays out addresses, resolves
    branch target references, wires fall-through successors, and
    validates structure.  Finalized programs are immutable by
    convention; the execution engine and all selectors only read them.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ProgramStructureError("program name must be non-empty")
        self.name = name
        self.procedures: List[Procedure] = []
        self._procs_by_name: Dict[str, Procedure] = {}
        self._blocks: List[BasicBlock] = []
        self._finalized = False
        self.image_end: Optional[int] = None
        #: Name of the procedure execution starts in; defaults to the
        #: first declared procedure.  Separate from layout order so a
        #: workload can place callees at lower addresses (making calls
        #: to them *backward* branches, as in Figure 2) while still
        #: starting execution in main.
        self.entry_procedure_name: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_procedure(self, procedure: Procedure) -> Procedure:
        if self._finalized:
            raise ProgramStructureError("cannot add procedures after finalize()")
        if procedure.name in self._procs_by_name:
            raise ProgramStructureError(f"duplicate procedure {procedure.name!r}")
        self.procedures.append(procedure)
        self._procs_by_name[procedure.name] = procedure
        return procedure

    def procedure(self, name: str) -> Procedure:
        try:
            return self._procs_by_name[name]
        except KeyError:
            raise ProgramStructureError(f"no procedure named {name!r}") from None

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, base_address: int = DEFAULT_BASE_ADDRESS) -> "Program":
        """Lay out, resolve, wire and validate the program.

        Idempotent: calling finalize twice is an error, to catch
        accidental mutation of a shared program.
        """
        # Imported here to avoid a module cycle (validate imports Program
        # for type checking only, but keep it simple).
        from repro.program.validate import validate_program

        if self._finalized:
            raise ProgramStructureError(f"program {self.name!r} already finalized")
        if not self.procedures:
            raise ProgramStructureError(f"program {self.name!r} has no procedures")
        if (
            self.entry_procedure_name is not None
            and self.entry_procedure_name not in self._procs_by_name
        ):
            raise ProgramStructureError(
                f"entry procedure {self.entry_procedure_name!r} does not exist"
            )

        self._blocks = [block for proc in self.procedures for block in proc.blocks]
        self.image_end = assign_addresses(self, base_address)
        self._wire_fallthroughs()
        self._resolve_targets()
        validate_program(self)
        self._block_starts = [block.address for block in self._blocks]
        self._finalized = True
        return self

    def _wire_fallthroughs(self) -> None:
        for procedure in self.procedures:
            blocks = procedure.blocks
            for index, block in enumerate(blocks):
                nxt = blocks[index + 1] if index + 1 < len(blocks) else None
                block.fallthrough = nxt

    def _resolve_one(self, owner: BasicBlock, ref: str) -> BasicBlock:
        """Resolve a ``"label"``, ``"proc:"`` or ``"proc:label"`` reference."""
        if ":" in ref:
            proc_name, _, label = ref.partition(":")
            procedure = self.procedure(proc_name)
            if label:
                return procedure.block(label)
            return procedure.entry
        # Bare name: a label in the owner's procedure wins, else it names
        # a procedure's entry block.
        assert owner.procedure is not None
        if ref in owner.procedure:
            return owner.procedure.block(ref)
        if ref in self._procs_by_name:
            return self._procs_by_name[ref].entry
        raise ProgramStructureError(
            f"unresolved branch target {ref!r} in block {owner.full_label}"
        )

    def _resolve_targets(self) -> None:
        for block in self._blocks:
            term = block.terminator
            if term.taken_ref is not None:
                term.taken_target = self._resolve_one(block, term.taken_ref)
            if term.indirect_refs:
                term.indirect_targets = tuple(
                    self._resolve_one(block, ref) for ref in term.indirect_refs
                )

    # ------------------------------------------------------------------
    # Finalized accessors
    # ------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise LayoutError(f"program {self.name!r} is not finalized")

    @property
    def is_finalized(self) -> bool:
        return self._finalized

    @property
    def entry(self) -> BasicBlock:
        """The program entry block.

        The entry block of :attr:`entry_procedure_name` when set,
        otherwise the first block of the first declared procedure.
        """
        if self.entry_procedure_name is not None:
            return self.procedure(self.entry_procedure_name).entry
        return self.procedures[0].entry

    @property
    def blocks(self) -> List[BasicBlock]:
        self._require_finalized()
        return self._blocks

    @property
    def block_count(self) -> int:
        return len(self._blocks) if self._finalized else sum(
            len(p) for p in self.procedures
        )

    @property
    def instruction_count(self) -> int:
        """Static instruction count over all blocks."""
        source = self._blocks if self._finalized else [
            b for p in self.procedures for b in p.blocks
        ]
        return sum(block.instruction_count for block in source)

    def block_by_id(self, block_id: int) -> BasicBlock:
        self._require_finalized()
        try:
            block = self._blocks[block_id]
        except IndexError:
            raise ProgramStructureError(
                f"block id {block_id} out of range for program {self.name!r}"
            ) from None
        return block

    def block_at_address(self, address: int) -> BasicBlock:
        """Return the block whose byte range contains ``address``.

        This is the "decode the instruction at this address" primitive
        the compact trace representation of Figure 14 relies on.
        """
        self._require_finalized()
        index = bisect.bisect_right(self._block_starts, address) - 1
        if index >= 0:
            block = self._blocks[index]
            assert block.address is not None and block.end_address is not None
            if block.address <= address <= block.end_address:
                return block
        raise ProgramStructureError(
            f"address 0x{address:x} falls outside every block of "
            f"program {self.name!r}"
        )

    def block_by_full_label(self, full_label: str) -> BasicBlock:
        proc_name, _, label = full_label.partition(":")
        return self.procedure(proc_name).block(label)

    def static_successors(self, block: BasicBlock) -> List[BasicBlock]:
        """All statically-possible successors of a block.

        Returns do not have static successors (the callee cannot know
        its callers here); callers needing return successors should use
        an executed-edge profile instead.
        """
        self._require_finalized()
        term = block.terminator
        kind = term.kind
        succs: List[BasicBlock] = []
        if kind is BranchKind.COND:
            assert term.taken_target is not None
            succs.append(term.taken_target)
            if block.fallthrough is not None:
                succs.append(block.fallthrough)
        elif kind in (BranchKind.JUMP, BranchKind.CALL):
            assert term.taken_target is not None
            succs.append(term.taken_target)
        elif kind is BranchKind.INDIRECT:
            succs.extend(term.indirect_targets)
        elif kind is BranchKind.FALLTHROUGH:
            if block.fallthrough is not None:
                succs.append(block.fallthrough)
        # RETURN and HALT: no static successors.
        return succs

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self.procedures)

    def __repr__(self) -> str:
        state = "finalized" if self._finalized else "building"
        return (
            f"<Program {self.name} procs={len(self.procedures)} "
            f"blocks={self.block_count} ({state})>"
        )
