"""Structural validation of finalized programs.

The execution engine's inner loop does no defensive checking, so every
invariant it relies on is enforced here, once, at finalize time.
"""

from __future__ import annotations

from typing import List, Set, TYPE_CHECKING

from repro.behavior.models import TableIndirect
from repro.errors import ProgramStructureError
from repro.isa.opcodes import BranchKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.program.program import Program
    from repro.program.cfg import BasicBlock


def validate_program(program: "Program") -> None:
    """Raise :class:`ProgramStructureError` on any structural defect."""
    problems: List[str] = []
    for procedure in program.procedures:
        if not procedure.blocks:
            problems.append(f"procedure {procedure.name!r} is empty")
            continue
        for block in procedure.blocks:
            problems.extend(_check_block(block))
    if problems:
        raise ProgramStructureError(
            f"program {program.name!r} is invalid:\n  - " + "\n  - ".join(problems)
        )


def _check_block(block: "BasicBlock") -> List[str]:
    term = block.terminator
    kind = term.kind
    where = f"block {block.full_label}"
    problems: List[str] = []

    needs_taken_target = kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL)
    if needs_taken_target and term.taken_target is None:
        problems.append(f"{where}: {kind.value} terminator has no resolved target")
    if not needs_taken_target and term.taken_ref is not None:
        problems.append(f"{where}: {kind.value} terminator must not have a direct target")

    if kind is BranchKind.COND:
        if term.model is None:
            problems.append(f"{where}: conditional branch has no decision model")
        if block.fallthrough is None:
            problems.append(
                f"{where}: conditional branch is the last block of its "
                "procedure, so it has no fall-through successor"
            )

    if kind is BranchKind.FALLTHROUGH and block.fallthrough is None:
        problems.append(
            f"{where}: fall-through block is the last block of its procedure"
        )

    if kind is BranchKind.CALL:
        if block.fallthrough is None:
            problems.append(
                f"{where}: call has no fall-through block to return to"
            )
        target = term.taken_target
        if target is not None and target.procedure is not None:
            if target is not target.procedure.entry:
                problems.append(
                    f"{where}: call targets {target.full_label}, which is not "
                    "a procedure entry block"
                )

    if kind is BranchKind.INDIRECT:
        if not term.indirect_targets:
            problems.append(f"{where}: indirect branch has no targets")
        if term.indirect_model is None:
            problems.append(f"{where}: indirect branch has no target-choice model")
        elif isinstance(term.indirect_model, TableIndirect):
            expected = len(term.indirect_model.weights)
            if expected != len(term.indirect_targets):
                problems.append(
                    f"{where}: indirect model has {expected} weights for "
                    f"{len(term.indirect_targets)} targets"
                )

    if kind in (BranchKind.RETURN, BranchKind.HALT):
        if term.indirect_refs:
            problems.append(f"{where}: {kind.value} must not list targets")

    return problems


def unreachable_blocks(program: "Program") -> Set["BasicBlock"]:
    """Return statically unreachable blocks (diagnostic aid, not an error).

    Reachability is approximate: returns are treated as reaching every
    call site's fall-through block, which over-approximates real
    executions but never reports a reachable block as unreachable.
    """
    # Collect call-return edges: a RETURN in procedure P can reach the
    # fall-through of every call targeting P's entry.
    return_sites = {}
    for procedure in program.procedures:
        return_sites[procedure.name] = []
    for block in program.blocks:
        term = block.terminator
        if term.kind is BranchKind.CALL and term.taken_target is not None:
            callee = term.taken_target.procedure
            if callee is not None and block.fallthrough is not None:
                return_sites[callee.name].append(block.fallthrough)

    seen: Set["BasicBlock"] = set()
    frontier = [program.entry]
    while frontier:
        block = frontier.pop()
        if block in seen:
            continue
        seen.add(block)
        for successor in program.static_successors(block):
            if successor not in seen:
                frontier.append(successor)
        if block.terminator.kind is BranchKind.RETURN and block.procedure is not None:
            for site in return_sites[block.procedure.name]:
                if site not in seen:
                    frontier.append(site)
    return {block for block in program.blocks if block not in seen}
