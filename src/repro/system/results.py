"""Raw results of one simulated run.

:class:`RunResult` carries everything the metrics package needs; it
performs no analysis itself beyond simple derived properties (hit rate,
expansion totals) so that each Section 2.3 metric lives in exactly one
place under :mod:`repro.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Tuple

from repro.cache.codecache import CodeCache
from repro.cache.region import Region
from repro.cache.sizing import estimate_cache_bytes
from repro.program.cfg import BasicBlock


class TimelineSample(NamedTuple):
    """A point on the run's timeline (cumulative values at ``step``).

    Recorded by the simulator when ``sample_every`` is set; the
    analysis helpers in :mod:`repro.analysis.timeline` turn consecutive
    samples into windowed rates (warm-up curves, phase effects).
    """

    step: int
    interp_instructions: int
    cache_instructions: int
    regions_selected: int
    region_transitions: int

    @property
    def total_instructions(self) -> int:
        return self.interp_instructions + self.cache_instructions


class RunStats:
    """Mutable counters the simulator updates on its hot path."""

    __slots__ = (
        "interp_steps",
        "interp_instructions",
        "cache_steps",
        "cache_instructions",
        "cache_entries",
        "cache_exits",
        "region_transitions",
    )

    def __init__(self) -> None:
        self.interp_steps = 0
        self.interp_instructions = 0
        self.cache_steps = 0
        self.cache_instructions = 0
        #: Entries into the cache from the interpreter.
        self.cache_entries = 0
        #: Exits from the cache back to the interpreter.
        self.cache_exits = 0
        #: Direct region-to-region jumps (linked exits) — the locality
        #: metric of Section 2.3.
        self.region_transitions = 0


@dataclass
class RunResult:
    """Everything measured in one (program, selector) simulation."""

    program_name: str
    selector_name: str
    stats: RunStats
    cache: CodeCache
    #: Executed original-program edges: (src block, dst block) -> count.
    edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int]
    peak_counters: int
    peak_observed_trace_bytes: int
    selector_diagnostics: Dict[str, int] = field(default_factory=dict)
    stub_bytes: int = 10
    #: Timeline samples (empty unless the simulator sampled).
    samples: List[TimelineSample] = field(default_factory=list)
    #: The I-cache model the run fetched through, if any.
    icache: object = None
    #: Metrics-registry snapshot (see :mod:`repro.obs.metrics`); empty
    #: when the run was not observed with metrics enabled.  Instrument
    #: values reconcile with this result's own aggregates — e.g.
    #: ``metrics["regions_installed_total"]`` totals ``region_count``.
    metrics: Dict[str, dict] = field(default_factory=dict)

    # -- derived convenience --------------------------------------------
    @property
    def regions(self) -> List[Region]:
        return self.cache.regions

    @property
    def region_count(self) -> int:
        return len(self.cache.regions)

    @property
    def total_instructions_executed(self) -> int:
        return self.stats.interp_instructions + self.stats.cache_instructions

    @property
    def hit_rate(self) -> float:
        """Fraction of executed instructions run from the code cache."""
        total = self.total_instructions_executed
        if total == 0:
            return 0.0
        return self.stats.cache_instructions / total

    @property
    def code_expansion(self) -> int:
        """Instructions copied into the code cache (Section 2.3)."""
        return self.cache.total_instructions

    @property
    def exit_stubs(self) -> int:
        return self.cache.total_exit_stubs

    @property
    def region_transitions(self) -> int:
        return self.stats.region_transitions

    @property
    def cache_size_estimate(self) -> int:
        """Section 4.3.4 estimate: instruction bytes + 10 B per stub."""
        return estimate_cache_bytes(self.cache.regions, self.stub_bytes)

    # -- cache management (nonzero only with a bounded cache) -----------
    @property
    def cache_evictions(self) -> int:
        return self.cache.evictions

    @property
    def cache_flushes(self) -> int:
        return self.cache.flushes

    @property
    def regenerated_regions(self) -> int:
        """Regions re-selected after their earlier copy was evicted."""
        return self.cache.regenerations

    @property
    def average_trace_instructions(self) -> float:
        """Mean instructions per region (the paper's 14.8 → 18.3 stat)."""
        if not self.cache.regions:
            return 0.0
        return self.code_expansion / len(self.cache.regions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RunResult {self.program_name}/{self.selector_name} "
            f"hit={self.hit_rate:.4f} regions={self.region_count} "
            f"transitions={self.region_transitions}>"
        )
