"""The dynamic-optimization-system simulator (Figure 1, Section 2.1).

The simulator consumes the executed basic-block stream and models the
two execution contexts of a Dynamo-style system:

* **Interpreting** — every step is shown to the selector (recorders
  follow the path); at each taken branch the code cache is consulted
  first, then the selector (Figure 5 / Figure 13's
  INTERPRETED-BRANCH-TAKEN).  A selector may install a region and hand
  it back to be entered immediately (LEI's ``jump newT``).
* **In the cache** — execution walks the current region as long as the
  stream matches it (trace successor, internal CFG edge, or a taken
  branch back to the region's own top, which counts as an *executed
  cycle*).  On divergence the region is exited: straight into another
  region whose entry the branch targets (a linked stub — one *region
  transition*), or back to the interpreter (the exit target becomes a
  start candidate via ``on_cache_exit``).

The cache is unbounded by default (Section 2.3); setting
``SystemConfig.cache_capacity_bytes`` switches in the bounded cache with
flush or FIFO eviction (an explicit extension of the paper's setting).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.codecache import make_cache
from repro.cache.icache import InstructionCache
from repro.cache.region import Region, TraceRegion
from repro.errors import SelectionError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import Step
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.selection.base import RegionSelector
from repro.selection.registry import make_selector
from repro.config import SystemConfig
from repro.system.results import RunResult, RunStats, TimelineSample


class Simulator:
    """Drives one selector over one program's execution stream."""

    def __init__(
        self,
        program: Program,
        selector_name: str,
        config: Optional[SystemConfig] = None,
        sample_every: Optional[int] = None,
        icache: Optional[InstructionCache] = None,
    ) -> None:
        self.program = program
        self.selector_name = selector_name
        self.config = config if config is not None else SystemConfig()
        self.cache = make_cache(
            self.config.cache_capacity_bytes, self.config.cache_eviction_policy
        )
        self.selector: RegionSelector = make_selector(
            selector_name, self.cache, self.config, program
        )
        #: When set, a TimelineSample is recorded every N steps.
        self.sample_every = sample_every
        #: Optional instruction-cache model over the code-cache layout;
        #: fetches of cached instructions are simulated through it.
        self.icache = icache

    def run(self, steps: Iterable[Step]) -> RunResult:
        """Consume a step stream and return the measured result."""
        stats = RunStats()
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int] = {}
        selector = self.selector
        cache = self.cache
        samples: List[TimelineSample] = []
        sample_every = self.sample_every
        icache = self.icache
        step_index = 0

        region: Optional[Region] = None  # None => interpreting
        trace_position = 0
        region_is_trace = False

        for step in steps:
            step_index += 1
            cache.now = step_index
            if sample_every is not None and step_index % sample_every == 0:
                samples.append(TimelineSample(
                    step=step_index,
                    interp_instructions=stats.interp_instructions,
                    cache_instructions=stats.cache_instructions,
                    regions_selected=len(cache.regions),
                    region_transitions=stats.region_transitions,
                ))
            block = step.block
            taken = step.taken
            target = step.target

            if target is not None:
                edge = (block, target)
                count = edge_profile.get(edge)
                edge_profile[edge] = 1 if count is None else count + 1

            if region is None:
                # ---- interpreting -------------------------------------
                selector.observe_interpreted(step)
                stats.interp_steps += 1
                stats.interp_instructions += block.bundle.count
                if taken and target is not None:
                    entered = cache.lookup(target)
                    if entered is not None:
                        # The branch entering the cache is a history
                        # boundary: never profiled (Figure 5 lines 1-3),
                        # but LEI records it so its buffer has no gaps.
                        selector.on_cache_enter(step)
                    else:
                        entered = selector.on_interpreted_taken(step)
                        if entered is not None and entered.entry is not target:
                            raise SelectionError(
                                f"selector {selector.name} returned a region "
                                f"entered at {entered.entry.full_label} for a "
                                f"branch to {target.full_label}"
                            )
                    if entered is not None:
                        region = entered
                        region_is_trace = isinstance(entered, TraceRegion)
                        trace_position = 0
                        region.entry_count += 1
                        stats.cache_entries += 1
                continue

            # ---- executing in the cache -------------------------------
            count = block.bundle.count
            stats.cache_steps += 1
            stats.cache_instructions += count
            region.executed_instructions += count
            if icache is not None:
                base = region.cache_address
                if base is not None:
                    if region_is_trace:
                        offset = region.position_offsets[trace_position]
                    else:
                        offset = region.block_offsets[block]
                    icache.touch(base + offset, block.byte_size)

            if region_is_trace:
                next_position = region.position_after(trace_position, taken, target)
                if next_position is not None:
                    if next_position == 0 and taken:
                        region.cycle_backs += 1
                    trace_position = next_position
                    continue
            else:
                if region.stays_internal(block, taken, target):
                    if target is region.entry:
                        region.cycle_backs += 1
                    continue

            # The transfer leaves the region.
            region.exit_count += 1
            if target is None:
                region = None
                continue
            linked = cache.lookup(target)
            if linked is not None:
                # A linked exit stub: direct region-to-region jump.
                stats.region_transitions += 1
                region = linked
                region_is_trace = isinstance(linked, TraceRegion)
                trace_position = 0
                region.entry_count += 1
                continue
            # Exit to the interpreter; the exit target becomes a start
            # candidate, and (LEI) may complete a cycle that installs and
            # immediately enters a new region.
            stats.cache_exits += 1
            exited_region = region
            region = None
            selector.on_cache_exit(step, exited_region)
            installed = cache.lookup(target)
            if installed is not None:
                region = installed
                region_is_trace = isinstance(installed, TraceRegion)
                trace_position = 0
                region.entry_count += 1
                stats.cache_entries += 1

        selector.finish()
        if sample_every is not None:
            samples.append(TimelineSample(
                step=step_index,
                interp_instructions=stats.interp_instructions,
                cache_instructions=stats.cache_instructions,
                regions_selected=len(cache.regions),
                region_transitions=stats.region_transitions,
            ))
        diagnostics = getattr(selector, "diagnostics", lambda: {})()
        return RunResult(
            program_name=self.program.name,
            selector_name=self.selector_name,
            stats=stats,
            cache=cache,
            edge_profile=edge_profile,
            peak_counters=selector.peak_counters,
            peak_observed_trace_bytes=selector.peak_observed_trace_bytes,
            selector_diagnostics=diagnostics,
            stub_bytes=self.config.stub_bytes,
            samples=samples,
            icache=icache,
        )


def simulate(
    program: Program,
    selector_name: str,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    max_steps: Optional[int] = None,
    sample_every: Optional[int] = None,
    icache: Optional[InstructionCache] = None,
) -> RunResult:
    """Convenience: execute ``program`` live and simulate the system.

    ``simulate(program, "net")`` is the one-call entry point used by the
    examples; experiments that want collect-once/replay-many semantics
    drive :class:`Simulator` with :func:`repro.tracing.replay_trace`
    streams instead.
    """
    engine = ExecutionEngine(program, seed=seed, max_steps=max_steps)
    simulator = Simulator(
        program, selector_name, config,
        sample_every=sample_every, icache=icache,
    )
    return simulator.run(engine.run())
