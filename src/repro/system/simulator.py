"""The dynamic-optimization-system simulator (Figure 1, Section 2.1).

The simulator consumes the executed basic-block stream and models the
two execution contexts of a Dynamo-style system:

* **Interpreting** — every step is shown to the selector (recorders
  follow the path); at each taken branch the code cache is consulted
  first, then the selector (Figure 5 / Figure 13's
  INTERPRETED-BRANCH-TAKEN).  A selector may install a region and hand
  it back to be entered immediately (LEI's ``jump newT``).
* **In the cache** — execution walks the current region as long as the
  stream matches it (trace successor, internal CFG edge, or a taken
  branch back to the region's own top, which counts as an *executed
  cycle*).  On divergence the region is exited: straight into another
  region whose entry the branch targets (a linked stub — one *region
  transition*), or back to the interpreter (the exit target becomes a
  start candidate via ``on_cache_exit``).

The cache is unbounded by default (Section 2.3); setting
``SystemConfig.cache_capacity_bytes`` switches in the bounded cache with
flush or FIFO eviction (an explicit extension of the paper's setting).

Observability
-------------
Passing an :class:`~repro.obs.observer.Observer` threads the run
through :mod:`repro.obs`: structured events (``cache_exit``,
``region_installed`` via the cache, ``run_failed`` on abort), a
metrics snapshot attached to the returned :class:`RunResult`, and —
when the observer carries a :class:`~repro.obs.profile.SpanTimer` —
per-phase wall time over the ``interpret`` / ``cache_walk`` /
``selector_decide`` / ``region_build`` scopes.  All instrumentation is
gated on booleans hoisted before the loop, so a run with the default
:data:`~repro.obs.observer.NULL_OBSERVER` executes the same per-step
work as an uninstrumented simulator; the guard test in
``tests/test_obs_guard.py`` holds both properties (identical results,
negligible disabled-mode overhead).

Per-step consumers (timeline sampling, custom probes) register through
one hook point — :meth:`Simulator.add_step_hook` — so nothing keeps a
private step counter that could drift from the simulator's own.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Protocol, Tuple

from repro.cache.codecache import make_cache
from repro.cache.dispatch import DispatchTable
from repro.cache.icache import InstructionCache
from repro.cache.region import Region
from repro.errors import ReproError, SelectionError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import Step
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.signals import SignalConfig, SignalTracker
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.selection.base import RegionSelector
from repro.selection.registry import make_selector
from repro.config import SystemConfig
from repro.system.results import RunResult, RunStats, TimelineSample


class StepHook(Protocol):
    """A per-step observer registered via :meth:`Simulator.add_step_hook`.

    ``on_step`` runs once per consumed step with the simulator's own
    1-based step index (the single source of truth — hooks must not
    count steps themselves); ``on_finish`` runs once after the stream
    ends with the final index.
    """

    def on_step(self, step_index: int) -> None: ...

    def on_finish(self, step_index: int) -> None: ...


def _raw_hook(selector, name: str):
    """Resolve the selector's ``<name>_raw`` fast hook, if trustworthy.

    The raw variant is used only when the class that provides the
    ``Step``-taking hook in the MRO *also* provides the raw one: a
    subclass that overrides just the ``Step`` hook must win, or the
    fast path would silently bypass its override.
    """
    raw_name = name + "_raw"
    for klass in type(selector).__mro__:
        namespace = vars(klass)
        if name in namespace or raw_name in namespace:
            if name in namespace and raw_name in namespace:
                return getattr(selector, raw_name)
            return None
    return None


class _TimelineSampler:
    """The ``sample_every`` timeline sampler, as a step hook.

    Keeping it behind the shared hook point means its notion of "step"
    is exactly the simulator's: samplers and any other registered
    observers can never drift out of sync.
    """

    def __init__(
        self,
        interval: int,
        stats: RunStats,
        cache,
        samples: List[TimelineSample],
    ) -> None:
        self.interval = interval
        self.stats = stats
        self.cache = cache
        self.samples = samples

    def _record(self, step_index: int) -> None:
        self.samples.append(TimelineSample(
            step=step_index,
            interp_instructions=self.stats.interp_instructions,
            cache_instructions=self.stats.cache_instructions,
            regions_selected=len(self.cache.regions),
            region_transitions=self.stats.region_transitions,
        ))

    def on_step(self, step_index: int) -> None:
        if step_index % self.interval == 0:
            self._record(step_index)

    def on_finish(self, step_index: int) -> None:
        # Close the timeline with a final sample so the last sample
        # always covers the full run — unless the stream ended exactly
        # on a sampling boundary, where ``on_step`` already recorded
        # this index and appending again would duplicate the sample
        # (two samples with the same ``step`` produce a zero-width
        # window downstream).
        if self.samples and self.samples[-1].step == step_index:
            return
        self._record(step_index)


class Simulator:
    """Drives one selector over one program's execution stream."""

    def __init__(
        self,
        program: Program,
        selector_name: str,
        config: Optional[SystemConfig] = None,
        sample_every: Optional[int] = None,
        icache: Optional[InstructionCache] = None,
        observer: Optional[Observer] = None,
        signals: Optional[SignalConfig] = None,
    ) -> None:
        self.program = program
        self.selector_name = selector_name
        self.config = config if config is not None else SystemConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.cache = make_cache(
            self.config.cache_capacity_bytes, self.config.cache_eviction_policy
        )
        self.cache.observer = self.observer
        if program.is_finalized:
            # Finalized programs carry dense block ids; flat id-indexed
            # residency replaces dict hashing in the fast paths.
            self.cache.bind_program(program)
        self.selector: RegionSelector = make_selector(
            selector_name, self.cache, self.config, program
        )
        self.selector.obs = self.observer
        #: When set, a TimelineSample is recorded every N steps.
        self.sample_every = sample_every
        #: Optional instruction-cache model over the code-cache layout;
        #: fetches of cached instructions are simulated through it.
        self.icache = icache
        #: When set, a windowed :class:`~repro.obs.signals.SignalTracker`
        #: runs as a step hook; after a run it is available here.
        self.signals = signals
        self.signal_tracker: Optional[SignalTracker] = None
        self._step_hooks: List[StepHook] = []

    def add_step_hook(self, hook: StepHook) -> None:
        """Register a per-step observer (see :class:`StepHook`)."""
        self._step_hooks.append(hook)

    def run(self, steps: Iterable[Step]) -> RunResult:
        """Consume a step stream and return the measured result.

        This is the *reference* pull-mode pipeline: any iterable of
        :class:`Step` objects works (a live engine generator, a replay,
        a hand-built list).  The fused fast path —
        :meth:`run_program` / :meth:`run_push` — produces bit-identical
        results without the per-step ``Step`` traffic.
        """
        return self._execute(
            lambda stats, edge_profile, step_hooks, events_on, prof:
            self._run_loop(steps, stats, edge_profile, step_hooks,
                           events_on, prof)
        )

    def run_push(self, producer) -> RunResult:
        """Fast path: consume a push-mode step producer.

        ``producer`` is called once with a ``consume(block, taken,
        target)`` callback and must invoke it for every step in order
        (e.g. :meth:`ExecutionEngine.run_into
        <repro.execution.engine.ExecutionEngine.run_into>` or
        :func:`repro.tracing.replay_trace_into` via ``partial``).  The
        per-step simulator logic runs inside the callback, so the whole
        execute→simulate pipeline is one fused loop with no generator
        suspension and no ``Step`` allocation outside selector
        callbacks.  Results are bit-identical to :meth:`run` over the
        equivalent stream.
        """
        return self._execute(
            lambda stats, edge_profile, step_hooks, events_on, prof:
            self._run_push(producer, stats, edge_profile, step_hooks,
                           events_on, prof)
        )

    def run_program(self, engine: Optional[ExecutionEngine] = None,
                    seed: int = 0,
                    max_steps: Optional[int] = None) -> RunResult:
        """Execute this simulator's program live through the fast path.

        With no ``engine``, one is built from ``seed`` / ``max_steps``;
        passing an engine lets callers pin execution parameters (it must
        wrap the simulator's own program).
        """
        if engine is None:
            engine = ExecutionEngine(self.program, seed=seed,
                                     max_steps=max_steps)
        elif engine.program is not self.program:
            raise ReproError(
                f"engine runs program {engine.program.name!r} but the "
                f"simulator was built for {self.program.name!r}"
            )
        return self._execute(
            lambda stats, edge_profile, step_hooks, events_on, prof:
            self._run_fused(engine, stats, edge_profile, step_hooks,
                            events_on, prof)
        )

    def _execute(self, loop) -> RunResult:
        """Shared run scaffolding around one of the two loop bodies."""
        stats = RunStats()
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int] = {}
        selector = self.selector
        cache = self.cache
        samples: List[TimelineSample] = []
        icache = self.icache
        obs = self.observer
        if obs.enabled:
            obs.common["benchmark"] = self.program.name
            obs.common["selector"] = self.selector_name
        events_on = obs.events_enabled
        prof = obs.profiler
        step_index = 0

        # The single per-step hook point: the timeline sampler, the
        # windowed signal tracker and any externally registered hooks
        # all tick off the same step index.
        tracker = (
            SignalTracker(self.signals, stats, cache, observer=obs)
            if self.signals is not None else None
        )
        self.signal_tracker = tracker
        step_hooks: Tuple[StepHook, ...] = tuple(
            ([_TimelineSampler(self.sample_every, stats, cache, samples)]
             if self.sample_every is not None else [])
            + ([tracker] if tracker is not None else [])
            + self._step_hooks
        )

        if events_on:
            obs.emit("run_started", 0, config_cache_capacity=(
                self.config.cache_capacity_bytes))
        try:
            step_index = loop(
                stats, edge_profile, step_hooks, events_on, prof
            )
            selector.finish()
        except ReproError as exc:
            # cache.now is the loop's step index (advanced every step),
            # so the context is exact even though the loop never
            # returned.
            failed_at = cache.now
            exc.with_context(
                benchmark=self.program.name,
                selector=self.selector_name,
                step=failed_at,
            )
            if events_on:
                obs.emit(
                    "run_failed",
                    failed_at,
                    error=type(exc).__name__,
                    message=exc.args[0] if exc.args else "",
                    **{
                        key: value
                        for key, value in exc.context.items()
                        if key not in ("benchmark", "selector", "step")
                    },
                )
                obs.sink.close()
            if prof is not None:
                prof.steps = failed_at
                prof.stop()
            raise
        for hook in step_hooks:
            hook.on_finish(step_index)
        if prof is not None:
            prof.steps = step_index
            prof.stop()
        diagnostics = getattr(selector, "diagnostics", lambda: {})()
        if obs.metrics is not None:
            self._fill_metrics(stats, step_index)
        if events_on:
            obs.emit(
                "run_finished",
                step_index,
                steps=step_index,
                regions=len(cache.regions),
                cache_exits=stats.cache_exits,
                region_transitions=stats.region_transitions,
            )
        return RunResult(
            program_name=self.program.name,
            selector_name=self.selector_name,
            stats=stats,
            cache=cache,
            edge_profile=edge_profile,
            peak_counters=selector.peak_counters,
            peak_observed_trace_bytes=selector.peak_observed_trace_bytes,
            selector_diagnostics=diagnostics,
            stub_bytes=self.config.stub_bytes,
            samples=samples,
            icache=icache,
            metrics=obs.metrics.snapshot() if obs.metrics is not None else {},
        )

    def _run_loop(
        self,
        steps: Iterable[Step],
        stats: RunStats,
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int],
        step_hooks: Tuple[StepHook, ...],
        events_on: bool,
        prof,
    ) -> int:
        """The hot loop; returns the final step index.

        Instrumentation is branch-gated on ``events_on`` / ``prof`` so
        the disabled path stays identical to the uninstrumented loop.
        """
        selector = self.selector
        cache = self.cache
        icache = self.icache
        obs = self.observer
        step_index = 0

        region: Optional[Region] = None  # None => interpreting
        trace_position = 0
        region_is_trace = False

        if prof is not None:
            prof.enter("interpret")
        for step in steps:
            step_index += 1
            cache.now = step_index
            if step_hooks:
                for hook in step_hooks:
                    hook.on_step(step_index)
            block = step.block
            taken = step.taken
            target = step.target

            if target is not None:
                edge = (block, target)
                count = edge_profile.get(edge)
                edge_profile[edge] = 1 if count is None else count + 1

            if region is None:
                # ---- interpreting -------------------------------------
                selector.observe_interpreted(step)
                stats.interp_steps += 1
                stats.interp_instructions += block.bundle.count
                if taken and target is not None:
                    entered = cache.lookup(target)
                    if entered is not None:
                        # The branch entering the cache is a history
                        # boundary: never profiled (Figure 5 lines 1-3),
                        # but LEI records it so its buffer has no gaps.
                        selector.on_cache_enter(step)
                    else:
                        if prof is not None:
                            prof.enter("selector_decide")
                            entered = selector.on_interpreted_taken(step)
                            prof.exit()
                        else:
                            entered = selector.on_interpreted_taken(step)
                        if entered is not None and entered.entry is not target:
                            raise SelectionError(
                                f"selector {selector.name} returned a region "
                                f"entered at {entered.entry.full_label} for a "
                                f"branch to {target.full_label}"
                            )
                    if entered is not None:
                        region = entered
                        region_is_trace = entered.is_trace
                        trace_position = 0
                        region.entry_count += 1
                        stats.cache_entries += 1
                        if prof is not None:
                            prof.switch("cache_walk")
                        if events_on:
                            obs.emit(
                                "cache_entered",
                                step_index,
                                entry=target.full_label,
                                order=region.selection_order,
                            )
                continue

            # ---- executing in the cache -------------------------------
            count = block.bundle.count
            stats.cache_steps += 1
            stats.cache_instructions += count
            region.executed_instructions += count
            if icache is not None:
                base = region.cache_address
                if base is not None:
                    if region_is_trace:
                        offset = region.position_offsets[trace_position]
                    else:
                        offset = region.block_offsets[block]
                    icache.touch(base + offset, block.byte_size)

            if region_is_trace:
                next_position = region.position_after(trace_position, taken, target)
                if next_position is not None:
                    if next_position == 0 and taken:
                        region.cycle_backs += 1
                    trace_position = next_position
                    continue
            else:
                if region.stays_internal(block, taken, target):
                    if target is region.entry:
                        region.cycle_backs += 1
                    continue

            # The transfer leaves the region.
            region.exit_count += 1
            if target is None:
                region = None
                if prof is not None:
                    prof.switch("interpret")
                continue
            linked = cache.lookup(target)
            if linked is not None:
                # A linked exit stub: direct region-to-region jump.
                stats.region_transitions += 1
                region = linked
                region_is_trace = linked.is_trace
                trace_position = 0
                region.entry_count += 1
                continue
            # Exit to the interpreter; the exit target becomes a start
            # candidate, and (LEI) may complete a cycle that installs and
            # immediately enters a new region.
            stats.cache_exits += 1
            exited_region = region
            region = None
            if prof is not None:
                prof.switch("interpret")
            if events_on:
                obs.emit(
                    "cache_exit",
                    step_index,
                    region_entry=exited_region.entry.full_label,
                    order=exited_region.selection_order,
                    exit_target=target.full_label,
                )
            if prof is not None:
                prof.enter("selector_decide")
                selector.on_cache_exit(step, exited_region)
                prof.exit()
            else:
                selector.on_cache_exit(step, exited_region)
            installed = cache.lookup(target)
            if installed is not None:
                region = installed
                region_is_trace = installed.is_trace
                trace_position = 0
                region.entry_count += 1
                stats.cache_entries += 1
                if prof is not None:
                    prof.switch("cache_walk")
                if events_on:
                    obs.emit(
                        "cache_entered",
                        step_index,
                        entry=target.full_label,
                        order=region.selection_order,
                    )
        return step_index

    def _run_push(
        self,
        producer,
        stats: RunStats,
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int],
        step_hooks: Tuple[StepHook, ...],
        events_on: bool,
        prof,
    ) -> int:
        """The fused fast loop: :meth:`_run_loop`'s body as a callback.

        The per-step logic is a closure handed to ``producer``, so the
        producer's own loop (the engine's ``run_into`` or the trace
        decoder's ``steps_into``) drives the simulation directly — no
        generator suspension, no :class:`Step` unpacking.  ``Step``
        objects are built only where selectors need them: on every
        interpreted step and at cache exits; the cache walk — the bulk
        of a hot run — allocates nothing.  Residency lookups index the
        cache's flat id-keyed mirror when a finalized program is bound
        (one list index per taken branch instead of a dict probe), and
        the region walk inlines ``position_after`` /
        ``stays_internal`` against locals rebound at region entry.
        Must mirror :meth:`_run_loop` decision-for-decision (the
        bit-identity suite in ``tests/test_fast_path.py`` compares the
        two).
        """
        selector = self.selector
        cache = self.cache
        icache = self.icache
        obs = self.observer
        observe_interpreted = selector.observe_interpreted
        on_interpreted_taken = selector.on_interpreted_taken
        on_cache_enter = selector.on_cache_enter
        on_cache_exit = selector.on_cache_exit
        cache_lookup = cache.lookup
        # Flat id-indexed residency (``bind_program``).  Identity of
        # the resident region's entry is still the lookup contract, so
        # a block with a colliding id (hand-built streams over another
        # program) can never match; blocks without ids fall out as
        # not-cached, exactly like the dict probe they replace.
        resident = cache._resident_by_id
        use_flat = resident is not None
        edge_get = edge_profile.get
        make_step = Step
        profiled = prof is not None

        step_index = 0
        region: Optional[Region] = None  # None => interpreting
        trace_position = 0
        region_is_trace = False
        # Per-region walk locals, rebound at each region entry — the
        # inlined twins of TraceRegion.position_after and
        # CFGRegion.stays_internal, so a walk step makes no method call.
        path: Tuple[BasicBlock, ...] = ()
        path_len = 0
        path0: Optional[BasicBlock] = None
        cur_blocks: FrozenSet[BasicBlock] = frozenset()
        cur_edges: FrozenSet[Tuple[BasicBlock, BasicBlock]] = frozenset()
        cur_dynamic: FrozenSet[BasicBlock] = frozenset()
        cur_entry: Optional[BasicBlock] = None

        def consume(block, taken, target):
            nonlocal step_index, region, trace_position, region_is_trace
            nonlocal path, path_len, path0
            nonlocal cur_blocks, cur_edges, cur_dynamic, cur_entry
            step_index += 1
            cache.now = step_index
            if step_hooks:
                for hook in step_hooks:
                    hook.on_step(step_index)

            if target is not None:
                edge = (block, target)
                count = edge_get(edge)
                edge_profile[edge] = 1 if count is None else count + 1

            current = region
            if current is None:
                # ---- interpreting -------------------------------------
                step = make_step(block, taken, target)
                observe_interpreted(step)
                stats.interp_steps += 1
                stats.interp_instructions += block.bundle.count
                if taken and target is not None:
                    if use_flat:
                        tid = target.block_id
                        entered = resident[tid] if tid is not None else None
                        if (entered is not None
                                and entered.entry is not target):
                            entered = None
                    else:
                        entered = cache_lookup(target)
                    if entered is not None:
                        # The branch entering the cache is a history
                        # boundary: never profiled (Figure 5 lines 1-3),
                        # but LEI records it so its buffer has no gaps.
                        on_cache_enter(step)
                    else:
                        if profiled:
                            prof.enter("selector_decide")
                            entered = on_interpreted_taken(step)
                            prof.exit()
                        else:
                            entered = on_interpreted_taken(step)
                        if entered is not None and entered.entry is not target:
                            raise SelectionError(
                                f"selector {selector.name} returned a region "
                                f"entered at {entered.entry.full_label} for a "
                                f"branch to {target.full_label}"
                            )
                    if entered is not None:
                        region = entered
                        region_is_trace = entered.is_trace
                        trace_position = 0
                        if region_is_trace:
                            path = entered.path
                            path_len = len(path)
                            path0 = path[0]
                        else:
                            cur_blocks = entered.block_set
                            cur_edges = entered.edges
                            cur_dynamic = entered.dynamic_blocks
                            cur_entry = entered.entry
                        entered.entry_count += 1
                        stats.cache_entries += 1
                        if profiled:
                            prof.switch("cache_walk")
                        if events_on:
                            obs.emit(
                                "cache_entered",
                                step_index,
                                entry=target.full_label,
                                order=entered.selection_order,
                            )
                return

            # ---- executing in the cache -------------------------------
            count = block.bundle.count
            stats.cache_steps += 1
            stats.cache_instructions += count
            current.executed_instructions += count
            if icache is not None:
                base = current.cache_address
                if base is not None:
                    if region_is_trace:
                        offset = current.position_offsets[trace_position]
                    else:
                        offset = current.block_offsets[block]
                    icache.touch(base + offset, block.byte_size)

            if region_is_trace:
                # Inlined TraceRegion.position_after: advance to the
                # next path block, or a taken branch back to the top.
                next_position = trace_position + 1
                if next_position < path_len and target is path[next_position]:
                    trace_position = next_position
                    return
                if taken and target is path0:
                    current.cycle_backs += 1
                    trace_position = 0
                    return
            else:
                # Inlined CFGRegion.stays_internal.
                if target is not None and target in cur_blocks and (
                        not taken
                        or block not in cur_dynamic
                        or (block, target) in cur_edges):
                    if target is cur_entry:
                        current.cycle_backs += 1
                    return

            # The transfer leaves the region.
            current.exit_count += 1
            if target is None:
                region = None
                if profiled:
                    prof.switch("interpret")
                return
            if use_flat:
                tid = target.block_id
                linked = resident[tid] if tid is not None else None
                if linked is not None and linked.entry is not target:
                    linked = None
            else:
                linked = cache_lookup(target)
            if linked is not None:
                # A linked exit stub: direct region-to-region jump.
                stats.region_transitions += 1
                region = linked
                region_is_trace = linked.is_trace
                trace_position = 0
                if region_is_trace:
                    path = linked.path
                    path_len = len(path)
                    path0 = path[0]
                else:
                    cur_blocks = linked.block_set
                    cur_edges = linked.edges
                    cur_dynamic = linked.dynamic_blocks
                    cur_entry = linked.entry
                linked.entry_count += 1
                return
            # Exit to the interpreter; the exit target becomes a start
            # candidate, and (LEI) may complete a cycle that installs and
            # immediately enters a new region.
            stats.cache_exits += 1
            region = None
            if profiled:
                prof.switch("interpret")
            if events_on:
                obs.emit(
                    "cache_exit",
                    step_index,
                    region_entry=current.entry.full_label,
                    order=current.selection_order,
                    exit_target=target.full_label,
                )
            step = make_step(block, taken, target)
            if profiled:
                prof.enter("selector_decide")
                on_cache_exit(step, current)
                prof.exit()
            else:
                on_cache_exit(step, current)
            if use_flat:
                tid = target.block_id
                installed = resident[tid] if tid is not None else None
                if installed is not None and installed.entry is not target:
                    installed = None
            else:
                installed = cache_lookup(target)
            if installed is not None:
                region = installed
                region_is_trace = installed.is_trace
                trace_position = 0
                if region_is_trace:
                    path = installed.path
                    path_len = len(path)
                    path0 = path[0]
                else:
                    cur_blocks = installed.block_set
                    cur_edges = installed.edges
                    cur_dynamic = installed.dynamic_blocks
                    cur_entry = installed.entry
                installed.entry_count += 1
                stats.cache_entries += 1
                if profiled:
                    prof.switch("cache_walk")
                if events_on:
                    obs.emit(
                        "cache_entered",
                        step_index,
                        entry=target.full_label,
                        order=installed.selection_order,
                    )

        if profiled:
            prof.enter("interpret")
        producer(consume)
        return step_index

    def _run_fused(
        self,
        engine: ExecutionEngine,
        stats: RunStats,
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int],
        step_hooks: Tuple[StepHook, ...],
        events_on: bool,
        prof,
    ) -> int:
        """The fully fused live loop: engine + simulator in one frame.

        :meth:`run_program`'s loop body.  Where :meth:`_run_push` still
        pays one consumer call per step, this loop inlines the engine's
        block-decision dispatch *and* the simulator's per-step logic
        into a single ``while`` over compiled *walk tables*
        (:mod:`repro.cache.dispatch`): every region install compiles a
        flat per-position table — pre-bound decision closure,
        instruction count, layout offsets, patched trace links — so a
        cache-walk step indexes parallel tuples instead of touching
        region or block attributes, maximal statically-advancing spans
        of a trace are consumed in one bound (*static runs*), and a
        region exit whose statically-known target is another resident
        region's entry chains through the patched link slot without any
        residency lookup at all.  Decision-for-decision it must mirror
        :meth:`_run_loop`; the bit-identity suite in
        ``tests/test_fast_path.py`` compares the two over every
        (benchmark × selector × cache-policy) cell.

        Bit-identity-preserving shortcuts, and why they are safe:

        * the hot ``RunStats`` counters accumulate in locals and are
          flushed to ``stats`` before any step hook runs (hooks observe
          steps ``1..N-1`` at step ``N``, exactly like the reference
          loop) and again on every exit path;
        * ``cache.now`` is advanced only where someone can read it —
          before selector callbacks, hooks, and region installs — not
          on pure walk steps, where nothing consults the clock;
        * ``Step`` records are built only for the selector callbacks
          that take them (the base-class no-op hooks are skipped
          entirely, so e.g. LEI pays nothing per untaken interpreted
          step);
        * walk-table decision closures are the *same objects* the
          interpret path uses (one shared per-block memo indexed by
          interned id), so per-site decision state never forks between
          contexts; building a closure consumes no randomness, so eager
          compilation at install time leaves the RNG stream untouched;
        * a static run batches only decisions that are constant
          ``(taken, target)`` tuples advancing along the trace —
          evaluating them stepwise has no side effects — and batching
          is disabled when per-step observers (step hooks, an icache
          model) are registered;
        * a patched link slot holds exactly what ``CodeCache.lookup``
          would return for that exit's statically-known target — the
          dispatch layer re-patches every slot on install and eviction,
          and dynamic-target exits (returns, indirect jumps) fall back
          to the flat residency table;
        * trace-walk edge counts are keyed by *path position* in flat
          lists and folded into ``edge_profile`` once at the end — the
          walked edge is fully determined by the position, and dict
          equality does not see insertion order.
        """
        selector = self.selector
        cache = self.cache
        icache = self.icache
        obs = self.observer

        base = RegionSelector
        bound_observe = selector.observe_interpreted
        observe_interpreted = (
            None
            if getattr(bound_observe, "__func__", None)
            is base.observe_interpreted
            else bound_observe
        )
        bound_enter = selector.on_cache_enter
        on_cache_enter = (
            None
            if getattr(bound_enter, "__func__", None) is base.on_cache_enter
            else bound_enter
        )
        on_interpreted_taken = selector.on_interpreted_taken
        on_cache_exit = selector.on_cache_exit
        # Allocation-free hook variants (LEI ships them); ``None`` means
        # build a Step and use the standard hook.
        on_taken_raw = _raw_hook(selector, "on_interpreted_taken")
        on_enter_raw = _raw_hook(selector, "on_cache_enter")
        edge_get = edge_profile.get
        make_step = Step
        profiled = prof is not None
        if profiled:
            prof_enter = prof.enter
            prof_exit = prof.exit
            prof_switch = prof.switch

        stack, ctx = engine._push_state()
        program = engine.program
        # Interned per-block decision closures, indexed by dense block
        # id: one shared memo serving the interpret path and every
        # compiled walk table, so per-site decision state lives in
        # exactly one closure regardless of execution context.
        deciders: List[object] = [None] * len(program.blocks)
        make_decider = engine._decider_for

        def decider_for(b, _deciders=deciders, _make=make_decider,
                        _stack=stack, _ctx=ctx):
            bid = b.block_id
            decide = _deciders[bid]
            if decide is None:
                decide = _deciders[bid] = _make(b, _stack, _ctx)
            return decide

        dispatch = DispatchTable(program, decider_for)
        cache.bind_dispatch(dispatch)
        # Flat residency by interned entry id — the HASH-LOOKUP of
        # Figures 5/13 reduced to one list index; kept patched by the
        # cache across installs, evictions, and flushes.
        tables_by_entry = dispatch.tables_by_entry

        block: Optional[BasicBlock] = program.entry
        max_steps = engine.max_steps
        steps = 0
        # Static-run batching folds whole trace spans into one loop
        # iteration, so it is valid only when nothing observes
        # individual steps.
        can_batch = not step_hooks and icache is None

        # Hot counters, kept local (see the flush discipline above).
        # Every step is either interpreted or cached, so the cache-side
        # step count is derived at flush points (``steps`` minus the
        # interpreted count) instead of accumulated per walk step, and
        # cache instructions accumulate per region stint
        # (``walk_insts``), flushed into ``cache_insts`` when the stint
        # ends.
        interp_steps = 0
        interp_insts = 0
        cache_insts = 0

        region: Optional[Region] = None  # None => interpreting
        cur_table = None
        cur_is_trace = False
        trace_position = 0
        walk_insts = 0  # current region stint, flushed on region change
        # Trace walk-table locals, rebound at each region entry.
        path: Tuple[BasicBlock, ...] = ()
        path_len = 0
        path0: Optional[BasicBlock] = None
        wt_deciders: List[object] = []
        wt_counts: Tuple[int, ...] = ()
        run_len: Tuple[int, ...] = ()
        run_insts: Tuple[int, ...] = ()
        run_hits: List[int] = []
        adv: List[int] = []
        cyc: List[int] = []
        dyn_exit: Tuple[bool, ...] = ()
        link_taken: List[object] = []
        link_fall: List[object] = []
        # CFG walk-table locals, likewise.
        cur_records: Dict[BasicBlock, list] = {}
        cur_blocks: FrozenSet[BasicBlock] = frozenset()
        cur_entry: Optional[BasicBlock] = None

        if profiled:
            prof.enter("interpret")
        try:
            while block is not None and steps < max_steps:
                if region is None:
                    # ---- interpreting ---------------------------------
                    steps += 1
                    bid = block.block_id
                    decide = deciders[bid]
                    if decide is None:
                        decide = deciders[bid] = make_decider(
                            block, stack, ctx)
                    if decide.__class__ is tuple:
                        taken, target = decide
                    else:
                        taken, target = decide(steps)
                    count = block.bundle.count

                    if step_hooks:
                        cache.now = steps
                        stats.interp_steps = interp_steps
                        stats.interp_instructions = interp_insts
                        stats.cache_steps = steps - 1 - interp_steps
                        stats.cache_instructions = cache_insts + walk_insts
                        for hook in step_hooks:
                            hook.on_step(steps)

                    if target is not None:
                        edge = (block, target)
                        prior = edge_get(edge)
                        edge_profile[edge] = 1 if prior is None else prior + 1
                    if observe_interpreted is not None:
                        # The clock must be current before any selector
                        # callback (installs stamp ``selected_at_step``
                        # from it); steps with no callback skip the
                        # store — nothing reads the clock there.
                        cache.now = steps
                        step = make_step(block, taken, target)
                        observe_interpreted(step)
                    else:
                        step = None
                    interp_steps += 1
                    interp_insts += count
                    if taken and target is not None:
                        cache.now = steps
                        entered_table = tables_by_entry[target.block_id]
                        if entered_table is not None:
                            # The branch entering the cache is a history
                            # boundary: never profiled (Figure 5 lines
                            # 1-3), but LEI records it so its buffer has
                            # no gaps.
                            if on_enter_raw is not None and step is None:
                                on_enter_raw(block, taken, target)
                            elif on_cache_enter is not None:
                                if step is None:
                                    step = make_step(block, taken, target)
                                on_cache_enter(step)
                        else:
                            if on_taken_raw is not None and step is None:
                                if profiled:
                                    prof_enter("selector_decide")
                                    entered = on_taken_raw(
                                        block, taken, target)
                                    prof_exit()
                                else:
                                    entered = on_taken_raw(
                                        block, taken, target)
                            else:
                                if step is None:
                                    step = make_step(block, taken, target)
                                if profiled:
                                    prof_enter("selector_decide")
                                    entered = on_interpreted_taken(step)
                                    prof_exit()
                                else:
                                    entered = on_interpreted_taken(step)
                            if entered is not None:
                                if entered.entry is not target:
                                    raise SelectionError(
                                        f"selector {selector.name} returned "
                                        f"a region entered at "
                                        f"{entered.entry.full_label} for a "
                                        f"branch to {target.full_label}"
                                    )
                                # A selector-returned region (LEI's
                                # ``jump newT``): resident after the
                                # selector's install, or compiled on
                                # the spot for a region the selector
                                # chose not to install.
                                entered_table = dispatch.table_for(entered)
                        if entered_table is not None:
                            region = entered_table.region
                            cur_table = entered_table
                            cur_is_trace = entered_table.is_trace
                            trace_position = 0
                            walk_insts = 0
                            if cur_is_trace:
                                path = entered_table.path
                                path_len = entered_table.path_len
                                path0 = entered_table.path0
                                wt_deciders = entered_table.deciders
                                wt_counts = entered_table.counts
                                run_len = entered_table.run_len
                                run_insts = entered_table.run_insts
                                run_hits = entered_table.run_hits
                                adv = entered_table.adv
                                cyc = entered_table.cyc
                                dyn_exit = entered_table.dyn_exit
                                link_taken = entered_table.link_taken
                                link_fall = entered_table.link_fall
                            else:
                                cur_records = entered_table.records
                                cur_blocks = entered_table.blocks
                                cur_entry = entered_table.entry
                            region.entry_count += 1
                            stats.cache_entries += 1
                            if profiled:
                                prof_switch("cache_walk")
                            if events_on:
                                obs.emit(
                                    "cache_entered",
                                    steps,
                                    entry=target.full_label,
                                    order=region.selection_order,
                                )
                    block = target
                    continue

                # ---- executing in the cache ---------------------------
                if cur_is_trace:
                    pos = trace_position
                    if can_batch:
                        span = run_len[pos]
                        if span:
                            remaining = max_steps - steps
                            if span <= remaining:
                                batch_insts = run_insts[pos]
                                run_hits[pos] += 1
                            else:
                                # The step budget ends inside the span:
                                # consume only what fits, recording the
                                # walked edges position by position.
                                span = remaining
                                batch_insts = 0
                                for i in range(pos, pos + span):
                                    batch_insts += wt_counts[i]
                                    adv[i] += 1
                            steps += span
                            walk_insts += batch_insts
                            pos += span
                            trace_position = pos
                            block = path[pos]
                            continue
                    steps += 1
                    decide = wt_deciders[pos]
                    if decide.__class__ is tuple:
                        taken, target = decide
                    else:
                        taken, target = decide(steps)
                    if step_hooks:
                        cache.now = steps
                        stats.interp_steps = interp_steps
                        stats.interp_instructions = interp_insts
                        stats.cache_steps = steps - 1 - interp_steps
                        stats.cache_instructions = cache_insts + walk_insts
                        for hook in step_hooks:
                            hook.on_step(steps)
                    walk_insts += wt_counts[pos]
                    if icache is not None:
                        base_addr = region.cache_address
                        if base_addr is not None:
                            icache.touch(
                                base_addr + cur_table.offsets[pos],
                                cur_table.sizes[pos])
                    # Inlined TraceRegion.position_after, with the
                    # stay-in-trace edges batched by position.
                    next_position = pos + 1
                    if (next_position < path_len
                            and target is path[next_position]):
                        adv[pos] += 1
                        trace_position = next_position
                        block = target
                        continue
                    if taken and target is path0:
                        cyc[pos] += 1
                        region.cycle_backs += 1
                        trace_position = 0
                        block = target
                        continue
                else:
                    rec = cur_records[block]
                    steps += 1
                    decide = rec[0]  # REC_DECIDE
                    if decide.__class__ is tuple:
                        taken, target = decide
                    else:
                        taken, target = decide(steps)
                    if step_hooks:
                        cache.now = steps
                        stats.interp_steps = interp_steps
                        stats.interp_instructions = interp_insts
                        stats.cache_steps = steps - 1 - interp_steps
                        stats.cache_instructions = cache_insts + walk_insts
                        for hook in step_hooks:
                            hook.on_step(steps)
                    walk_insts += rec[1]  # REC_COUNT
                    if icache is not None:
                        base_addr = region.cache_address
                        if base_addr is not None:
                            icache.touch(
                                base_addr + rec[3], rec[4])  # OFFSET, SIZE
                    # Inlined CFGRegion.stays_internal: a taken transfer
                    # checks the block's stay set (observed-edge targets
                    # for dynamic blocks, the whole region otherwise).
                    if target is not None and (
                            (target in rec[2])  # REC_STAY
                            if taken else (target in cur_blocks)):
                        edge = (block, target)
                        prior = edge_get(edge)
                        edge_profile[edge] = (
                            1 if prior is None else prior + 1)
                        if target is cur_entry:
                            region.cycle_backs += 1
                        block = target
                        continue

                # ---- the transfer leaves the region -------------------
                if target is not None:
                    edge = (block, target)
                    prior = edge_get(edge)
                    edge_profile[edge] = 1 if prior is None else prior + 1
                region.exit_count += 1
                region.executed_instructions += walk_insts
                cache_insts += walk_insts
                walk_insts = 0
                if target is None:
                    region = None
                    if profiled:
                        prof_switch("interpret")
                    block = target
                    continue
                # The patched link slot for this exit's statically-known
                # target (dynamic targets consult flat residency): holds
                # the linked region's walk table exactly while that
                # region is resident.
                if cur_is_trace:
                    if dyn_exit[pos]:
                        linked_table = tables_by_entry[target.block_id]
                    elif taken:
                        linked_table = link_taken[pos]
                    else:
                        linked_table = link_fall[pos]
                else:
                    if rec[7]:  # REC_DYNAMIC
                        linked_table = tables_by_entry[target.block_id]
                    elif taken:
                        linked_table = rec[5]  # REC_LINK_TAKEN
                    else:
                        linked_table = rec[6]  # REC_LINK_FALL
                if linked_table is not None:
                    # A linked exit stub: direct region-to-region jump.
                    stats.region_transitions += 1
                    region = linked_table.region
                    cur_table = linked_table
                    cur_is_trace = linked_table.is_trace
                    trace_position = 0
                    if cur_is_trace:
                        path = linked_table.path
                        path_len = linked_table.path_len
                        path0 = linked_table.path0
                        wt_deciders = linked_table.deciders
                        wt_counts = linked_table.counts
                        run_len = linked_table.run_len
                        run_insts = linked_table.run_insts
                        run_hits = linked_table.run_hits
                        adv = linked_table.adv
                        cyc = linked_table.cyc
                        dyn_exit = linked_table.dyn_exit
                        link_taken = linked_table.link_taken
                        link_fall = linked_table.link_fall
                    else:
                        cur_records = linked_table.records
                        cur_blocks = linked_table.blocks
                        cur_entry = linked_table.entry
                    region.entry_count += 1
                    block = target
                    continue
                # Exit to the interpreter; the exit target becomes a
                # start candidate, and (LEI) may complete a cycle
                # that installs and immediately enters a new region.
                stats.cache_exits += 1
                exited_region = region
                region = None
                cache.now = steps
                if profiled:
                    prof_switch("interpret")
                if events_on:
                    obs.emit(
                        "cache_exit",
                        steps,
                        region_entry=exited_region.entry.full_label,
                        order=exited_region.selection_order,
                        exit_target=target.full_label,
                    )
                step = make_step(block, taken, target)
                if profiled:
                    prof_enter("selector_decide")
                    on_cache_exit(step, exited_region)
                    prof_exit()
                else:
                    on_cache_exit(step, exited_region)
                installed_table = tables_by_entry[target.block_id]
                if installed_table is not None:
                    region = installed_table.region
                    cur_table = installed_table
                    cur_is_trace = installed_table.is_trace
                    trace_position = 0
                    walk_insts = 0
                    if cur_is_trace:
                        path = installed_table.path
                        path_len = installed_table.path_len
                        path0 = installed_table.path0
                        wt_deciders = installed_table.deciders
                        wt_counts = installed_table.counts
                        run_len = installed_table.run_len
                        run_insts = installed_table.run_insts
                        run_hits = installed_table.run_hits
                        adv = installed_table.adv
                        cyc = installed_table.cyc
                        dyn_exit = installed_table.dyn_exit
                        link_taken = installed_table.link_taken
                        link_fall = installed_table.link_fall
                    else:
                        cur_records = installed_table.records
                        cur_blocks = installed_table.blocks
                        cur_entry = installed_table.entry
                    region.entry_count += 1
                    stats.cache_entries += 1
                    if profiled:
                        prof_switch("cache_walk")
                    if events_on:
                        obs.emit(
                            "cache_entered",
                            steps,
                            entry=target.full_label,
                            order=region.selection_order,
                        )
                block = target
        finally:
            if region is not None:
                region.executed_instructions += walk_insts
            cache_insts += walk_insts
            stats.interp_steps = interp_steps
            stats.interp_instructions = interp_insts
            stats.cache_steps = steps - interp_steps
            stats.cache_instructions = cache_insts
            cache.now = steps
            engine.steps_executed = steps
            engine.instructions_executed = interp_insts + cache_insts
            cache.unbind_dispatch()

        # Fold the position-batched trace-walk edges into the shared
        # profile (covers every table compiled this run, including
        # tables of regions evicted mid-run).
        for table in dispatch.trace_tables:
            table.fold_edges(edge_profile)
        return steps

    def _fill_metrics(self, stats: RunStats, step_index: int) -> None:
        """Transfer the run's aggregates into the metrics registry.

        Hot-path counts are kept in :class:`RunStats` exactly as before
        (instrumentation must never perturb the simulation) and flowed
        into the registry once at end of run; only rare events (region
        install/reject, evictions) count live.
        """
        registry = self.observer.metrics
        steps = registry.counter(
            "steps_total", "Executed basic blocks by context.", ["context"]
        )
        steps.inc(stats.interp_steps, context="interpret")
        steps.inc(stats.cache_steps, context="cache")
        insts = registry.counter(
            "instructions_total", "Executed instructions by context.",
            ["context"],
        )
        insts.inc(stats.interp_instructions, context="interpret")
        insts.inc(stats.cache_instructions, context="cache")
        registry.counter(
            "cache_entries_total",
            "Entries into the code cache from the interpreter.",
        ).inc(stats.cache_entries)
        registry.counter(
            "cache_exits_total",
            "Exits from the code cache back to the interpreter.",
        ).inc(stats.cache_exits)
        registry.counter(
            "region_transitions_total",
            "Direct region-to-region jumps through linked exit stubs.",
        ).inc(stats.region_transitions)
        registry.gauge(
            "cache_resident_regions", "Resident regions at end of run."
        ).set(self.cache.resident_count)
        registry.gauge(
            "cache_resident_bytes", "Resident cache bytes at end of run."
        ).set(self.cache.resident_bytes)
        registry.gauge(
            "peak_profiling_counters",
            "Peak live profiling counters (Figure 10).",
        ).set(self.selector.peak_counters)
        registry.gauge(
            "peak_observed_trace_bytes",
            "Peak observed-trace storage (Figure 18).",
        ).set(self.selector.peak_observed_trace_bytes)


def simulate(
    program: Program,
    selector_name: str,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    max_steps: Optional[int] = None,
    sample_every: Optional[int] = None,
    icache: Optional[InstructionCache] = None,
    observer: Optional[Observer] = None,
    fast: bool = True,
    signals: Optional[SignalConfig] = None,
) -> RunResult:
    """Convenience: execute ``program`` live and simulate the system.

    ``simulate(program, "net")`` is the one-call entry point used by the
    examples; experiments that want collect-once/replay-many semantics
    drive :class:`Simulator` with :func:`repro.tracing.replay_trace`
    streams instead.

    ``fast`` selects the fused execute→simulate pipeline (the default;
    see :meth:`Simulator.run_program`); ``fast=False`` runs the
    reference generator pipeline instead.  The two produce bit-identical
    results — the flag only exists so tests and debugging sessions can
    pin a path (see ``docs/performance.md``).
    """
    engine = ExecutionEngine(program, seed=seed, max_steps=max_steps)
    simulator = Simulator(
        program, selector_name, config,
        sample_every=sample_every, icache=icache, observer=observer,
        signals=signals,
    )
    if fast:
        return simulator.run_program(engine)
    return simulator.run(engine.run())
