"""The dynamic-optimization-system simulator (Figure 1, Section 2.1).

The simulator consumes the executed basic-block stream and models the
two execution contexts of a Dynamo-style system:

* **Interpreting** — every step is shown to the selector (recorders
  follow the path); at each taken branch the code cache is consulted
  first, then the selector (Figure 5 / Figure 13's
  INTERPRETED-BRANCH-TAKEN).  A selector may install a region and hand
  it back to be entered immediately (LEI's ``jump newT``).
* **In the cache** — execution walks the current region as long as the
  stream matches it (trace successor, internal CFG edge, or a taken
  branch back to the region's own top, which counts as an *executed
  cycle*).  On divergence the region is exited: straight into another
  region whose entry the branch targets (a linked stub — one *region
  transition*), or back to the interpreter (the exit target becomes a
  start candidate via ``on_cache_exit``).

The cache is unbounded by default (Section 2.3); setting
``SystemConfig.cache_capacity_bytes`` switches in the bounded cache with
flush or FIFO eviction (an explicit extension of the paper's setting).

Observability
-------------
Passing an :class:`~repro.obs.observer.Observer` threads the run
through :mod:`repro.obs`: structured events (``cache_exit``,
``region_installed`` via the cache, ``run_failed`` on abort), a
metrics snapshot attached to the returned :class:`RunResult`, and —
when the observer carries a :class:`~repro.obs.profile.SpanTimer` —
per-phase wall time over the ``interpret`` / ``cache_walk`` /
``selector_decide`` / ``region_build`` scopes.  All instrumentation is
gated on booleans hoisted before the loop, so a run with the default
:data:`~repro.obs.observer.NULL_OBSERVER` executes the same per-step
work as an uninstrumented simulator; the guard test in
``tests/test_obs_guard.py`` holds both properties (identical results,
negligible disabled-mode overhead).

Per-step consumers (timeline sampling, custom probes) register through
one hook point — :meth:`Simulator.add_step_hook` — so nothing keeps a
private step counter that could drift from the simulator's own.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.cache.codecache import make_cache
from repro.cache.icache import InstructionCache
from repro.cache.region import Region, TraceRegion
from repro.errors import ReproError, SelectionError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import Step
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.selection.base import RegionSelector
from repro.selection.registry import make_selector
from repro.config import SystemConfig
from repro.system.results import RunResult, RunStats, TimelineSample


class StepHook(Protocol):
    """A per-step observer registered via :meth:`Simulator.add_step_hook`.

    ``on_step`` runs once per consumed step with the simulator's own
    1-based step index (the single source of truth — hooks must not
    count steps themselves); ``on_finish`` runs once after the stream
    ends with the final index.
    """

    def on_step(self, step_index: int) -> None: ...

    def on_finish(self, step_index: int) -> None: ...


class _TimelineSampler:
    """The ``sample_every`` timeline sampler, as a step hook.

    Keeping it behind the shared hook point means its notion of "step"
    is exactly the simulator's: samplers and any other registered
    observers can never drift out of sync.
    """

    def __init__(
        self,
        interval: int,
        stats: RunStats,
        cache,
        samples: List[TimelineSample],
    ) -> None:
        self.interval = interval
        self.stats = stats
        self.cache = cache
        self.samples = samples

    def _record(self, step_index: int) -> None:
        self.samples.append(TimelineSample(
            step=step_index,
            interp_instructions=self.stats.interp_instructions,
            cache_instructions=self.stats.cache_instructions,
            regions_selected=len(self.cache.regions),
            region_transitions=self.stats.region_transitions,
        ))

    def on_step(self, step_index: int) -> None:
        if step_index % self.interval == 0:
            self._record(step_index)

    def on_finish(self, step_index: int) -> None:
        # Always close the timeline with a final sample, even when the
        # stream happens to end on a sampling boundary (analysis relies
        # on the last sample covering the full run).
        self._record(step_index)


class Simulator:
    """Drives one selector over one program's execution stream."""

    def __init__(
        self,
        program: Program,
        selector_name: str,
        config: Optional[SystemConfig] = None,
        sample_every: Optional[int] = None,
        icache: Optional[InstructionCache] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.program = program
        self.selector_name = selector_name
        self.config = config if config is not None else SystemConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.cache = make_cache(
            self.config.cache_capacity_bytes, self.config.cache_eviction_policy
        )
        self.cache.observer = self.observer
        self.selector: RegionSelector = make_selector(
            selector_name, self.cache, self.config, program
        )
        self.selector.obs = self.observer
        #: When set, a TimelineSample is recorded every N steps.
        self.sample_every = sample_every
        #: Optional instruction-cache model over the code-cache layout;
        #: fetches of cached instructions are simulated through it.
        self.icache = icache
        self._step_hooks: List[StepHook] = []

    def add_step_hook(self, hook: StepHook) -> None:
        """Register a per-step observer (see :class:`StepHook`)."""
        self._step_hooks.append(hook)

    def run(self, steps: Iterable[Step]) -> RunResult:
        """Consume a step stream and return the measured result."""
        stats = RunStats()
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int] = {}
        selector = self.selector
        cache = self.cache
        samples: List[TimelineSample] = []
        icache = self.icache
        obs = self.observer
        if obs.enabled:
            obs.common["benchmark"] = self.program.name
            obs.common["selector"] = self.selector_name
        events_on = obs.events_enabled
        prof = obs.profiler
        step_index = 0

        # The single per-step hook point: the timeline sampler and any
        # externally registered hooks all tick off the same step index.
        step_hooks: Tuple[StepHook, ...] = tuple(
            ([_TimelineSampler(self.sample_every, stats, cache, samples)]
             if self.sample_every is not None else [])
            + self._step_hooks
        )

        if events_on:
            obs.emit("run_started", 0, config_cache_capacity=(
                self.config.cache_capacity_bytes))
        try:
            step_index = self._run_loop(
                steps, stats, edge_profile, step_hooks, events_on, prof
            )
            selector.finish()
        except ReproError as exc:
            # cache.now is the loop's step index (advanced every step),
            # so the context is exact even though the loop never
            # returned.
            failed_at = cache.now
            exc.with_context(
                benchmark=self.program.name,
                selector=self.selector_name,
                step=failed_at,
            )
            if events_on:
                obs.emit(
                    "run_failed",
                    failed_at,
                    error=type(exc).__name__,
                    message=exc.args[0] if exc.args else "",
                    **{
                        key: value
                        for key, value in exc.context.items()
                        if key not in ("benchmark", "selector", "step")
                    },
                )
                obs.sink.close()
            if prof is not None:
                prof.steps = failed_at
                prof.stop()
            raise
        for hook in step_hooks:
            hook.on_finish(step_index)
        if prof is not None:
            prof.steps = step_index
            prof.stop()
        diagnostics = getattr(selector, "diagnostics", lambda: {})()
        if obs.metrics is not None:
            self._fill_metrics(stats, step_index)
        if events_on:
            obs.emit(
                "run_finished",
                step_index,
                steps=step_index,
                regions=len(cache.regions),
                cache_exits=stats.cache_exits,
                region_transitions=stats.region_transitions,
            )
        return RunResult(
            program_name=self.program.name,
            selector_name=self.selector_name,
            stats=stats,
            cache=cache,
            edge_profile=edge_profile,
            peak_counters=selector.peak_counters,
            peak_observed_trace_bytes=selector.peak_observed_trace_bytes,
            selector_diagnostics=diagnostics,
            stub_bytes=self.config.stub_bytes,
            samples=samples,
            icache=icache,
            metrics=obs.metrics.snapshot() if obs.metrics is not None else {},
        )

    def _run_loop(
        self,
        steps: Iterable[Step],
        stats: RunStats,
        edge_profile: Dict[Tuple[BasicBlock, BasicBlock], int],
        step_hooks: Tuple[StepHook, ...],
        events_on: bool,
        prof,
    ) -> int:
        """The hot loop; returns the final step index.

        Instrumentation is branch-gated on ``events_on`` / ``prof`` so
        the disabled path stays identical to the uninstrumented loop.
        """
        selector = self.selector
        cache = self.cache
        icache = self.icache
        obs = self.observer
        step_index = 0

        region: Optional[Region] = None  # None => interpreting
        trace_position = 0
        region_is_trace = False

        if prof is not None:
            prof.enter("interpret")
        for step in steps:
            step_index += 1
            cache.now = step_index
            if step_hooks:
                for hook in step_hooks:
                    hook.on_step(step_index)
            block = step.block
            taken = step.taken
            target = step.target

            if target is not None:
                edge = (block, target)
                count = edge_profile.get(edge)
                edge_profile[edge] = 1 if count is None else count + 1

            if region is None:
                # ---- interpreting -------------------------------------
                selector.observe_interpreted(step)
                stats.interp_steps += 1
                stats.interp_instructions += block.bundle.count
                if taken and target is not None:
                    entered = cache.lookup(target)
                    if entered is not None:
                        # The branch entering the cache is a history
                        # boundary: never profiled (Figure 5 lines 1-3),
                        # but LEI records it so its buffer has no gaps.
                        selector.on_cache_enter(step)
                    else:
                        if prof is not None:
                            prof.enter("selector_decide")
                            entered = selector.on_interpreted_taken(step)
                            prof.exit()
                        else:
                            entered = selector.on_interpreted_taken(step)
                        if entered is not None and entered.entry is not target:
                            raise SelectionError(
                                f"selector {selector.name} returned a region "
                                f"entered at {entered.entry.full_label} for a "
                                f"branch to {target.full_label}"
                            )
                    if entered is not None:
                        region = entered
                        region_is_trace = isinstance(entered, TraceRegion)
                        trace_position = 0
                        region.entry_count += 1
                        stats.cache_entries += 1
                        if prof is not None:
                            prof.switch("cache_walk")
                        if events_on:
                            obs.emit(
                                "cache_entered",
                                step_index,
                                entry=target.full_label,
                                order=region.selection_order,
                            )
                continue

            # ---- executing in the cache -------------------------------
            count = block.bundle.count
            stats.cache_steps += 1
            stats.cache_instructions += count
            region.executed_instructions += count
            if icache is not None:
                base = region.cache_address
                if base is not None:
                    if region_is_trace:
                        offset = region.position_offsets[trace_position]
                    else:
                        offset = region.block_offsets[block]
                    icache.touch(base + offset, block.byte_size)

            if region_is_trace:
                next_position = region.position_after(trace_position, taken, target)
                if next_position is not None:
                    if next_position == 0 and taken:
                        region.cycle_backs += 1
                    trace_position = next_position
                    continue
            else:
                if region.stays_internal(block, taken, target):
                    if target is region.entry:
                        region.cycle_backs += 1
                    continue

            # The transfer leaves the region.
            region.exit_count += 1
            if target is None:
                region = None
                if prof is not None:
                    prof.switch("interpret")
                continue
            linked = cache.lookup(target)
            if linked is not None:
                # A linked exit stub: direct region-to-region jump.
                stats.region_transitions += 1
                region = linked
                region_is_trace = isinstance(linked, TraceRegion)
                trace_position = 0
                region.entry_count += 1
                continue
            # Exit to the interpreter; the exit target becomes a start
            # candidate, and (LEI) may complete a cycle that installs and
            # immediately enters a new region.
            stats.cache_exits += 1
            exited_region = region
            region = None
            if prof is not None:
                prof.switch("interpret")
            if events_on:
                obs.emit(
                    "cache_exit",
                    step_index,
                    region_entry=exited_region.entry.full_label,
                    order=exited_region.selection_order,
                    exit_target=target.full_label,
                )
            if prof is not None:
                prof.enter("selector_decide")
                selector.on_cache_exit(step, exited_region)
                prof.exit()
            else:
                selector.on_cache_exit(step, exited_region)
            installed = cache.lookup(target)
            if installed is not None:
                region = installed
                region_is_trace = isinstance(installed, TraceRegion)
                trace_position = 0
                region.entry_count += 1
                stats.cache_entries += 1
                if prof is not None:
                    prof.switch("cache_walk")
                if events_on:
                    obs.emit(
                        "cache_entered",
                        step_index,
                        entry=target.full_label,
                        order=region.selection_order,
                    )
        return step_index

    def _fill_metrics(self, stats: RunStats, step_index: int) -> None:
        """Transfer the run's aggregates into the metrics registry.

        Hot-path counts are kept in :class:`RunStats` exactly as before
        (instrumentation must never perturb the simulation) and flowed
        into the registry once at end of run; only rare events (region
        install/reject, evictions) count live.
        """
        registry = self.observer.metrics
        steps = registry.counter(
            "steps_total", "Executed basic blocks by context.", ["context"]
        )
        steps.inc(stats.interp_steps, context="interpret")
        steps.inc(stats.cache_steps, context="cache")
        insts = registry.counter(
            "instructions_total", "Executed instructions by context.",
            ["context"],
        )
        insts.inc(stats.interp_instructions, context="interpret")
        insts.inc(stats.cache_instructions, context="cache")
        registry.counter(
            "cache_entries_total",
            "Entries into the code cache from the interpreter.",
        ).inc(stats.cache_entries)
        registry.counter(
            "cache_exits_total",
            "Exits from the code cache back to the interpreter.",
        ).inc(stats.cache_exits)
        registry.counter(
            "region_transitions_total",
            "Direct region-to-region jumps through linked exit stubs.",
        ).inc(stats.region_transitions)
        registry.gauge(
            "cache_resident_regions", "Resident regions at end of run."
        ).set(self.cache.resident_count)
        registry.gauge(
            "cache_resident_bytes", "Resident cache bytes at end of run."
        ).set(self.cache.resident_bytes)
        registry.gauge(
            "peak_profiling_counters",
            "Peak live profiling counters (Figure 10).",
        ).set(self.selector.peak_counters)
        registry.gauge(
            "peak_observed_trace_bytes",
            "Peak observed-trace storage (Figure 18).",
        ).set(self.selector.peak_observed_trace_bytes)


def simulate(
    program: Program,
    selector_name: str,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    max_steps: Optional[int] = None,
    sample_every: Optional[int] = None,
    icache: Optional[InstructionCache] = None,
    observer: Optional[Observer] = None,
) -> RunResult:
    """Convenience: execute ``program`` live and simulate the system.

    ``simulate(program, "net")`` is the one-call entry point used by the
    examples; experiments that want collect-once/replay-many semantics
    drive :class:`Simulator` with :func:`repro.tracing.replay_trace`
    streams instead.
    """
    engine = ExecutionEngine(program, seed=seed, max_steps=max_steps)
    simulator = Simulator(
        program, selector_name, config,
        sample_every=sample_every, icache=icache, observer=observer,
    )
    return simulator.run(engine.run())
