"""The dynamic optimization system simulator (Figure 1).

:class:`~repro.system.simulator.Simulator` re-creates the paper's
evaluation framework: it consumes the executed basic-block stream (from
a live engine or a recorded trace), models the interpreter/code-cache
dispatch of Section 2.1, drives a pluggable
:class:`~repro.selection.base.RegionSelector`, and produces a
:class:`~repro.system.results.RunResult` holding every raw quantity the
Section 2.3 metrics are computed from.
"""

from repro.config import SystemConfig
from repro.system.results import RunResult, RunStats, TimelineSample
from repro.system.simulator import Simulator, simulate

__all__ = [
    "SystemConfig",
    "RunResult",
    "RunStats",
    "TimelineSample",
    "Simulator",
    "simulate",
]
