"""Structural trait tests: each SPEC stand-in has the shape it claims.

docs/workloads.md documents a signature structure for every benchmark;
these tests pin those claims so future workload edits cannot silently
break the phenomena the figures depend on.
"""

import pytest

from repro.behavior.models import PhaseIndirect
from repro.isa.opcodes import BranchKind
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def programs():
    return {
        name: build_benchmark(name)
        for name in ("gzip", "gcc", "mcf", "crafty", "parser", "eon",
                     "perlbmk", "vortex")
    }


def backward_calls(program):
    return [
        block for block in program.blocks
        if block.terminator.kind is BranchKind.CALL
        and block.is_backward_transfer_to(block.terminator.taken_target)
    ]


def call_targets(program):
    return [
        block.terminator.taken_target.procedure.name
        for block in program.blocks
        if block.terminator.kind is BranchKind.CALL
    ]


class TestStructuralTraits:
    def test_mcf_has_backward_calls_on_hot_paths(self, programs):
        """mcf's signature: interprocedural cycles via backward calls."""
        assert len(backward_calls(programs["mcf"])) >= 2

    def test_crafty_has_no_calls_at_all(self, programs):
        """crafty's hot cycles are all intra-procedural."""
        assert not any(
            block.terminator.kind is BranchKind.CALL
            for block in programs["crafty"].blocks
        )

    def test_eon_shares_a_constructor_across_many_sites(self, programs):
        targets = call_targets(programs["eon"])
        # ctor_2 is constructed at every one of the 11 sites.
        assert targets.count("ctor_2") >= 10

    def test_gcc_has_the_most_blocks(self, programs):
        gcc_blocks = programs["gcc"].block_count
        assert all(
            gcc_blocks > program.block_count
            for name, program in programs.items() if name != "gcc"
        )

    def test_perlbmk_dispatch_is_phase_shifting(self, programs):
        models = [
            block.terminator.indirect_model
            for block in programs["perlbmk"].blocks
            if block.terminator.kind is BranchKind.INDIRECT
        ]
        assert any(isinstance(model, PhaseIndirect) for model in models)

    def test_parser_has_recursion(self, programs):
        recursive = [
            block for block in programs["parser"].blocks
            if block.terminator.kind is BranchKind.CALL
            and block.procedure is block.terminator.taken_target.procedure
        ]
        assert recursive, "parse_expr must call itself"

    def test_vortex_has_many_small_procedures(self, programs):
        procs = programs["vortex"].procedures
        leaves = [p for p in procs if p.name.startswith("mem_")]
        assert len(leaves) == 5

    def test_every_program_has_cold_init_one_shots(self, programs):
        for name, program in programs.items():
            once_heads = [
                b for b in program.blocks if b.label.startswith("once_head")
            ]
            assert once_heads, name

    def test_every_program_has_rare_retries(self, programs):
        for name in ("gzip", "gcc", "mcf", "parser", "eon", "vortex"):
            retries = [
                b for b in programs[name].blocks
                if b.label.startswith("retry_tgt")
            ]
            assert retries, name

    def test_gzip_branches_are_biased(self, programs):
        """gzip models strongly biased compression loops: its diamonds
        use probabilities far from 0.5."""
        from repro.behavior.models import Bernoulli

        biases = [
            block.terminator.model.probability
            for block in programs["gzip"].blocks
            if block.terminator.kind is BranchKind.COND
            and isinstance(block.terminator.model, Bernoulli)
            and block.label.startswith("dia_cond")
        ]
        assert biases
        assert all(b >= 0.8 or b <= 0.2 for b in biases)
