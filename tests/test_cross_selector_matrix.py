"""Cross-selector invariant matrix: every selector on every micro.

These are the library's broadest integration tests: 7 selectors x 6
microbenchmarks, checking the invariants that must hold regardless of
algorithm or workload.
"""

import pytest

from repro.config import SystemConfig
from repro.execution.engine import ExecutionEngine
from repro.metrics import MetricReport
from repro.selection.registry import SELECTOR_FACTORIES
from repro.system.simulator import Simulator
from repro.workloads import build_micro, micro_names

ALL_SELECTORS = tuple(sorted(SELECTOR_FACTORIES))


@pytest.fixture(scope="module")
def matrix():
    """Every (micro, selector) run at a small but meaningful size."""
    config = SystemConfig(
        net_threshold=12, lei_threshold=10,
        combined_net_t_start=6, combined_lei_t_start=4,
        combine_t_prof=6, combine_t_min=3,
        mojo_exit_threshold=6, boa_threshold=8,
        sampling_period=60, sampling_window=120,
    )
    runs = {}
    for name in micro_names():
        program = build_micro(name, iterations=400)
        engine_insts = None
        for selector in ALL_SELECTORS:
            engine = ExecutionEngine(program, seed=2)
            result = Simulator(program, selector, config).run(engine.run())
            if engine_insts is None:
                engine_insts = engine.instructions_executed
            runs[(name, selector)] = (result, engine_insts)
    return runs


class TestUniversalInvariants:
    @pytest.mark.parametrize("micro", sorted(micro_names()))
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_instruction_conservation(self, matrix, micro, selector):
        result, engine_insts = matrix[(micro, selector)]
        assert result.total_instructions_executed == engine_insts

    @pytest.mark.parametrize("micro", sorted(micro_names()))
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_metric_report_computes(self, matrix, micro, selector):
        result, _ = matrix[(micro, selector)]
        report = MetricReport.from_result(result)
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.region_count >= 0
        assert report.exit_stubs >= 0
        assert 0.0 <= report.spanned_cycle_ratio <= 1.0
        assert 0.0 <= report.executed_cycle_ratio <= 1.0

    @pytest.mark.parametrize("micro", sorted(micro_names()))
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_single_entry_regions(self, matrix, micro, selector):
        result, _ = matrix[(micro, selector)]
        entries = [region.entry for region in result.regions]
        assert len(entries) == len(set(entries))
        for region in result.regions:
            assert region.selection_order is not None
            assert region.cache_address is not None
            assert region.instruction_count >= 1

    @pytest.mark.parametrize("micro", sorted(micro_names()))
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_execution_accounting_consistent(self, matrix, micro, selector):
        result, _ = matrix[(micro, selector)]
        per_region = sum(r.executed_instructions for r in result.regions)
        assert per_region == result.stats.cache_instructions
        entries = sum(r.entry_count for r in result.regions)
        assert entries == (result.stats.cache_entries
                           + result.stats.region_transitions)

    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_every_selector_goes_hot_on_the_self_loop(self, matrix, selector):
        result, _ = matrix[("self_loop", selector)]
        assert result.region_count >= 1
        assert result.hit_rate > 0.5, selector


class TestSelectorCharacter:
    """Differences that must hold whenever the workload allows them."""

    def test_only_lei_family_spans_figure2(self, matrix):
        for selector in ALL_SELECTORS:
            result, _ = matrix[("figure2", selector)]
            spans = any(r.spans_cycle for r in result.regions)
            if selector in ("lei", "combined-lei"):
                assert spans, selector
            elif selector in ("net", "mojo"):
                assert not spans, selector

    def test_combined_variants_emit_multipath_regions_on_figure4(self, matrix):
        from repro.cache.region import CFGRegion

        for selector in ("combined-net", "combined-lei"):
            result, _ = matrix[("figure4", selector)]
            assert any(isinstance(r, CFGRegion) for r in result.regions), selector

    def test_plain_selectors_emit_only_traces(self, matrix):
        from repro.cache.region import TraceRegion

        for selector in ("net", "lei", "mojo", "boa", "wiggins"):
            for micro in micro_names():
                result, _ = matrix[(micro, selector)]
                assert all(isinstance(r, TraceRegion) for r in result.regions), (
                    micro, selector,
                )
