"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", "ticks")
        assert counter.value() == 0
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.total == 5

    def test_labelled_series_are_independent(self):
        counter = Counter("decisions_total", "", ["reason"])
        counter.inc(reason="a")
        counter.inc(2, reason="b")
        assert counter.value(reason="a") == 1
        assert counter.value(reason="b") == 2
        assert counter.value(reason="never") == 0
        assert counter.total == 3

    def test_rejects_decrease(self):
        counter = Counter("x_total", "", [])
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_rejects_wrong_labels(self):
        counter = Counter("x_total", "", ["reason"])
        with pytest.raises(ObservabilityError):
            counter.inc()  # missing label
        with pytest.raises(ObservabilityError):
            counter.inc(reason="a", extra="b")  # unexpected label
        with pytest.raises(ObservabilityError):
            counter.value(other="a")  # wrong label name


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth", "", [])
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_labels(self):
        gauge = Gauge("depth", "", ["pool"])
        gauge.set(2, pool="a")
        gauge.inc(pool="b")
        assert gauge.value(pool="a") == 2
        assert gauge.value(pool="b") == 1


class TestHistogram:
    def test_bucketing_and_overflow(self):
        hist = Histogram("sizes", "", [], buckets=[1, 4, 16])
        for value in (1, 2, 4, 5, 100):
            hist.observe(value)
        # non-cumulative: <=1, <=4, <=16, overflow
        assert hist.bucket_counts() == (1, 2, 1, 1)
        assert hist.count() == 5
        assert hist.sum() == 112

    def test_labelled_histograms(self):
        hist = Histogram("sizes", "", ["kind"], buckets=[10])
        hist.observe(3, kind="trace")
        hist.observe(30, kind="cfg")
        assert hist.bucket_counts(kind="trace") == (1, 0)
        assert hist.bucket_counts(kind="cfg") == (0, 1)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", "", [], buckets=[4, 1])
        with pytest.raises(ObservabilityError):
            Histogram("h", "", [], buckets=[])


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help", ["l"])
        b = registry.counter("x_total", labelnames=["l"])
        assert a is b

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x", "", [])
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.counter("x", labelnames=["other"])

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", ["k"]).inc(2, k="v")
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=[1, 2]).observe(1.5)
        snap = registry.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["values"] == {"v": 2}
        assert snap["g"]["values"] == {"": 7}
        assert snap["h"]["buckets"] == [1, 2]
        assert snap["h"]["values"][""]["count"] == 1
        assert snap["h"]["values"][""]["sum"] == 1.5

    def test_prometheus_export_format(self):
        registry = MetricsRegistry(prefix="repro_")
        registry.counter("c_total", "things", ["k"]).inc(3, k="v")
        registry.gauge("g", "level").set(2.5)
        hist = registry.histogram("h", "sizes", buckets=[1, 2])
        hist.observe(1)
        hist.observe(5)
        text = registry.to_prometheus()
        assert "# HELP repro_c_total things" in text
        assert "# TYPE repro_c_total counter" in text
        assert 'repro_c_total{k="v"} 3' in text
        assert "repro_g 2.5" in text
        # Histogram buckets are cumulative and end with +Inf.
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 2' in text
        assert "repro_h_sum 6" in text
        assert "repro_h_count 2" in text
        assert text.endswith("\n")

    def test_unlabelled_counter_renders_zero_sample(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "never incremented")
        assert "repro_quiet_total 0" in registry.to_prometheus()


class TestPrometheusConformance:
    """Exposition-format details real scrapers reject when wrong."""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("files_total", "", ["path", "note"])
        counter.inc(path='C:\\tmp\\"x"', note="line1\nline2")
        text = registry.to_prometheus()
        assert ('repro_files_total{path="C:\\\\tmp\\\\\\"x\\"",'
                'note="line1\\nline2"} 1') in text
        # The raw newline must not leak into the exposition output.
        assert "line1\nline2" not in text

    def test_multiple_labels_joined_by_bare_comma(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ["a", "b"]).inc(a="1", b="2")
        assert 'repro_c_total{a="1",b="2"} 1' in registry.to_prometheus()


class TestRegistryMerge:
    def test_counters_merge_under_extra_labels(self):
        worker = MetricsRegistry()
        worker.counter("steps_total").inc(7)
        worker.counter("hits_total", "", ["kind"]).inc(2, kind="trace")
        parent = MetricsRegistry()
        parent.merge(worker.snapshot(), {"job_id": "j1", "worker": "w1"})
        parent.merge(worker.snapshot(), {"job_id": "j2", "worker": "w2"})
        steps = parent.get("steps_total")
        assert steps.value(job_id="j1", worker="w1") == 7
        assert steps.total == 14
        hits = parent.get("hits_total")
        assert hits.value(kind="trace", job_id="j2", worker="w2") == 2

    def test_gauges_are_additive_and_histograms_bucket_wise(self):
        worker = MetricsRegistry()
        worker.gauge("depth").set(3)
        worker.histogram("sizes", buckets=[1, 4]).observe(2)
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        assert parent.get("depth").value() == 6
        hist = parent.get("sizes")
        assert hist.bucket_counts() == (0, 2, 0)
        assert hist.count() == 2 and hist.sum() == 4

    def test_merge_without_extra_labels_keeps_series_shape(self):
        worker = MetricsRegistry()
        worker.counter("c_total", "", ["k"]).inc(k="v")
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        assert parent.get("c_total").value(k="v") == 1

    def test_bucket_mismatch_is_an_error(self):
        worker = MetricsRegistry()
        worker.histogram("sizes", buckets=[1, 4]).observe(2)
        parent = MetricsRegistry()
        parent.histogram("sizes", buckets=[1, 8])
        with pytest.raises(ObservabilityError):
            parent.merge(worker.snapshot())

    def test_label_value_containing_separator_rejected(self):
        worker = MetricsRegistry()
        worker.counter("c_total").inc()
        parent = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            parent.merge(worker.snapshot(), {"job_id": "a|b"})
        counter = MetricsRegistry().counter("c_total", "", ["k"])
        with pytest.raises(ObservabilityError):
            counter.inc(k="x|y")
