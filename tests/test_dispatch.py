"""Tests for the compile-on-install dispatch layer (repro.cache.dispatch).

Two properties anchor the layer:

* the interned-id table is a bijection — every dense id maps back to a
  unique block (and a unique address), and foreign blocks are rejected;
* link patching is residency: after *any* sequence of installs,
  evictions and flushes, every registered link slot holds exactly the
  walk table of the region resident at its target — never a dangling
  table (``DispatchTable.check_invariants``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.codecache import BoundedCodeCache, CodeCache
from repro.cache.dispatch import BlockInterner, DispatchTable
from repro.errors import CacheError
from repro.execution.engine import ExecutionEngine
from repro.metrics.linking import _direct_exit_targets
from repro.system.simulator import simulate
from repro.workloads import build_benchmark
from repro.workloads.micro import build_micro


def _decider_for(program):
    """A real pre-bound decision source, as the fused loop builds one."""
    engine = ExecutionEngine(program, seed=0)
    stack, ctx = engine._push_state()
    memo = {}

    def decider_for(block):
        decide = memo.get(block)
        if decide is None:
            decide = engine._decider_for(block, stack, ctx)
            memo[block] = decide
        return decide

    return decider_for


@pytest.fixture(scope="module")
def chain_program():
    return build_micro("linked_chain", iterations=60)


@pytest.fixture(scope="module")
def chain_regions(chain_program):
    """Every region NET selects on the chain — one per segment loop,
    richly linked (each exits to the next segment's entry)."""
    result = simulate(chain_program, "net", seed=1)
    regions = result.regions
    assert len(regions) >= 10
    return regions


class TestInterner:
    @given(bid=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, bid):
        program = _INTERN_PROGRAM
        interner = BlockInterner(program)
        bid %= interner.size
        block = interner.block_of(bid)
        assert interner.id_of(block) == bid

    def test_ids_map_to_unique_addresses(self):
        interner = BlockInterner(_INTERN_PROGRAM)
        addresses = {
            interner.block_of(bid).address for bid in range(interner.size)
        }
        assert len(addresses) == interner.size

    def test_foreign_block_rejected(self, chain_program):
        interner = BlockInterner(_INTERN_PROGRAM)
        with pytest.raises(CacheError, match="not interned"):
            interner.id_of(chain_program.entry)


_INTERN_PROGRAM = build_benchmark("gzip", scale=0.05)


class TestLinkInvariants:
    @given(
        picks=st.lists(st.integers(0, 9), min_size=1, max_size=40),
        policy=st.sampled_from(("flush", "fifo")),
        capacity=st.integers(60, 800),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_dangling_links_after_any_sequence(
        self, chain_program, chain_regions, picks, policy, capacity
    ):
        cache = BoundedCodeCache(capacity, policy)
        cache.bind_program(chain_program)
        dispatch = DispatchTable(chain_program, _decider_for(chain_program))
        cache.bind_dispatch(dispatch)
        for index in picks:
            region = chain_regions[index % len(chain_regions)]
            if cache.contains_entry(region.entry):
                continue
            cache.insert(region)
            dispatch.check_invariants()
        # Drain the cache one victim at a time: every retire must keep
        # the slots consistent, and a fully-retired dispatch holds no
        # tables and no registered sites at all.
        for victim in list(cache.resident_regions):
            cache._retire_region(victim, policy)
            dispatch.check_invariants()
        assert all(table is None for table in dispatch.tables_by_entry)
        assert not dispatch._link_sites

    def test_patch_and_unpatch_one_link(self, chain_program, chain_regions):
        # Find a linked pair: source's direct exit targets dest's entry.
        source = dest = None
        for a in chain_regions:
            for b in chain_regions:
                if b is not a and b.entry in _direct_exit_targets(a):
                    source, dest = a, b
                    break
            if source is not None:
                break
        assert source is not None, "chain workload must produce a link"

        cache = CodeCache()
        cache.bind_program(chain_program)
        dispatch = DispatchTable(chain_program, _decider_for(chain_program))
        cache.bind_dispatch(dispatch)
        cache.insert(source)
        source_table = dispatch.tables_by_entry[source.entry.block_id]
        dest_id = dest.entry.block_id

        def slots_for(table, target_id):
            return [
                site.container[site.key]
                for tid, site in table.sites
                if tid == target_id
            ]

        assert slots_for(source_table, dest_id) == [None]
        dest_table = dispatch.install(dest)
        assert slots_for(source_table, dest_id) == [dest_table]
        dispatch.retire(dest)
        assert slots_for(source_table, dest_id) == [None]
        repatched = dispatch.install(dest)
        assert repatched is not dest_table
        assert slots_for(source_table, dest_id) == [repatched]
        dispatch.check_invariants()

    def test_retire_is_idempotent_and_order_safe(self, chain_program,
                                                 chain_regions):
        dispatch = DispatchTable(chain_program, _decider_for(chain_program))
        region = chain_regions[0]
        dispatch.install(region)
        dispatch.retire(region)
        dispatch.retire(region)  # second retire is a no-op
        dispatch.check_invariants()
        assert dispatch.tables_by_entry[region.entry.block_id] is None


class TestWalkTables:
    def test_static_runs_are_sound(self, chain_program, chain_regions):
        dispatch = DispatchTable(chain_program, _decider_for(chain_program))
        for region in chain_regions:
            if not region.is_trace:
                continue
            table = dispatch.compile(region)
            n = table.path_len
            assert table.run_len[n - 1] == 0  # last position never advances
            for i in range(n):
                span = table.run_len[i]
                assert 0 <= span <= n - 1 - i
                if span:
                    decide = table.deciders[i]
                    assert isinstance(decide, tuple)
                    assert decide[1] is table.path[i + 1]
                    assert table.run_insts[i] == sum(
                        table.counts[i:i + span]
                    )

    def test_table_for_falls_back_to_fresh_compile(self, chain_program,
                                                   chain_regions):
        dispatch = DispatchTable(chain_program, _decider_for(chain_program))
        region = chain_regions[0]
        fresh = dispatch.table_for(region)  # not resident: compiled ad hoc
        assert fresh.region is region
        assert dispatch.tables_by_entry[region.entry.block_id] is None
        installed = dispatch.install(region)
        assert dispatch.table_for(region) is installed

    def test_deciders_are_shared_with_the_source(self, chain_program,
                                                 chain_regions):
        decider_for = _decider_for(chain_program)
        dispatch = DispatchTable(chain_program, decider_for)
        region = next(r for r in chain_regions if r.is_trace)
        table = dispatch.compile(region)
        for position, block in enumerate(table.path):
            assert table.deciders[position] is decider_for(block)
