"""Tests for the workload assembler (driver skeleton, init stages)."""

import pytest

from repro.execution.engine import ExecutionEngine
from repro.workloads import motifs
from repro.workloads.synth import assemble, scaled


def count_labels(program, prefix, seed=0):
    counts = {}
    for step in ExecutionEngine(program, seed=seed).run():
        if step.block.label.startswith(prefix):
            counts[step.block.label] = counts.get(step.block.label, 0) + 1
    return counts


class TestAssemble:
    def test_driver_iterates_requested_times(self):
        program = assemble(
            "asm_test", seed=1, driver_iterations=37,
            stages=[lambda p, c: motifs.straight_run(p, c, 1, 2)],
        )
        counts = count_labels(program, "driver_head")
        assert list(counts.values()) == [37]

    def test_init_stages_run_exactly_once(self):
        program = assemble(
            "asm_init", seed=1, driver_iterations=25,
            stages=[lambda p, c: motifs.straight_run(p, c, 1, 2)],
            init_stages=[lambda p, c: motifs.straight_run(p, c, 2, 3)],
        )
        counts = count_labels(program, "run")
        # Init runs (2 blocks) execute once; the driver-stage run block
        # executes 25 times.
        assert sorted(counts.values()) == [1, 1, 25]

    def test_declarations_lay_out_before_main(self):
        def declarations(ctx):
            motifs.leaf_procedure(ctx, "low", blocks=1)

        program = assemble(
            "asm_decl", seed=1, driver_iterations=5,
            stages=[lambda p, c: motifs.call_stage(p, c, "low")],
            declarations=declarations,
        )
        low_entry = program.procedure("low").entry
        main_entry = program.procedure("main").entry
        assert low_entry.address < main_entry.address
        assert program.entry is main_entry

    def test_scale_multiplies_driver_iterations(self):
        stages = [lambda p, c: motifs.straight_run(p, c, 1, 2)]
        small = assemble("asm_s", seed=1, driver_iterations=40,
                         stages=stages, scale=0.5)
        large = assemble("asm_l", seed=1, driver_iterations=40,
                         stages=stages, scale=2.0)
        assert list(count_labels(small, "driver_head").values()) == [20]
        assert list(count_labels(large, "driver_head").values()) == [80]

    def test_driver_jitter_varies_total(self):
        stages = [lambda p, c: motifs.straight_run(p, c, 1, 2)]
        program = assemble("asm_j", seed=1, driver_iterations=100,
                           stages=stages, driver_jitter=30)
        runs = {
            seed: list(count_labels(program, "driver_head", seed=seed).values())[0]
            for seed in (1, 2)
        }
        assert all(70 <= n <= 130 for n in runs.values())


class TestScaled:
    def test_floor_of_ten(self):
        assert scaled(100, 0.0001) == 10

    def test_rounding(self):
        assert scaled(100, 0.5) == 50
        assert scaled(3, 10.0) == 30
