"""The documentation link set stays resolvable (tools/check_doc_links.py).

Runs the CI link checker in-process against the real repository — a
stale cross-reference fails here before it fails the pipeline — plus
unit coverage of the checker's own parsing rules on a fixture tree.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOLS_DIR = os.path.join(REPO_ROOT, "tools")
sys.path.insert(0, TOOLS_DIR)

import check_doc_links  # noqa: E402


class TestRepositoryDocs:
    def test_all_intra_repo_links_resolve(self):
        problems = check_doc_links.broken_links(REPO_ROOT)
        assert problems == [], (
            "broken documentation links:\n" + "\n".join(problems)
        )

    def test_scan_covers_the_doc_set(self):
        files = check_doc_links.doc_files(REPO_ROOT)
        assert "README.md" in files
        assert os.path.join("docs", "batching.md") in files
        assert os.path.join("docs", "api.md") in files

    def test_cli_exit_zero_on_clean_tree(self):
        result = subprocess.run(
            [sys.executable,
             os.path.join(TOOLS_DIR, "check_doc_links.py"), REPO_ROOT],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "doc links OK" in result.stdout


class TestCheckerRules:
    def _tree(self, tmp_path, readme):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "real.md").write_text("# real\n")
        (tmp_path / "README.md").write_text(readme)
        return str(tmp_path)

    def test_missing_target_is_reported_with_location(self, tmp_path):
        root = self._tree(tmp_path, "intro\nsee [gone](docs/missing.md)\n")
        problems = check_doc_links.broken_links(root)
        assert problems == ["README.md:2: docs/missing.md"]

    def test_resolvable_relative_links_pass(self, tmp_path):
        root = self._tree(
            tmp_path,
            "[ok](docs/real.md) and [anchored](docs/real.md#section)\n",
        )
        (tmp_path / "docs" / "linked.md").write_text(
            "[up](../README.md) [sibling](real.md)\n"
        )
        assert check_doc_links.broken_links(root) == []

    def test_external_and_anchor_links_are_skipped(self, tmp_path):
        root = self._tree(
            tmp_path,
            "[w](https://example.com/x.md) [m](mailto:a@b.c) [a](#here)\n",
        )
        assert check_doc_links.broken_links(root) == []

    def test_code_fences_are_ignored(self, tmp_path):
        root = self._tree(
            tmp_path,
            "```\n[not a link](nope.md)\n```\n[real](docs/real.md)\n",
        )
        assert check_doc_links.broken_links(root) == []

    def test_cli_exit_one_lists_breakage(self, tmp_path):
        root = self._tree(tmp_path, "[gone](missing.md)\n")
        result = subprocess.run(
            [sys.executable,
             os.path.join(TOOLS_DIR, "check_doc_links.py"), root],
            capture_output=True, text=True,
        )
        assert result.returncode == 1
        assert "missing.md" in result.stdout
