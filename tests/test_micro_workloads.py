"""Tests for the microbenchmark registry — and, through it, compact
end-to-end checks of each phenomenon the micros isolate."""

import pytest

from repro.config import SystemConfig
from repro.errors import ProgramStructureError
from repro.execution.engine import ExecutionEngine
from repro.metrics import spanned_cycle_ratio
from repro.system.simulator import simulate
from repro.workloads import build_micro, micro_names


class TestRegistry:
    def test_names(self):
        assert set(micro_names()) == {
            "figure2", "figure3", "figure4", "self_loop",
            "alternating", "recursion", "linked_chain",
        }

    @pytest.mark.parametrize("name", sorted(micro_names()))
    def test_all_build_and_halt(self, name):
        program = build_micro(name, iterations=50)
        engine = ExecutionEngine(program, seed=1)
        steps = sum(1 for _ in engine.run())
        assert 0 < steps < engine.max_steps

    def test_unknown_name_rejected(self):
        with pytest.raises(ProgramStructureError, match="unknown micro"):
            build_micro("figure99")

    def test_bad_iterations_rejected(self):
        with pytest.raises(ProgramStructureError):
            build_micro("figure2", iterations=0)

    def test_iterations_scale_run_length(self):
        short = sum(1 for _ in ExecutionEngine(build_micro("self_loop", 50)).run())
        long = sum(1 for _ in ExecutionEngine(build_micro("self_loop", 500)).run())
        assert long > short * 5


class TestPhenomena:
    """Each micro isolates one paper phenomenon; verify it does."""

    def test_figure2_net_splits_lei_spans(self):
        program = build_micro("figure2")
        config = SystemConfig()
        net = simulate(program, "net", config)
        lei = simulate(program, "lei", config)
        assert net.region_count == 2 and spanned_cycle_ratio(net) == 0.0
        assert lei.region_count == 1 and spanned_cycle_ratio(lei) == 1.0

    def test_figure3_duplication_gap(self):
        program = build_micro("figure3")
        config = SystemConfig()
        net = simulate(program, "net", config)
        lei = simulate(program, "lei", config)
        assert lei.code_expansion < net.code_expansion

    def test_figure4_combination_merges(self):
        program = build_micro("figure4")
        config = SystemConfig()
        net = simulate(program, "net", config, seed=3)
        combined = simulate(program, "combined-net", config, seed=3)
        assert combined.region_transitions < net.region_transitions
        assert combined.exit_stubs < net.exit_stubs

    def test_alternating_branch_punishes_single_path_traces(self):
        program = build_micro("alternating")
        config = SystemConfig()
        net = simulate(program, "net", config)
        combined = simulate(program, "combined-net", config)
        # NET commits to one side and leaves the region every other
        # iteration; the combined region holds both sides.
        assert combined.region_transitions < net.region_transitions / 2

    def test_recursion_runs_hot(self):
        program = build_micro("recursion")
        result = simulate(program, "lei", SystemConfig())
        assert result.hit_rate > 0.9
