"""Tests for the Section 4.4 optimization-opportunity analysis."""

import pytest

from repro.cache.region import CFGRegion, TraceRegion
from repro.config import SystemConfig
from repro.optimizer import OptimizationReport, analyze_region
from repro.system.simulator import simulate


def B(program, label):
    return program.block_by_full_label(f"main:{label}")


class TestTraceAnalysis:
    def test_straight_trace_has_no_joins_or_cycles(self, diamond_program):
        trace = TraceRegion([B(diamond_program, "A"), B(diamond_program, "B"),
                             B(diamond_program, "D")])
        analysis = analyze_region(trace)
        assert analysis.internal_joins == 0
        assert analysis.internal_splits == 0
        assert not analysis.has_cycle
        assert not analysis.is_multipath

    def test_jump_inside_trace_counts_as_removed(self, diamond_program):
        # B ends with `jump D`; placing D right after B deletes the jump.
        trace = TraceRegion([B(diamond_program, "B"), B(diamond_program, "D")])
        assert analyze_region(trace).removed_jumps == 1

    def test_cycle_spanning_trace_is_never_licm_ready(self, simple_loop_program):
        head = simple_loop_program.block_by_full_label("main:head")
        trace = TraceRegion([head], final_target=head)
        analysis = analyze_region(trace)
        assert analysis.has_cycle
        # "Even a trace that spans a cycle cannot perform this
        # optimization, because it has nowhere outside the cycle to move
        # an instruction."
        assert not analysis.licm_ready


class TestCFGAnalysis:
    def test_diamond_region_has_join_split_and_complete_diamond(self, diamond_program):
        a, b, c, d = (B(diamond_program, x) for x in "ABCD")
        region = CFGRegion(a, [a, b, c, d], [(a, b), (a, c), (b, d), (c, d)])
        analysis = analyze_region(region)
        assert analysis.internal_splits == 1
        assert analysis.internal_joins == 1
        assert analysis.complete_diamonds == 1
        assert analysis.is_multipath

    def test_loop_with_preheader_is_licm_ready(self, nested_loop_program):
        p = nested_loop_program
        a = p.block_by_full_label("main:A")
        b = p.block_by_full_label("main:B")
        c = p.block_by_full_label("main:C")
        # Region: preheader A, loop B<->C via C's backward branch... use
        # the inner self loop: A (preheader) + B (self-cycle).
        region = CFGRegion(a, [a, b], [(a, b), (b, b)])
        analysis = analyze_region(region)
        assert analysis.has_cycle
        assert analysis.licm_ready

    def test_pure_cycle_region_not_licm_ready(self, nested_loop_program):
        b = nested_loop_program.block_by_full_label("main:B")
        region = CFGRegion(b, [b], [(b, b)])
        analysis = analyze_region(region)
        assert analysis.has_cycle
        assert not analysis.licm_ready


class TestReport:
    @pytest.fixture
    def fast_config(self):
        return SystemConfig(
            net_threshold=10, lei_threshold=8,
            combined_net_t_start=4, combined_lei_t_start=2,
            combine_t_prof=6, combine_t_min=3,
        )

    def test_report_aggregates(self, diamond_program, fast_config):
        result = simulate(diamond_program, "combined-net", fast_config, seed=7)
        report = OptimizationReport.from_regions(result.regions)
        assert report.regions_analyzed == result.region_count
        assert report.cycles_without_hoist_space >= 0
        assert report.summary_line().startswith("regions=")

    def test_traces_are_never_multipath(self, diamond_program, fast_config):
        result = simulate(diamond_program, "net", fast_config, seed=7)
        report = OptimizationReport.from_regions(result.regions)
        assert report.multipath_regions == 0
        assert report.internal_joins == 0

    def test_combination_creates_multipath_context(self, diamond_program, fast_config):
        plain = OptimizationReport.from_regions(
            simulate(diamond_program, "net", fast_config, seed=7).regions
        )
        combined = OptimizationReport.from_regions(
            simulate(diamond_program, "combined-net", fast_config, seed=7).regions
        )
        assert combined.multipath_regions > plain.multipath_regions
        assert combined.internal_joins > plain.internal_joins
        assert combined.complete_diamonds >= 1

    def test_empty_cache_report(self):
        report = OptimizationReport.from_regions([])
        assert report.regions_analyzed == 0
        assert report.licm_ready_regions == 0
