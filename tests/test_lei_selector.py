"""Behavioural tests for LEI, including the paper's worked examples."""

import pytest

from repro.config import SystemConfig
from repro.system.simulator import simulate


def region_labels(region):
    return [block.label for block in region.block_list]


@pytest.fixture
def fast_config():
    return SystemConfig(net_threshold=5, lei_threshold=4)


class TestFigure2InterproceduralCycle:
    """Figure 2 / Section 3.1: LEI selects the single ideal trace that
    spans the interprocedural cycle A B E F D."""

    def test_lei_selects_one_cycle_spanning_trace(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "lei", fast_config)
        assert result.region_count == 1
        region = result.regions[0]
        assert region.spans_cycle
        assert sorted(region_labels(region)) == ["A", "B", "D", "E", "F"]

    def test_lei_trace_crosses_call_and_matching_return(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "lei", fast_config)
        labels = region_labels(result.regions[0])
        # The trace is the cycle rotated to whichever block completed it
        # first; cyclic order must be ... B -> E -> F -> D -> A ...
        doubled = labels + labels
        assert any(
            doubled[i:i + 5] == ["B", "E", "F", "D", "A"] for i in range(len(labels))
        )

    def test_lei_has_no_region_transitions_in_steady_state(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "lei", fast_config)
        assert result.region_transitions == 0
        assert result.regions[0].cycle_backs > 100

    def test_lei_beats_net_on_separation_and_stubs(self, call_loop_program, fast_config):
        lei = simulate(call_loop_program, "lei", fast_config)
        net = simulate(call_loop_program, "net", fast_config)
        assert lei.region_transitions < net.region_transitions
        assert lei.exit_stubs < net.exit_stubs
        assert lei.region_count < net.region_count


class TestFigure3NestedLoops:
    """Section 2.2 nested loops: LEI selects the inner cycle alone and
    never duplicates it."""

    def test_inner_loop_selected_as_single_block_cycle(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "lei", fast_config)
        inner = next(r for r in result.regions if r.entry.label == "B")
        assert region_labels(inner) == ["B"]
        assert inner.spans_cycle

    def test_no_region_duplicates_the_inner_loop(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "lei", fast_config)
        b_copies = sum(
            1 for region in result.regions for label in region_labels(region)
            if label == "B"
        )
        assert b_copies == 1  # NET makes 2 (see test_net_selector)

    def test_lei_expands_less_code_than_net(self, nested_loop_program, fast_config):
        lei = simulate(nested_loop_program, "lei", fast_config)
        net = simulate(nested_loop_program, "net", fast_config)
        assert lei.code_expansion < net.code_expansion


class TestStartConditions:
    def test_cycle_must_close_backward_or_after_exit(self, diamond_program, fast_config):
        # All diamond cycles close with the backward branch A2 -> A, so
        # every selected region must start at A or at a cache-exit target.
        result = simulate(diamond_program, "lei", fast_config)
        assert result.region_count >= 1
        assert any(r.entry.label == "A" for r in result.regions)

    def test_no_cycles_no_selection(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "lei", fast_config)
        assert result.region_count == 0

    def test_jump_newt_enters_immediately(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "lei", fast_config)
        region = result.regions[0]
        # With threshold 4, the trace forms at the 4th qualifying branch
        # and is entered on that very branch: the remaining ~95
        # iterations all run from the cache.
        assert region.cycle_backs >= 90

    def test_exit_flagged_cycles_can_start_traces(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "lei", fast_config)
        entries = {r.entry.label for r in result.regions}
        # C is only reachable via the fall-through exit of B's region:
        # its cycles close with the forward branch B->C, so only the
        # follows-exit rule can admit it.
        assert "C" in entries


class TestProfilingMemory:
    def test_lei_uses_fewer_counters_than_net(self, call_loop_program, fast_config):
        lei = simulate(call_loop_program, "lei", fast_config)
        net = simulate(call_loop_program, "net", fast_config)
        # NET counts both backward targets (A and E); LEI profiles only
        # cycle-completing targets, one at a time here.
        assert lei.peak_counters <= net.peak_counters

    def test_history_buffer_size_limits_cycle_detection(self, call_loop_program):
        # A buffer too small to hold one iteration's branches (3 taken
        # branches per iteration) can never observe a cycle.
        tiny = SystemConfig(lei_threshold=4, history_buffer_size=2)
        result = simulate(call_loop_program, "lei", tiny)
        assert result.region_count == 0


class TestLEITraceShape:
    def test_form_trace_stops_at_existing_region_on_fallthrough(
        self, nested_loop_program, fast_config
    ):
        result = simulate(nested_loop_program, "lei", fast_config)
        # Whatever region covers A must NOT include B (which owns its own
        # region): LEI stops even on a fall-through path into a region.
        for region in result.regions:
            labels = region_labels(region)
            if "A" in labels and region.entry.label != "B":
                assert "B" not in labels

    def test_lei_traces_are_longer_on_average(self, call_loop_program, fast_config):
        lei = simulate(call_loop_program, "lei", fast_config)
        net = simulate(call_loop_program, "net", fast_config)
        assert lei.average_trace_instructions > net.average_trace_instructions
