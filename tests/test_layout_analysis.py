"""Tests for the code-cache layout analysis."""

import pytest

from repro.analysis.layout import (
    layout_map,
    page_crossing_fraction,
    transition_distances,
)
from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import build_micro


@pytest.fixture
def figure2_net():
    return simulate(build_micro("figure2"), "net", SystemConfig())


class TestLayoutMap:
    def test_map_lists_all_regions_in_address_order(self, figure2_net):
        text = layout_map(figure2_net)
        assert "code cache layout" in text
        body = text.splitlines()[2:]
        assert len(body) == figure2_net.region_count
        addresses = [int(line.split()[0]) for line in body]
        assert addresses == sorted(addresses)

    def test_addresses_match_region_sizes(self, figure2_net):
        regions = sorted(figure2_net.regions, key=lambda r: r.cache_address)
        for first, second in zip(regions, regions[1:]):
            expected = first.cache_address + figure2_net.cache.region_bytes(first)
            assert second.cache_address == expected


class TestTransitionDistances:
    def test_figure2_traces_are_mutually_linked(self, figure2_net):
        pairs = transition_distances(figure2_net)
        # The two NET traces each link to the other.
        endpoints = {(src.entry.label, dst.entry.label) for src, dst, _ in pairs}
        assert ("E", "A") in endpoints
        assert ("A", "E") in endpoints
        for _, _, distance in pairs:
            assert distance > 0

    def test_single_region_has_no_pairs(self):
        result = simulate(build_micro("figure2"), "lei", SystemConfig())
        assert transition_distances(result) == []
        assert page_crossing_fraction(result) == 0.0


class TestPageCrossing:
    def test_small_cache_fits_one_page(self, figure2_net):
        assert page_crossing_fraction(figure2_net) == 0.0

    def test_tiny_pages_force_crossings(self, figure2_net):
        # With "pages" smaller than the first trace, the two linked
        # traces cannot share one.
        first = min(r.cache_address for r in figure2_net.regions)
        second = sorted(r.cache_address for r in figure2_net.regions)[1]
        tiny_page = max(1, second - first)
        assert page_crossing_fraction(figure2_net, page_bytes=tiny_page) > 0.0
